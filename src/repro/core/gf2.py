"""Polynomial arithmetic over GF(2), used to verify LFSR maximality.

An n-bit Fibonacci LFSR with feedback (characteristic) polynomial ``p(x)``
produces a maximal-length sequence (period ``2**n - 1``) if and only if
``p(x)`` is *primitive* over GF(2).  The paper (Section 3.3) requires
"choosing the correct bits to XOR" so that the LFSR "cycles through all
2^n values except 0"; this module provides the algebra to check a tap set
for that property instead of taking it on faith.

Polynomials are represented as Python ints: bit ``i`` of the int is the
coefficient of ``x**i``.  For example ``0b10011`` is ``x^4 + x + 1``.
"""

from __future__ import annotations

from typing import Iterable, List


def poly_from_exponents(exponents: Iterable[int]) -> int:
    """Build a polynomial int from an iterable of exponents.

    >>> bin(poly_from_exponents([4, 1, 0]))
    '0b10011'
    """
    poly = 0
    for e in exponents:
        if e < 0:
            raise ValueError("polynomial exponents must be non-negative")
        poly |= 1 << e
    return poly


def poly_degree(poly: int) -> int:
    """Degree of the polynomial (``-1`` for the zero polynomial)."""
    return poly.bit_length() - 1


def poly_mulmod(a: int, b: int, mod: int) -> int:
    """Multiply two polynomials modulo ``mod`` over GF(2)."""
    if mod <= 1:
        raise ValueError("modulus must have degree >= 1")
    deg = poly_degree(mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> deg & 1:
            a ^= mod
    return result


def poly_powmod(base: int, exponent: int, mod: int) -> int:
    """Raise ``base`` to ``exponent`` modulo ``mod`` over GF(2)."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1
    base = poly_modreduce(base, mod)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, mod)
        base = poly_mulmod(base, base, mod)
        exponent >>= 1
    return result


def poly_modreduce(a: int, mod: int) -> int:
    """Reduce ``a`` modulo ``mod`` over GF(2)."""
    deg = poly_degree(mod)
    while poly_degree(a) >= deg:
        a ^= mod << (poly_degree(a) - deg)
    return a


def _prime_factors(n: int) -> List[int]:
    """Distinct prime factors by trial division.

    ``2**n - 1`` for the LFSR widths we care about (n <= 40) has only
    small prime factors or cofactors that are themselves prime, so plain
    trial division up to ``sqrt(n)`` is fast enough.
    """
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Check irreducibility of ``poly`` over GF(2).

    Uses the standard criterion: ``p`` of degree ``n`` is irreducible iff
    ``x**(2**n) == x (mod p)`` and ``gcd-style`` conditions
    ``x**(2**(n/q)) != x (mod p)`` hold for every prime ``q | n``.
    """
    n = poly_degree(poly)
    if n <= 0:
        return False
    if not poly & 1:  # divisible by x
        return poly == 0b10  # the polynomial x itself
    x = 0b10
    if poly_powmod(x, 1 << n, poly) != poly_modreduce(x, poly):
        return False
    for q in _prime_factors(n):
        if poly_powmod(x, 1 << (n // q), poly) == poly_modreduce(x, poly):
            return False
    return True


def is_primitive(poly: int) -> bool:
    """Check primitivity of ``poly`` over GF(2).

    A degree-``n`` polynomial is primitive iff it is irreducible and the
    multiplicative order of ``x`` modulo ``p`` is exactly ``2**n - 1``:
    ``x**(2**n - 1) == 1`` and ``x**((2**n - 1)/q) != 1`` for each prime
    ``q`` dividing ``2**n - 1``.
    """
    n = poly_degree(poly)
    if n <= 0:
        return False
    if not is_irreducible(poly):
        return False
    order = (1 << n) - 1
    if poly_powmod(0b10, order, poly) != 1:
        return False
    for q in _prime_factors(order):
        if poly_powmod(0b10, order // q, poly) == 1:
            return False
    return True
