"""Tests for the timing runner glue (windows, prewarm, setup)."""

import pytest

from repro.isa.asm import assemble
from repro.timing.runner import (
    cycles_per_site,
    overhead_percent,
    time_program,
    time_window,
)

LOOP = """
    li r1, 100
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


class TestPrewarm:
    def test_prewarm_removes_compulsory_code_misses(self):
        """With the code image preinstalled in L2, cold I-cache misses
        fill from L2 instead of memory."""
        program = assemble(LOOP)
        warm = time_program(program, prewarm_code=True)
        cold = time_program(program, prewarm_code=False)
        assert warm.cycles < cold.cycles
        # Same instruction stream either way.
        assert warm.instructions == cold.instructions

    def test_prewarm_applies_to_windows(self):
        source = """
            marker 1
        """ + LOOP.replace("halt", "marker 2\n halt")
        program = assemble(source)
        warm = time_window(program, begin=(1, 1), end=(2, 1))
        cold = time_window(program, begin=(1, 1), end=(2, 1),
                           prewarm_code=False)
        assert warm.cycles <= cold.cycles


class TestSetup:
    def test_setup_runs_before_execution(self):
        program = assemble("""
            li r1, 0x800
            lw r2, 0(r1)
            halt
        """)
        result = time_program(
            program, setup=lambda m: m.memory.store_word(0x800, 7))
        assert result.stats.loads == 1

    def test_window_setup(self):
        program = assemble("""
            marker 1
            li r1, 0x800
            lw r2, 0(r1)
            marker 2
            halt
        """)
        window = time_window(program, begin=(1, 1), end=(2, 1),
                             setup=lambda m: m.memory.store_word(0x800, 7))
        assert window.stats.loads == 1


class TestWindows:
    def test_window_excludes_outside_work(self):
        source = """
            li r3, 2000
        pre:
            addi r3, r3, -1
            bne r3, r0, pre
            marker 1
            li r1, 10
        win:
            addi r1, r1, -1
            bne r1, r0, win
            marker 2
            li r3, 2000
        post:
            addi r3, r3, -1
            bne r3, r0, post
            halt
        """
        program = assemble(source)
        window = time_window(program, begin=(1, 1), end=(2, 1))
        whole = time_program(program)
        assert window.instructions < whole.instructions / 10
        assert window.cycles < whole.cycles / 10

    def test_marker_counts(self):
        source = """
            li r1, 5
        loop:
            marker 3
            addi r1, r1, -1
            bne r1, r0, loop
            marker 4
            halt
        """
        program = assemble(source)
        # Start measuring at the 3rd firing of marker 3.
        window = time_window(program, begin=(3, 3), end=(4, 1))
        full = time_window(program, begin=(3, 1), end=(4, 1))
        assert window.instructions < full.instructions

    def test_missing_marker_raises(self):
        program = assemble("marker 1\nhalt")
        with pytest.raises(RuntimeError):
            time_window(program, begin=(1, 1), end=(2, 1), max_steps=1000)

    def test_total_steps_accounting(self):
        program = assemble("""
            marker 1
            nop
            marker 2
            halt
        """)
        window = time_window(program, begin=(1, 1), end=(2, 1))
        assert window.total_steps == 3  # markers + nop (halt not stepped)
        assert window.instructions == 2  # nop + marker 2


class TestMetrics:
    def test_overhead_percent_negative_allowed(self):
        # Instrumented faster than baseline is reported as negative,
        # not an error (it happens at noise level).
        assert overhead_percent(100, 99) == pytest.approx(-1.0)

    def test_cycles_per_site(self):
        assert cycles_per_site(1000, 1500, 100) == pytest.approx(5.0)
