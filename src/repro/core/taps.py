"""Canonical LFSR tap configurations.

Tap sets use the standard descending notation from the literature: the
tuple ``(n, a, b, ...)`` denotes the feedback polynomial
``x^n + x^a + x^b + ... + 1``.  A Fibonacci LFSR built from such a set
taps bits ``a, b, ..`` and the output bit (exponent 0).

``MAXIMAL_TAPS`` lists one known maximal-length configuration per width
(2..32 bits), following the widely used XNOR/XOR shift-register tables.
Every entry is verified primitive by the test suite using
:mod:`repro.core.gf2`.

``PAPER_SENSITIVITY_TAPS_32`` reproduces the four 32-bit configurations
from the paper's Section 4.2 sensitivity analysis: two with four taps at
bits (32, 31, 30, 10) and (32, 19, 18, 13), and two with six taps at
(32, 31, 30, 29, 28, 22) and (32, 22, 16, 15, 12, 11).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .gf2 import is_primitive, poly_from_exponents

#: One maximal-length tap configuration per register width.
MAXIMAL_TAPS: Dict[int, Tuple[int, ...]] = {
    2: (2, 1),
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
    25: (25, 22),
    26: (26, 6, 2, 1),
    27: (27, 5, 2, 1),
    28: (28, 25),
    29: (29, 27),
    30: (30, 6, 4, 1),
    31: (31, 28),
    32: (32, 22, 2, 1),
}

#: The tap set drawn in the paper's Figure 6: a 4-bit LFSR XORing "the
#: right two bits" (the output bit and its neighbour), i.e. polynomial
#: x^4 + x + 1.  It reproduces the exact 15-state sequence in the figure.
FIGURE6_TAPS: Tuple[int, ...] = (4, 1)

#: The four 32-bit configurations compared in the Section 4.2
#: sensitivity analysis.
PAPER_SENSITIVITY_TAPS_32: Tuple[Tuple[int, ...], ...] = (
    (32, 31, 30, 10),
    (32, 19, 18, 13),
    (32, 31, 30, 29, 28, 22),
    (32, 22, 16, 15, 12, 11),
)

#: The paper's recommended design point (Section 3.3): a 20-bit LFSR,
#: large enough to provide spaced AND inputs for the rarest frequencies.
RECOMMENDED_WIDTH = 20

#: Minimum width able to express all 16 encoded frequencies.
MINIMUM_WIDTH = 16


def taps_to_polynomial(taps: Tuple[int, ...]) -> int:
    """Convert a descending tap tuple to its feedback polynomial."""
    if not taps:
        raise ValueError("tap set is empty")
    ordered = tuple(sorted(taps, reverse=True))
    if ordered != tuple(taps):
        raise ValueError(f"taps must be listed in descending order: {taps}")
    if len(set(taps)) != len(taps):
        raise ValueError(f"duplicate tap positions: {taps}")
    width = taps[0]
    if any(t <= 0 or t > width for t in taps):
        raise ValueError(f"tap positions must be in 1..{width}: {taps}")
    return poly_from_exponents(list(taps) + [0])


def taps_are_maximal(taps: Tuple[int, ...]) -> bool:
    """Return True iff the tap set yields a maximal-length LFSR."""
    return is_primitive(taps_to_polynomial(taps))


def default_taps(width: int) -> Tuple[int, ...]:
    """Look up the canonical maximal tap set for ``width``."""
    try:
        return MAXIMAL_TAPS[width]
    except KeyError:
        raise ValueError(
            f"no canonical tap set for width {width}; "
            f"supported widths are {min(MAXIMAL_TAPS)}..{max(MAXIMAL_TAPS)}"
        ) from None
