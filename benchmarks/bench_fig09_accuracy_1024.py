"""Figure 9: sampling accuracy at interval 2^10 on all 8 benchmarks.

Paper result: all three schemes land in the high-80s/90s and are
comparable, except jython, where branch-on-random is ~7% more accurate
than either counter because its pseudo-randomness avoids resonating
with the program's alternating leaf-method loop.
"""


from _shared import ACCURACY_SCALE, accuracy_rows, run_once, report

from repro.experiments import format_accuracy_rows


def test_figure9(benchmark):
    rows = run_once(benchmark, lambda: accuracy_rows(1 << 10))

    report(format_accuracy_rows(
        rows, f"Figure 9: accuracy at 2^10 (scale {ACCURACY_SCALE} of "
              "the paper's invocation counts)"))

    by_name = {row["benchmark"]: row for row in rows}
    # The jython resonance gap (paper: ~7%).
    jython = by_name["jython"]
    assert jython["random"] > jython["sw"] + 3
    assert jython["random"] > jython["hw"] + 3
    # Clean benchmarks: schemes comparable (within a few percent).
    for name in ("bloat", "lusearch", "xalan", "luindex"):
        row = by_name[name]
        assert abs(row["random"] - row["sw"]) < 5
    # Everything is a usable profile at this rate.
    assert by_name["average"]["random"] > 80
