"""Tests for the event-level sampling frameworks."""

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.profiles import Profile, overlap_accuracy
from repro.sampling import (
    BrrSampler,
    FullSampler,
    HardwareCounterSampler,
    SoftwareCounterSampler,
    collect_profile,
)


class TestSoftwareCounter:
    def test_samples_every_interval(self):
        sampler = SoftwareCounterSampler(4)
        outcomes = [sampler.should_sample() for _ in range(12)]
        assert outcomes == [False, False, False, True] * 3

    def test_interval_one_samples_everything(self):
        sampler = SoftwareCounterSampler(1)
        assert all(sampler.should_sample() for _ in range(5))

    def test_phase(self):
        sampler = SoftwareCounterSampler(4, phase=0)
        outcomes = [sampler.should_sample() for _ in range(8)]
        assert outcomes == [True, False, False, False] * 2

    def test_counters_tracked(self):
        sampler = SoftwareCounterSampler(8)
        for _ in range(64):
            sampler.should_sample()
        assert sampler.encounters == 64
        assert sampler.samples == 8

    def test_rate(self):
        assert SoftwareCounterSampler(1024).expected_rate == 1 / 1024

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            SoftwareCounterSampler(0)

    def test_bad_phase(self):
        with pytest.raises(ValueError):
            SoftwareCounterSampler(4, phase=-1)

    def test_resonance_with_periodic_stream(self):
        """Footnote 7's pathology: with a loop body of two alternating
        methods and an even interval, only one method is ever sampled."""
        events = ["A", "B"] * 4096
        profile = collect_profile(events, SoftwareCounterSampler(1024))
        assert len(profile) == 1  # only one of A/B observed


class TestHardwareCounter:
    def test_deterministic_interval(self):
        sampler = HardwareCounterSampler(4)
        outcomes = [sampler.should_sample() for _ in range(8)]
        assert outcomes == [False, False, False, True] * 2

    def test_matches_software_counter_positions(self):
        sw = SoftwareCounterSampler(16)
        hw = HardwareCounterSampler(16)
        assert [sw.should_sample() for _ in range(64)] == \
               [hw.should_sample() for _ in range(64)]

    def test_phase_shift(self):
        sampler = HardwareCounterSampler(4, phase=3)
        assert sampler.should_sample() is True


class TestBrrSampler:
    def test_interval_or_field_required(self):
        with pytest.raises(ValueError):
            BrrSampler()
        with pytest.raises(ValueError):
            BrrSampler(interval=16, field=3)

    def test_interval_maps_to_field(self):
        assert BrrSampler(interval=1024).field == 9
        assert BrrSampler(field=9).expected_rate == 1 / 1024

    def test_rate_converges(self):
        sampler = BrrSampler(interval=8)
        n = 8192
        samples = sum(sampler.should_sample() for _ in range(n))
        assert abs(samples / n - 1 / 8) < 0.02

    def test_deterministic_unit_injectable(self):
        sampler = BrrSampler(interval=4, unit=HardwareCounterUnit())
        outcomes = [sampler.should_sample() for _ in range(8)]
        assert outcomes == [False, False, False, True] * 2

    def test_avoids_resonance(self):
        """The paper's key accuracy result: pseudo-random sampling sees
        both methods of a periodic stream."""
        events = ["A", "B"] * 8192
        profile = collect_profile(events, BrrSampler(interval=64))
        assert len(profile) == 2
        accuracy = overlap_accuracy(Profile.from_events(events), profile)
        assert accuracy > 85.0


class TestFullSampler:
    def test_samples_all(self):
        events = list(range(100))
        profile = collect_profile(events, FullSampler())
        assert profile.total == 100
        assert FullSampler().expected_rate == 1.0

    def test_full_profile_accuracy_100(self):
        events = [i % 7 for i in range(700)]
        full = collect_profile(events, FullSampler())
        assert overlap_accuracy(full, full) == pytest.approx(100.0)
