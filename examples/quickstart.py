#!/usr/bin/env python3
"""Quickstart: the branch-on-random instruction end to end.

Builds the hardware model (LFSR + condition unit), assembles a small
program that uses ``brr`` to sample a loop, runs it functionally and
through the Section 5.1 cycle-level timing model, and prints what the
paper's Figure 4 promises: a one-instruction sampling framework whose
taken frequency converges to the encoded rate at almost no cost.

Run:  python examples/quickstart.py
"""

from repro.core import BranchOnRandomUnit, Lfsr, estimate_cost
from repro.isa import assemble, disassemble
from repro.sim import Machine
from repro.timing import time_program

ITERATIONS = 20_000
INTERVAL = 64

SOURCE = f"""
; Count how often a 1/{INTERVAL} branch-on-random fires over
; {ITERATIONS} loop iterations.  r2 holds the sample count.
    li   r1, {ITERATIONS}
    li   r2, 0
loop:
    brr  1/{INTERVAL}, sample      ; the entire sampling framework
back:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
sample:
    addi r2, r2, 1           ; "do_profile()"
    brra back                ; jump back without polluting the BTB
"""


def main() -> None:
    program = assemble(SOURCE)
    print("Assembled program:")
    print(disassemble(program))
    print()

    # --- the hardware: a 20-bit LFSR per the paper's design point ----
    unit = BranchOnRandomUnit(Lfsr(20, seed=0xBEEF))

    # --- functional run ----------------------------------------------
    machine = Machine(program, brr_unit=unit)
    machine.run(max_steps=500_000)
    samples = machine.regs[2]
    expected = ITERATIONS / INTERVAL
    print(f"samples collected: {samples} "
          f"(expected ~{expected:.0f} at 1/{INTERVAL}); "
          f"measured rate 1/{ITERATIONS / samples:.1f}")

    # --- timed run vs. an unsampled baseline --------------------------
    baseline = assemble(f"""
        li r1, {ITERATIONS}
    loop:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    """)
    base = time_program(baseline)
    timed = time_program(program,
                         brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0xBEEF)))
    extra = (timed.cycles - base.cycles) / ITERATIONS
    print(f"baseline {base.cycles} cycles; with brr {timed.cycles} cycles "
          f"-> {extra:.2f} extra cycles per loop iteration")

    # --- what the hardware costs --------------------------------------
    cost = estimate_cost(lfsr_width=20, decode_width=4)
    print(f"4-wide hardware budget: {cost.state_bits} bits of state, "
          f"{cost.gates_macro} gates")


if __name__ == "__main__":
    main()
