"""Window runners: the pure compute behind each :class:`WindowSpec`.

Each runner maps a spec's parameter dict to a JSON-able result payload
and must be a *pure function* of those parameters — every source of
randomness (workload RNG seed, LFSR initialisation) is an explicit
parameter, which is what makes results cacheable and safe to fan out
across processes.  Runners put ``cycles``/``instructions`` at the
payload's top level when they have them so the engine can log them in
the run artifact without knowing each payload's shape.

Imports of workload/experiment modules happen inside the runners so
this module stays importable from pool workers without dragging the
whole package (or creating import cycles with ``repro.experiments``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

Runner = Callable[[Dict[str, Any]], Dict[str, Any]]

REGISTRY: Dict[str, Runner] = {}


def window_kind(name: str) -> Callable[[Runner], Runner]:
    """Register a runner under a spec ``kind``."""
    def register(fn: Runner) -> Runner:
        REGISTRY[name] = fn
        return fn
    return register


def run_window(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one window to its registered runner."""
    try:
        runner = REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown window kind {kind!r}") from None
    return runner(params)


def _tuple_or_none(value):
    return None if value is None else tuple(value)


def _config_from(params: Dict[str, Any]):
    from ..timing.config import TimingConfig

    config = params.get("config")
    return None if config is None else TimingConfig.from_dict(config)


def _timed_window(
    kind: str,
    params: Dict[str, Any],
    program,
    begin: Tuple[int, int],
    end: Tuple[int, int],
    setup=None,
    brr_unit=None,
    fast_forward: Optional[Tuple[int, int]] = None,
):
    """Execute one marker-delimited timing window, record-once /
    replay-many when a trace store is active.

    The store is keyed by the spec's *functional projection* (``config``
    excluded — see :mod:`repro.engine.tracestore`), so every timing
    configuration of the same program/seed/markers shares a single
    recorded functional stream: the first execution records it (N
    functional ``Machine.step()`` calls), every later one replays it
    (zero).  Without an active store the lock-step reference path runs
    unchanged.  Per-window trace telemetry (hit/miss, encoded bytes,
    functional steps) is left for the engine via
    :func:`~repro.engine.tracestore.consume_trace_info`.
    """
    from ..timing.runner import (
        consume_replay_info,
        record_window,
        replay_window,
        time_window,
    )
    from .tracestore import (
        functional_key,
        get_active_store,
        set_last_trace_info,
    )

    store = get_active_store()
    if store is None or not store.enabled:
        result = time_window(program, begin=begin, end=end, setup=setup,
                             brr_unit=brr_unit, fast_forward=fast_forward,
                             config=_config_from(params))
        set_last_trace_info({
            "trace": "off",
            "trace_bytes": None,
            "functional_steps": result.total_steps,
            "timing_path": "lockstep",
            "replay_records_per_s": None,
        })
        return result

    key = functional_key(kind, params)
    trace = store.load(key)
    if trace is None:
        trace = store.record(key, lambda path: record_window(
            program, end, brr_unit=brr_unit, setup=setup, path=path))
        usage, functional_steps = "miss", len(trace)
    else:
        usage, functional_steps = "hit", 0
    result = replay_window(trace, begin, end, config=_config_from(params),
                           fast_forward=fast_forward, program=program)
    replay_info = consume_replay_info() or {}
    info = {
        "trace": usage,
        "trace_bytes": trace.nbytes,
        "functional_steps": functional_steps,
        "timing_path": replay_info.get("timing_path"),
        "replay_records_per_s": replay_info.get("replay_records_per_s"),
    }
    for field in ("validation", "validation_policy",
                  "validation_mismatches"):
        if field in replay_info:
            info[field] = replay_info[field]
    set_last_trace_info(info)
    return result


@window_kind("accuracy")
def _accuracy_window(params: Dict[str, Any]) -> Dict[str, Any]:
    """One (benchmark, schemes, interval, seed) profiling-accuracy cell.

    The benchmark's full shape parameters ride in the spec (not just a
    name) so the cache key covers the workload generator's inputs.
    """
    from ..experiments.accuracy import run_accuracy
    from ..workloads.dacapo import DacapoSpec

    spec = DacapoSpec(**params["benchmark"])
    results = run_accuracy(
        spec,
        interval=params["interval"],
        schemes=tuple(params["schemes"]),
        scale=params["scale"],
        seed=params["seed"],
        lfsr_width=params.get("lfsr_width", 16),
        taps=_tuple_or_none(params.get("taps")),
        policy=params.get("policy", "spaced"),
    )
    events = next(iter(results.values())).events if results else 0
    return {
        "schemes": {
            scheme: {"accuracy": r.accuracy, "samples": r.samples}
            for scheme, r in results.items()
        },
        "events": events,
        "instructions": events,
        "cycles": None,
    }


def microbench_materials(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build the runnable pieces of a microbench window — program,
    marker points, setup, brr unit — without timing it.  Shared by the
    runner below and by harnesses (``repro bench``) that need to drive
    the timing layer directly."""
    from ..core.brr import BranchOnRandomUnit
    from ..workloads.microbench import END_MARKER, WARM_MARKER
    from ..workloads.registry import get_workload

    bench = get_workload(
        "microbench",
        n_chars=params["n_chars"],
        variant=params["variant"],
        kind=params.get("kind") or "cbs",
        interval=params.get("interval") or 1024,
        include_payload=params.get("include_payload", True),
        seed=params["seed"],
    ).raw
    unit = None
    if bench.variant.startswith("brr"):
        from ..core.lfsr import Lfsr

        seed = (0xACE1 + params.get("lfsr_seed", 0) * 7919) & 0xFFFFF or 1
        unit = BranchOnRandomUnit(Lfsr(20, seed=seed))
    return {
        "program": bench.program,
        "begin": (WARM_MARKER, 1),
        "end": (END_MARKER, 1),
        "setup": bench.load_text,
        "brr_unit": unit,
        "fast_forward": None,
        "extra": {
            "sites": bench.measured_sites,
            "program_words": len(bench.program.words),
        },
    }


@window_kind("microbench")
def _microbench_window(params: Dict[str, Any]) -> Dict[str, Any]:
    """One timed window of the Section 5.3 checksum microbenchmark."""
    materials = microbench_materials(params)
    result = _timed_window(
        "microbench", params, materials["program"],
        begin=materials["begin"],
        end=materials["end"],
        setup=materials["setup"],
        brr_unit=materials["brr_unit"],
    )
    return {
        "result": result.to_dict(),
        "sites": materials["extra"]["sites"],
        "program_words": materials["extra"]["program_words"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }


def jvm_materials(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build the runnable pieces of a Figure-12 JVM window without
    timing it (see :func:`microbench_materials`)."""
    from ..core.brr import BranchOnRandomUnit
    from ..jvm.benchmarks import FIGURE12_BENCHMARKS, MEASURE_BEGIN, MEASURE_END
    from ..jvm.compiler import compile_program

    jvm = FIGURE12_BENCHMARKS[params["benchmark"]](params["scale"])
    variant = params["variant"]
    if variant == "none":
        compiled = compile_program(jvm, variant="none")
        unit = None
    else:
        compiled = compile_program(
            jvm, variant="full-dup", kind=variant,
            interval=params["interval"],
        )
        unit = BranchOnRandomUnit() if variant == "brr" else None
    return {
        "program": compiled.program,
        "begin": (MEASURE_BEGIN, 1),
        "end": (MEASURE_END, 1),
        "setup": None,
        "brr_unit": unit,
        "fast_forward": None,
        "extra": {"program_words": len(compiled.program.words)},
    }


def adversarial_materials(params: Dict[str, Any]) -> Dict[str, Any]:
    """Build the runnable pieces of an adversarial window (see
    :func:`microbench_materials`).  The generated program's entire
    shape rides in the spec — density, stride, loop shape, stressors —
    so the cache key covers every generator input."""
    from ..workloads.adversarial import END_MARKER, MEASURE_MARKER
    from ..workloads.registry import get_workload

    adversarial = get_workload(
        "adversarial",
        scheme=params["scheme"],
        density=params["density"],
        stride=params.get("stride", 8),
        loop_shape=tuple(params.get("loop_shape") or (1,)),
        history_stress=params.get("history_stress", 0),
        call_depth=params.get("call_depth", 0),
        blocks=params.get("blocks", 24),
        seed=params["seed"],
    ).raw
    unit = (adversarial.brr_unit(params.get("lfsr_seed", 0))
            if adversarial.uses_brr else None)
    return {
        "program": adversarial.program(),
        "begin": (MEASURE_MARKER, 1),
        "end": (END_MARKER, 1),
        "setup": adversarial.setup,
        "brr_unit": unit,
        "fast_forward": None,
        "extra": {
            "program_words": len(adversarial.program().words),
            "pool_bytes": len(adversarial.pool),
        },
    }


@window_kind("adversarial")
def _adversarial_window(params: Dict[str, Any]) -> Dict[str, Any]:
    """One timed window of a generated adversarial program."""
    materials = adversarial_materials(params)
    result = _timed_window(
        "adversarial", params, materials["program"],
        begin=materials["begin"],
        end=materials["end"],
        setup=materials["setup"],
        brr_unit=materials["brr_unit"],
    )
    return {
        "result": result.to_dict(),
        "program_words": materials["extra"]["program_words"],
        "pool_bytes": materials["extra"]["pool_bytes"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }


#: Materials builders by spec kind, for harnesses that drive the
#: timing layer directly (``repro bench``).
MATERIALS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "microbench": microbench_materials,
    "jvm": jvm_materials,
    "adversarial": adversarial_materials,
}


# ----------------------------------------------------------------------
# Batched execution: all timing configs of ONE functional window in a
# single replay_window_batch call.  The serial engine groups cache
# misses by functional key and routes groups of two or more here, so
# the per-trace work (columnar decode, word tables, the vector
# kernel's memoised event passes) is paid once per trace instead of
# once per window.  Results are byte-identical to the per-window
# runners — batching only changes the amortisation.


def _timed_window_group(
    kind: str,
    params_list: Sequence[Dict[str, Any]],
    materials: Dict[str, Any],
) -> Optional[List[Tuple[Any, Dict[str, Any]]]]:
    """Replay every config of one functional window as a batch.

    Returns ``[(WindowResult, trace_info), ...]`` in ``params_list``
    order, or ``None`` when no trace store is active (the caller falls
    back to per-window execution).  The aggregate batch telemetry from
    :func:`~repro.timing.runner.replay_window_batch` is attached to
    every window of the group.
    """
    from ..timing.runner import (
        consume_replay_info,
        record_window,
        replay_window_batch,
    )
    from .tracestore import functional_key, get_active_store

    store = get_active_store()
    if store is None or not store.enabled:
        return None
    key = functional_key(kind, params_list[0])
    trace = store.load(key)
    if trace is None:
        trace = store.record(key, lambda path: record_window(
            materials["program"], materials["end"],
            brr_unit=materials["brr_unit"], setup=materials["setup"],
            path=path))
        usage, functional_steps = "miss", len(trace)
    else:
        usage, functional_steps = "hit", 0
    windows = [{
        "begin": materials["begin"],
        "end": materials["end"],
        "config": _config_from(params),
        "fast_forward": materials["fast_forward"],
    } for params in params_list]
    results = replay_window_batch(trace, windows,
                                  program=materials["program"])
    replay_info = consume_replay_info() or {}
    batch = []
    for position, result in enumerate(results):
        info: Dict[str, Any] = {
            "trace": usage if position == 0 else "hit",
            "trace_bytes": trace.nbytes,
            "functional_steps": functional_steps if position == 0 else 0,
            "timing_path": replay_info.get("timing_path"),
            "replay_records_per_s": replay_info.get("replay_records_per_s"),
            "batch_windows": replay_info.get("batch_windows"),
        }
        for field in ("validation", "validation_policy",
                      "validation_mismatches"):
            if field in replay_info:
                info[field] = replay_info[field]
        batch.append((result, info))
    return batch


def _group_runner(kind: str, materials_fn, shape):
    """A group runner from a materials builder plus the kind's
    result-to-payload shaping (must mirror the per-window runner)."""
    def run(params_list: Sequence[Dict[str, Any]]
            ) -> Optional[List[Tuple[Dict[str, Any], Dict[str, Any]]]]:
        materials = materials_fn(params_list[0])
        batch = _timed_window_group(kind, params_list, materials)
        if batch is None:
            return None
        return [(shape(result, materials), info) for result, info in batch]
    return run


def _microbench_payload(result, materials) -> Dict[str, Any]:
    return {
        "result": result.to_dict(),
        "sites": materials["extra"]["sites"],
        "program_words": materials["extra"]["program_words"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }


def _jvm_payload(result, materials) -> Dict[str, Any]:
    return {
        "result": result.to_dict(),
        "program_words": materials["extra"]["program_words"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }


def _adversarial_payload(result, materials) -> Dict[str, Any]:
    return {
        "result": result.to_dict(),
        "program_words": materials["extra"]["program_words"],
        "pool_bytes": materials["extra"]["pool_bytes"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }


#: Kinds whose windows can execute as one batched replay per
#: functional trace (see :meth:`ExperimentEngine._run_serial`).
GROUP_REGISTRY: Dict[str, Callable[[Sequence[Dict[str, Any]]],
                                   Optional[List[Tuple[Dict[str, Any],
                                                       Dict[str, Any]]]]]] = {
    "microbench": _group_runner("microbench", microbench_materials,
                                _microbench_payload),
    "jvm": _group_runner("jvm", jvm_materials, _jvm_payload),
    "adversarial": _group_runner("adversarial", adversarial_materials,
                                 _adversarial_payload),
}


def run_window_group(kind: str, params_list: Sequence[Dict[str, Any]]
                     ) -> Optional[List[Tuple[Dict[str, Any],
                                              Dict[str, Any]]]]:
    """Execute a functional-key-sharing group of windows as one batch;
    ``None`` when the kind has no group runner or no store is active."""
    runner = GROUP_REGISTRY.get(kind)
    if runner is None:
        return None
    return runner(params_list)


@window_kind("jvm")
def _jvm_window(params: Dict[str, Any]) -> Dict[str, Any]:
    """One timed window of a Figure 12 mini-JVM benchmark variant."""
    materials = jvm_materials(params)
    result = _timed_window(
        "jvm", params, materials["program"],
        begin=materials["begin"],
        end=materials["end"],
        brr_unit=materials["brr_unit"],
    )
    return {
        "result": result.to_dict(),
        "program_words": materials["extra"]["program_words"],
        "cycles": result.cycles,
        "instructions": result.instructions,
    }
