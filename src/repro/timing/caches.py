"""Set-associative LRU caches and the two-level hierarchy of §5.1."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional


class Cache:
    """One level of set-associative cache with true-LRU replacement.

    ``access(addr)`` returns the total latency of the access,
    recursing into ``next_level`` on a miss.  The model is blocking
    (no MSHRs): the instruction that misses pays the full latency.
    """

    def __init__(
        self,
        name: str,
        size: int,
        assoc: int,
        line_bytes: int,
        latency: int,
        next_level: Optional["Cache"] = None,
        miss_latency: int = 0,
    ) -> None:
        if size % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size} not divisible by assoc*line "
                f"({assoc}*{line_bytes})"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.next_level = next_level
        #: Latency of the backing store when there is no next level.
        self.miss_latency = miss_latency
        self.num_sets = size // (assoc * line_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count {self.num_sets} not a power of two")
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr // self.line_bytes
        return self._sets[line % self.num_sets], line

    def access(self, addr: int) -> int:
        """Access ``addr``; returns latency in cycles and updates LRU."""
        cache_set, line = self._locate(addr)
        if line in cache_set:
            cache_set.move_to_end(line)
            self.hits += 1
            return self.latency
        self.misses += 1
        if self.next_level is not None:
            fill_latency = self.next_level.access(addr)
        else:
            fill_latency = self.miss_latency
        cache_set[line] = True
        if len(cache_set) > self.assoc:
            cache_set.popitem(last=False)
        return self.latency + fill_latency

    def contains(self, addr: int) -> bool:
        cache_set, line = self._locate(addr)
        return line in cache_set

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 1.0


class Hierarchy:
    """Split L1I/L1D over a shared L2 over memory (Section 5.1)."""

    def __init__(self, config) -> None:
        self.l2 = Cache(
            "L2", config.l2_size, config.l2_assoc, config.line_bytes,
            latency=config.l2_latency, miss_latency=config.memory_latency,
        )
        self.l1i = Cache(
            "L1I", config.l1i_size, config.l1i_assoc, config.line_bytes,
            latency=config.l1_latency, next_level=self.l2,
        )
        self.l1d = Cache(
            "L1D", config.l1d_size, config.l1d_assoc, config.line_bytes,
            latency=config.l1_latency, next_level=self.l2,
        )

    def fetch(self, addr: int) -> int:
        """Instruction fetch access; returns latency."""
        return self.l1i.access(addr)

    def data(self, addr: int) -> int:
        """Data access; returns latency."""
        return self.l1d.access(addr)

    def stats(self) -> Dict[str, float]:
        return {
            "l1i_hit_rate": self.l1i.hit_rate,
            "l1d_hit_rate": self.l1d.hit_rate,
            "l2_hit_rate": self.l2.hit_rate,
            "l1i_misses": self.l1i.misses,
            "l1d_misses": self.l1d.misses,
            "l2_misses": self.l2.misses,
        }
