"""Sampling plans: which cells of a population a run executes.

A :class:`SamplingPlan` is a small frozen value object with four
modes:

``exhaustive``
    Every cell (the default pipeline behaviour; also what any
    ``fraction >= 1.0`` resolves to).
``fraction:F``
    A deterministic, stratified ``F`` of the population's cells.
``budget:N``
    At most ``N`` cells, allocated proportionally across strata.
``adaptive:N``
    At most ``N`` cells, but scheduled by the engine from interim
    estimator variance: after a seed batch, each next cell comes from
    the stratum whose running confidence interval is widest (see
    :meth:`repro.engine.core.ExperimentEngine.run_plan`).

Selection is a pure function of ``(plan, population)``: each cell is
ranked by ``sha256(seed "/" cell.id)`` and each stratum contributes its
lowest-ranked cells, with the per-stratum quotas assigned by
largest-remainder apportionment of the plan's target.  Mandatory cells
(Figure 13's baselines) are always included and never consume another
stratum's quota.  Because the rank hashes stable cell ids — not
enumeration indices or RNG state — two runs under the same plan select
the identical subset, cache keys are unaffected, and ``repro resume``
replays a sampled run exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from .population import Cell, WindowPopulation

#: Allowed values of :attr:`SamplingPlan.mode`.
PLAN_MODES = ("exhaustive", "fraction", "budget", "adaptive")


def _format_fraction(fraction: float) -> str:
    text = f"{fraction:g}"
    return text


@dataclass(frozen=True)
class SamplingPlan:
    """A seeded, deterministic recipe for sampling a window population."""

    mode: str = "exhaustive"
    #: Target fraction of cells for ``mode == "fraction"``.
    fraction: Optional[float] = None
    #: Cell budget for ``mode in ("budget", "adaptive")``.
    budget: Optional[int] = None
    #: Selection seed; hashed with each cell id, never fed to an RNG.
    seed: int = 0
    #: Confidence level of every interval estimated under this plan.
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.mode not in PLAN_MODES:
            raise ValueError(
                f"plan mode must be one of {PLAN_MODES}, got {self.mode!r}")
        if self.mode == "fraction":
            if self.fraction is None or self.fraction <= 0:
                raise ValueError(
                    f"fraction plans need fraction > 0, got {self.fraction}")
        elif self.fraction is not None:
            raise ValueError(f"{self.mode} plans take no fraction")
        if self.mode in ("budget", "adaptive"):
            if self.budget is None or self.budget < 1:
                raise ValueError(
                    f"{self.mode} plans need budget >= 1, got {self.budget}")
        elif self.budget is not None:
            raise ValueError(f"{self.mode} plans take no budget")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}")

    # ------------------------------------------------------------------
    # Parsing / serialisation.

    @classmethod
    def parse(cls, text: str, seed: Optional[int] = None,
              confidence: Optional[float] = None) -> "SamplingPlan":
        """Parse the CLI/serve plan syntax: ``exhaustive``,
        ``fraction:0.25``, ``budget:24`` or ``adaptive:24``."""
        raw = str(text).strip().lower()
        mode, _, argument = raw.partition(":")
        values: Dict[str, Any] = {"mode": mode}
        if seed is not None:
            values["seed"] = int(seed)
        if confidence is not None:
            values["confidence"] = float(confidence)
        if mode == "exhaustive":
            if argument:
                raise ValueError(
                    f"exhaustive plans take no argument, got {text!r}")
        elif mode == "fraction":
            try:
                values["fraction"] = float(argument)
            except ValueError:
                raise ValueError(
                    f"bad sampling fraction in {text!r}") from None
        elif mode in ("budget", "adaptive"):
            try:
                values["budget"] = int(argument)
            except ValueError:
                raise ValueError(f"bad sampling budget in {text!r}") from None
        else:
            raise ValueError(
                f"unknown sampling plan {text!r}; expected one of "
                f"exhaustive, fraction:F, budget:N, adaptive:N")
        return cls(**values)

    def canonical(self) -> str:
        """The normalised plan string ``parse`` round-trips."""
        if self.mode == "fraction":
            return f"fraction:{_format_fraction(self.fraction)}"
        if self.mode in ("budget", "adaptive"):
            return f"{self.mode}:{self.budget}"
        return "exhaustive"

    def describe(self) -> str:
        """One human-readable identity line for figure footers."""
        return f"{self.canonical()} seed={self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingPlan":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SamplingPlan fields: {sorted(unknown)}")
        return cls(**dict(data))

    # ------------------------------------------------------------------
    # Deterministic selection.

    def rank(self, cell_id: str) -> int:
        """The cell's deterministic sampling rank under this plan's
        seed (lower ranks are selected first)."""
        digest = hashlib.sha256(
            f"{self.seed}/{cell_id}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def target_cells(self, size: int) -> int:
        """How many cells this plan runs out of ``size``."""
        if size <= 0:
            return 0
        if self.mode == "exhaustive":
            return size
        if self.mode == "fraction":
            if self.fraction >= 1.0:
                return size
            return min(size, max(1, int(self.fraction * size + 0.5)))
        return min(size, int(self.budget))

    def select(self, population: WindowPopulation) -> List[Cell]:
        """The sampled cell subset, in population (declaration) order.

        Adaptive plans share this as their *fallback* static selection;
        the engine's adaptive scheduler re-derives the tail of the
        budget from interim variance instead.
        """
        cells = population.enumerate()
        target = self.target_cells(population.size)
        if target >= population.size:
            return cells
        mandatory = [cell for cell in cells if cell.mandatory]
        chosen = {cell.id for cell in mandatory}
        quota = max(0, target - len(mandatory))
        strata = [(stratum, [cell for cell in members if not cell.mandatory])
                  for stratum, members in population.strata().items()]
        strata = [(stratum, members) for stratum, members in strata
                  if members]
        for stratum, allocation in zip(
                (stratum for stratum, _ in strata),
                self._apportion(quota, [len(members)
                                        for _, members in strata])):
            members = dict(strata)[stratum]
            ranked = sorted(members, key=lambda c: (self.rank(c.id), c.id))
            chosen.update(cell.id for cell in ranked[:allocation])
        return [cell for cell in cells if cell.id in chosen]

    @staticmethod
    def _apportion(quota: int, sizes: List[int]) -> List[int]:
        """Largest-remainder apportionment of ``quota`` across strata,
        capped at each stratum's size."""
        total = sum(sizes)
        if total == 0 or quota <= 0:
            return [0 for _ in sizes]
        quota = min(quota, total)
        exact = [quota * size / total for size in sizes]
        allocation = [int(share) for share in exact]
        remainders = sorted(
            range(len(sizes)),
            key=lambda i: (-(exact[i] - allocation[i]), i))
        leftover = quota - sum(allocation)
        for index in remainders:
            if leftover <= 0:
                break
            if allocation[index] < sizes[index]:
                allocation[index] += 1
                leftover -= 1
        # If rounding left quota unplaced (some strata saturated),
        # spill it into whichever strata still have room, in order.
        for index in range(len(sizes)):
            while leftover > 0 and allocation[index] < sizes[index]:
                allocation[index] += 1
                leftover -= 1
        return allocation
