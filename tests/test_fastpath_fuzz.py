"""Differential fuzzing: fastpath kernel == golden simulator, always.

Seeded random programs exercising every branch class the timing model
distinguishes — conditionals, branch-on-random (brr and brra), direct
jumps, calls, returns, non-return indirect jumps — plus load/store
mixes that hit and miss the I$/D$/L2, ROB and physical-register
stalls, and marker-partitioned replay windows.  Each program is
recorded once and replayed through both implementations under several
timing configurations (paper, naive-brr ablation, shared-LFSR
arbitration, and a deliberately tiny "stress" machine that forces
cache evictions, BTB/predictor aliasing and RAS overflow); the
resulting :class:`~repro.timing.pipeline.TimingStats` must be
byte-for-byte identical.
"""

import random

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.isa.asm import assemble
from repro.timing.config import NAIVE_BRR_CONFIG, PAPER_CONFIG, TimingConfig
from repro.timing.runner import record_window, replay_window, time_window

#: A tiny machine: 8-set L1s, 32-set L2, 16-entry BTB, 2-entry RAS,
#: 8-entry ROB and 4 rename registers — every structural hazard the
#: model knows fires constantly.
STRESS_CONFIG = TimingConfig(
    fetch_width=2, decode_width=2, issue_width=2, commit_width=2,
    rob_entries=8, phys_regs=20, frontend_depth=3, backend_penalty=7,
    gshare_history_bits=6, bimodal_entries=256, chooser_entries=64,
    btb_entries=16, ras_entries=2,
    l1i_size=1024, l1i_assoc=2, l1d_size=1024, l1d_assoc=2,
    l2_size=4096, l2_assoc=2, l2_latency=4, memory_latency=30,
)

SHARED_LFSR_CONFIG = PAPER_CONFIG.with_overrides(brr_shared_lfsr=True)

CONFIGS = [
    ("paper", PAPER_CONFIG),
    ("naive-brr", NAIVE_BRR_CONFIG),
    ("shared-lfsr", SHARED_LFSR_CONFIG),
    ("stress", STRESS_CONFIG),
]


def _block(rng: random.Random, n: int, lines) -> None:
    """Append one randomly chosen work block (labels unique per n)."""
    kind = rng.choice(
        ["arith", "load", "store", "cond", "loop", "call", "indirect",
         "brr", "brra", "jmp"])
    a = rng.randrange(2, 9)
    b = rng.randrange(2, 9)
    off = 4 * rng.randrange(0, 128)
    if kind == "arith":
        lines.append(rng.choice([
            f"addi r{a}, r{b}, {rng.randrange(-64, 64)}",
            f"add r{a}, r{b}, r{rng.randrange(2, 9)}",
            f"mul r{a}, r{b}, r{rng.randrange(2, 9)}",
            f"xor r{a}, r{a}, r{b}",
        ]))
    elif kind == "load":
        lines.append(rng.choice([f"lw r{a}, {off}(r1)",
                                 f"lb r{a}, {off}(r1)"]))
    elif kind == "store":
        lines.append(rng.choice([f"sw r{a}, {off}(r1)",
                                 f"sb r{a}, {off}(r1)"]))
    elif kind == "cond":
        op = rng.choice(["beq", "bne", "blt", "bge"])
        lines.append(f"addi r10, r10, 1")
        lines.append(f"andi r11, r10, {rng.choice([1, 3, 7])}")
        lines.append(f"{op} r11, r{rng.choice([0, b])}, skip{n}")
        lines.append(f"addi r{a}, r{a}, 1")
        lines.append(f"skip{n}:")
    elif kind == "loop":
        count = rng.randrange(2, 9)
        lines.append(f"li r12, {count}")
        lines.append(f"loop{n}:")
        lines.append(f"addi r{a}, r{a}, {rng.randrange(1, 5)}")
        if rng.random() < 0.4:
            lines.append(f"lw r{b}, {off}(r1)")
        lines.append("addi r12, r12, -1")
        lines.append(f"bne r12, r0, loop{n}")
    elif kind == "call":
        lines.append(f"jal helper{rng.randrange(3)}")
    elif kind == "indirect":
        lines.append("jal trampoline")
    elif kind == "brr":
        interval = rng.choice([2, 4, 16, 64])
        lines.append(f"brr 1/{interval}, sampled{n}")
        lines.append(f"addi r{a}, r{a}, 2")
        lines.append(f"sampled{n}:")
    elif kind == "brra":
        lines.append(f"brra always{n}")
        lines.append(f"always{n}:")
        lines.append(f"addi r{a}, r{a}, 3")
    elif kind == "jmp":
        lines.append(f"jmp ahead{n}")
        lines.append(f"ahead{n}:")


def fuzz_program(seed: int, blocks: int = 36) -> str:
    """A random-but-deterministic program with markers 1/2/3."""
    rng = random.Random(seed)
    lines = [
        "li r1, 65536",        # data buffer base, far above the code
        "li r10, 0",
        "marker 1",
    ]
    n = 0
    for _ in range(blocks // 3):
        _block(rng, n, lines)
        n += 1
    lines.append("marker 2")
    for _ in range(blocks - blocks // 3):
        _block(rng, n, lines)
        n += 1
    lines.append("marker 3")
    lines.append("halt")
    # Helpers: plain return, memory-touching return, and a non-return
    # indirect exit (jr through a copied link register, so the timing
    # model steers it via the BTB, not the RAS).
    lines += [
        "helper0:",
        "addi r4, r4, 3",
        "ret",
        "helper1:",
        "lw r5, 4(r1)",
        "sw r5, 8(r1)",
        "ret",
        "helper2:",
        "addi r13, lr, 0",     # save the link register across the nest
        "jal helper0",
        "addi lr, r13, 0",
        "ret",
        "trampoline:",
        "addi r9, lr, 0",
        "addi r4, r4, 1",
        "jr r9",
    ]
    return "\n".join(lines)


def _brr_unit(seed: int) -> BranchOnRandomUnit:
    return BranchOnRandomUnit(Lfsr(20, seed=(0xACE1 + seed * 977) & 0xFFFFF
                                   or 1))


#: Both fast kernels answer to the same oracle; the vector kernel
#: delegates windows outside its exactness envelope to the loop kernel.
KERNELS = ("loop", "vector")


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("name,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_fastpath_matches_golden(seed, name, config, kernel):
    program = assemble(fuzz_program(seed))
    trace = record_window(program, end=(3, 1), brr_unit=_brr_unit(seed))
    fast_forward = (1, 1) if seed % 2 else None
    golden = replay_window(trace, begin=(2, 1), end=(3, 1), config=config,
                           fast_forward=fast_forward, program=program,
                           fast="off")
    fast = replay_window(trace, begin=(2, 1), end=(3, 1), config=config,
                         fast_forward=fast_forward, program=program,
                         fast=kernel)
    assert fast.stats == golden.stats
    assert fast.total_steps == golden.total_steps
    # And both equal the lock-step reference (fresh machine).
    lockstep = time_window(program, begin=(2, 1), end=(3, 1), config=config,
                           fast_forward=fast_forward,
                           brr_unit=_brr_unit(seed))
    assert fast.stats == lockstep.stats


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("seed", [17, 23])
def test_fastpath_matches_golden_without_prewarm(seed, kernel):
    program = assemble(fuzz_program(seed, blocks=24))
    trace = record_window(program, end=(3, 1), brr_unit=_brr_unit(seed))
    for config in (PAPER_CONFIG, STRESS_CONFIG):
        golden = replay_window(trace, begin=(2, 1), end=(3, 1),
                               config=config, program=program,
                               prewarm_code=False, fast="off")
        fast = replay_window(trace, begin=(2, 1), end=(3, 1),
                             config=config, program=program,
                             prewarm_code=False, fast=kernel)
        assert fast.stats == golden.stats


def test_zero_length_measured_window():
    # begin == end: the measured window is empty; both paths must
    # report all-zero deltas.
    program = assemble(fuzz_program(3, blocks=12))
    trace = record_window(program, end=(3, 1), brr_unit=_brr_unit(3))
    golden = replay_window(trace, begin=(3, 1), end=(3, 1),
                           program=program, fast=False)
    fast = replay_window(trace, begin=(3, 1), end=(3, 1),
                         program=program, fast=True)
    assert fast.stats == golden.stats
    assert fast.instructions == 0


def test_trapped_trace_falls_back_to_golden_error():
    # Trap-emulated brr records carry no decoded instruction; the fast
    # path bails out and the golden path raises its usual error.
    source = """
        marker 1
        li r3, 4
    loop:
        brr 1/4, hit
    hit:
        addi r3, r3, -1
        bne r3, r0, loop
        marker 2
        halt
    """
    from repro.sim.trap import BrrTrapEmulator

    program = assemble(source, brr_mode="trap")
    emulator = BrrTrapEmulator(_brr_unit(1))
    trace = record_window(program, end=(2, 1), setup=emulator.install)
    with pytest.raises(ValueError, match="trap-emulated"):
        replay_window(trace, begin=(1, 1), end=(2, 1), program=program,
                      fast=True)
