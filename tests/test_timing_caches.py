"""Tests for the cache hierarchy."""

import pytest

from repro.timing.caches import Cache, Hierarchy
from repro.timing.config import TimingConfig


class TestCache:
    def make(self, **kwargs):
        defaults = dict(name="t", size=1024, assoc=2, line_bytes=64,
                        latency=1, miss_latency=100)
        defaults.update(kwargs)
        return Cache(**defaults)

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert cache.access(0) == 101
        assert cache.access(0) == 1
        assert cache.access(63) == 1  # same line
        assert cache.access(64) == 101  # next line

    def test_lru_eviction(self):
        cache = self.make()  # 8 sets, 2 ways
        set_stride = 8 * 64
        cache.access(0)
        cache.access(set_stride)
        cache.access(2 * set_stride)  # evicts line 0
        assert not cache.contains(0)
        assert cache.contains(set_stride)

    def test_lru_refresh(self):
        cache = self.make()
        set_stride = 8 * 64
        cache.access(0)
        cache.access(set_stride)
        cache.access(0)  # refresh
        cache.access(2 * set_stride)  # evicts set_stride, not 0
        assert cache.contains(0)
        assert not cache.contains(set_stride)

    def test_stats(self):
        cache = self.make()
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_empty_hit_rate(self):
        assert self.make().hit_rate == 1.0

    def test_two_level_latency(self):
        l2 = self.make(name="l2", size=4096, latency=8, miss_latency=140)
        l1 = self.make(name="l1", latency=1, next_level=l2, miss_latency=0)
        # Cold: L1 miss -> L2 miss -> memory.
        assert l1.access(0) == 1 + 8 + 140
        # L1 hit.
        assert l1.access(0) == 1
        # Evict from L1 only; refill hits L2.
        set_stride = 8 * 64
        l1.access(set_stride)
        l1.access(2 * set_stride)
        assert l1.access(0) == 1 + 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("x", size=1000, assoc=2, line_bytes=64, latency=1)

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            Cache("x", size=3 * 128, assoc=1, line_bytes=64, latency=1)


class TestHierarchy:
    def test_paper_geometry(self):
        h = Hierarchy(TimingConfig())
        assert h.l1i.num_sets == 128   # 32KB / (4 * 64)
        assert h.l1d.num_sets == 128
        assert h.l2.num_sets == 2048   # 1MB / (8 * 64)

    def test_fetch_and_data_separate_l1(self):
        h = Hierarchy(TimingConfig())
        h.fetch(0)
        assert h.l1i.misses == 1 and h.l1d.misses == 0
        h.data(0)
        assert h.l1d.misses == 1

    def test_shared_l2(self):
        h = Hierarchy(TimingConfig())
        h.fetch(0)        # L2 miss, fills L2
        latency = h.data(0)   # L1D miss, L2 hit
        assert latency == 1 + 8
        assert h.l2.hits == 1

    def test_latencies_match_config(self):
        h = Hierarchy(TimingConfig())
        assert h.fetch(0) == 1 + 8 + 140
        assert h.fetch(0) == 1

    def test_stats_keys(self):
        h = Hierarchy(TimingConfig())
        h.fetch(0)
        stats = h.stats()
        assert set(stats) == {
            "l1i_hit_rate", "l1d_hit_rate", "l2_hit_rate",
            "l1i_misses", "l1d_misses", "l2_misses",
        }
