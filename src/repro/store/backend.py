"""The shared backend tier: a pluggable cross-replica object store.

Bottom of the three-tier stack.  A :class:`Backend` moves whole entry
*files* — it never decodes them — between a replica's local disk tier
and some shared medium, addressed by the disk tier's relative entry
name (``v<N>/<key[:2]>/<key><suffix>``).  Because entries are
content-addressed and checksummed (``docs/integrity.md``), a fetched
file is verified locally before anything trusts it; a backend
therefore needs no integrity story of its own, only atomicity.

The reference implementation is :class:`FilesystemBackend`: a shared
directory (NFS mount, bind-mounted volume, ...) that many ``repro
serve`` replicas point at with ``REPRO_STORE_BACKEND=fs:/path`` (the
``fs:`` scheme prefix is optional).  Each logical store namespaces
itself (``<root>/results/...``, ``<root>/traces/...``) so one backend
root carries the whole corpus.  New schemes register via
:func:`register_backend_scheme`.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import shutil
import tempfile
from typing import Any, Callable, Dict, Optional

from .base import TierCounters

#: Environment variable that selects the shared backend for every
#: store in the process; see :func:`make_backend` for the format.
BACKEND_ENV = "REPRO_STORE_BACKEND"

#: Values of :data:`BACKEND_ENV` that mean "no shared backend".
_DISABLED = ("", "0", "none", "off", "no")


class Backend:
    """Interface of a shared store backend (file-granular, atomic)."""

    #: Scheme the backend registered under (telemetry only).
    scheme = "abstract"

    def __init__(self) -> None:
        self.counters = TierCounters()

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        """Copy entry ``name`` into local file ``dest`` (atomically);
        True when the entry existed and landed."""
        raise NotImplementedError

    def push(self, name: str, src: pathlib.Path) -> bool:
        """Publish local file ``src`` as entry ``name`` (atomically);
        True when it landed.  Pushes are best-effort: a failure leaves
        the local tiers authoritative and is reported via counters."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.scheme

    def stats(self) -> Dict[str, Any]:
        return dict(self.counters.as_dict(), backend=self.describe())


class FilesystemBackend(Backend):
    """Shared-directory backend (NFS-style): the reference implementation.

    Both directions copy through a same-directory temp file and
    ``os.replace``, so concurrent replicas pushing the same
    content-addressed entry cannot tear each other — last writer wins
    with identical bytes.
    """

    scheme = "fs"

    def __init__(self, root: pathlib.Path) -> None:
        super().__init__()
        self.root = pathlib.Path(root)

    def _atomic_copy(self, src: pathlib.Path, dest: pathlib.Path) -> int:
        dest.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=dest.parent, prefix=".tmp-", suffix=dest.suffix,
            delete=False)
        handle.close()
        try:
            shutil.copyfile(src, handle.name)
            nbytes = os.path.getsize(handle.name)
            os.replace(handle.name, dest)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
            raise
        return nbytes

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        src = self.root / name
        try:
            nbytes = self._atomic_copy(src, pathlib.Path(dest))
        except (OSError, ValueError):
            self.counters.misses += 1
            return False
        self.counters.hits += 1
        self.counters.bytes_read += nbytes
        return True

    def push(self, name: str, src: pathlib.Path) -> bool:
        try:
            nbytes = self._atomic_copy(pathlib.Path(src), self.root / name)
        except (OSError, ValueError):
            return False
        self.counters.bytes_written += nbytes
        return True

    def describe(self) -> str:
        return f"fs:{self.root}"


#: scheme -> factory(rest-of-spec, namespace) -> Backend
_SCHEMES: Dict[str, Callable[[str, str], Backend]] = {}


def register_backend_scheme(
        scheme: str, factory: Callable[[str, str], Backend]) -> None:
    """Register a backend scheme for ``REPRO_STORE_BACKEND=<scheme>:...``."""
    _SCHEMES[scheme] = factory


register_backend_scheme(
    "fs", lambda rest, namespace: FilesystemBackend(
        pathlib.Path(rest) / namespace))


def make_backend(spec: Optional[str], namespace: str) -> Optional[Backend]:
    """Build the shared backend a spec string names, or ``None``.

    ``spec`` is ``<scheme>:<rest>`` (a bare path implies ``fs:``);
    ``namespace`` keeps each logical store's entries apart under one
    shared root (``results`` / ``traces``).  Unset/disabled specs
    return ``None``; an unknown scheme raises ``ValueError``.
    """
    if spec is None or spec.strip().lower() in _DISABLED:
        return None
    spec = spec.strip()
    scheme, sep, rest = spec.partition(":")
    if not sep or len(scheme) <= 1:  # bare path (incl. "C:..."-style)
        scheme, rest = "fs", spec
    factory = _SCHEMES.get(scheme)
    if factory is None:
        raise ValueError(
            f"unknown store backend scheme {scheme!r} in {spec!r}; "
            f"known: {sorted(_SCHEMES)}")
    return factory(rest, namespace)


def backend_spec_from_env() -> Optional[str]:
    """``REPRO_STORE_BACKEND``, or ``None`` when unset/disabled."""
    spec = os.environ.get(BACKEND_ENV)
    if spec is None or spec.strip().lower() in _DISABLED:
        return None
    return spec


def backend_from_env(namespace: str) -> Optional[Backend]:
    return make_backend(backend_spec_from_env(), namespace)
