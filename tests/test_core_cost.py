"""Tests for the Section 3.3 hardware cost model."""

import pytest

from repro.core.cost import (
    CostEstimate,
    claims_hold,
    estimate_cost,
    paper_design_points,
)


class TestEstimates:
    def test_single_issue_design_point(self):
        single, _ = paper_design_points()
        assert single.state_bits == 20
        assert single.gates_macro < 100

    def test_four_wide_design_point(self):
        _, wide = paper_design_points()
        assert wide.state_bits == 80
        assert wide.state_bits < 100
        assert wide.gates_macro < 400

    def test_claims_hold(self):
        assert claims_hold()

    def test_fifteen_and_gates(self):
        # "15 AND gates, one of each size from 2 to 16 inputs"
        est = estimate_cost(decode_width=1)
        assert est.and_gates_macro == 15

    def test_two_input_decomposition(self):
        # sum over m=2..16 of (m-1) two-input gates = 120.
        est = estimate_cost(decode_width=1)
        assert est.and_gates_two_input == 120
        assert est.mux_gates_two_input == 15

    def test_replicated_scales_linearly(self):
        one = estimate_cost(decode_width=1)
        four = estimate_cost(decode_width=4, replicated=True)
        assert four.state_bits == 4 * one.state_bits
        assert four.gates_macro == 4 * one.gates_macro

    def test_shared_lfsr_saves_state(self):
        shared = estimate_cost(decode_width=4, replicated=False)
        replicated = estimate_cost(decode_width=4, replicated=True)
        assert shared.state_bits == 20
        assert shared.state_bits < replicated.state_bits
        assert shared.arbitration_gates > 0

    def test_two_input_bound_dominates_macro(self):
        for width in (1, 2, 4, 8):
            est = estimate_cost(decode_width=width)
            assert est.gates_two_input > est.gates_macro

    def test_narrow_lfsr_rejected(self):
        with pytest.raises(ValueError):
            estimate_cost(lfsr_width=8)

    def test_bad_decode_width_rejected(self):
        with pytest.raises(ValueError):
            estimate_cost(decode_width=0)

    def test_rows_report_all_lines(self):
        est = estimate_cost()
        labels = [label for label, __ in est.rows()]
        assert "state bits (LFSR flip-flops)" in labels
        assert "total gates (macro)" in labels

    def test_custom_taps_change_xor_count(self):
        two_tap = estimate_cost(taps=(20, 17))
        four_tap = estimate_cost(taps=(20, 19, 18, 17))
        assert four_tap.xor_gates > two_tap.xor_gates

    def test_frozen_dataclass(self):
        est = estimate_cost()
        with pytest.raises(AttributeError):
            est.state_bits = 0
