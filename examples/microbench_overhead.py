#!/usr/bin/env python3
"""Measuring framework overhead on the Section 5.3 microbenchmark.

A compact version of the Figure 13/14 sweep: times the checksum/
character-distribution loop under both sampling frameworks at a few
intervals on the cycle-level out-of-order model, and prints percent
overhead and cycles per sampling site.

Run:  python examples/microbench_overhead.py   (~30 seconds)
"""

from repro.core import BranchOnRandomUnit, Lfsr
from repro.timing import cycles_per_site, overhead_percent, time_window
from repro.workloads import build_microbench
from repro.workloads.microbench import END_MARKER, WARM_MARKER

N_CHARS = 3000
INTERVALS = (8, 64, 1024)


def timed(bench, unit=None):
    return time_window(
        bench.program,
        begin=(WARM_MARKER, 1),
        end=(END_MARKER, 1),
        setup=bench.load_text,
        brr_unit=unit,
    )


def main() -> None:
    base_bench = build_microbench(N_CHARS, variant="none", seed=7)
    base = timed(base_bench)
    sites = base_bench.measured_sites
    print(f"baseline: {base.cycles} cycles over {base.instructions} "
          f"instructions ({sites} instrumentation sites); "
          f"branch accuracy {base.stats.branch_accuracy:.3f}")

    full_bench = build_microbench(N_CHARS, variant="full", seed=7)
    full = timed(full_bench)
    print(f"full instrumentation: "
          f"+{overhead_percent(base.cycles, full.cycles):.1f}% "
          f"({cycles_per_site(base.cycles, full.cycles, sites):.2f} "
          f"cycles/site)\n")

    print(f"{'framework':<22} " +
          " ".join(f"{f'1/{iv}':>14}" for iv in INTERVALS))
    for kind in ("cbs", "brr"):
        for dup in ("no-dup", "full-dup"):
            cells = []
            for interval in INTERVALS:
                bench = build_microbench(
                    N_CHARS, variant=dup, kind=kind, interval=interval,
                    include_payload=False, seed=7,
                )
                unit = (BranchOnRandomUnit(Lfsr(20, seed=interval * 3 + 1))
                        if kind == "brr" else None)
                result = timed(bench, unit)
                cells.append(
                    f"{overhead_percent(base.cycles, result.cycles):5.1f}% "
                    f"{cycles_per_site(base.cycles, result.cycles, sites):5.2f}c"
                )
            print(f"{kind + ' ' + dup:<22} " +
                  " ".join(f"{c:>14}" for c in cells))

    print("\nColumns show percent overhead and added cycles per site. "
          "Branch-on-random\nwith Full-Duplication approaches the paper's "
          "~0.1 cycle/site asymptote while\ncounter-based sampling stays "
          "an order of magnitude higher.")


if __name__ == "__main__":
    main()
