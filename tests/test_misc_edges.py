"""Remaining edge cases across modules."""

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.condition import ConditionUnit
from repro.core.lfsr import Lfsr
from repro.isa.asm import assemble, parse_freq, parse_register
from repro.isa.program import Program
from repro.sim.machine import Machine, MachineError
from repro.sim.memory import Memory, MemoryError_
from repro.sim.trap import BrrTrapEmulator


class TestParseHelpers:
    def test_parse_register_aliases(self):
        assert parse_register("SP") == 14
        assert parse_register("Lr") == 15
        assert parse_register("r0") == 0

    def test_parse_register_rejects(self):
        for bad in ("r16", "x1", "r-1", "reg3"):
            with pytest.raises(ValueError):
                parse_register(bad)

    def test_parse_freq_forms(self):
        assert parse_freq("0") == 0
        assert parse_freq("15") == 15
        assert parse_freq("1/2") == 0
        assert parse_freq("1/65536") == 15
        assert parse_freq("50%") == 0
        assert parse_freq("25%") == 1

    def test_parse_freq_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            parse_freq("3/8")

    def test_parse_freq_interval_not_power(self):
        with pytest.raises(Exception):
            parse_freq("1/1000")


class TestProgramEdges:
    def test_source_for_unknown_index(self):
        program = assemble("nop")
        assert program.source_for(400) is None

    def test_empty_program(self):
        program = Program([])
        assert len(program) == 0
        assert program.size_bytes == 0
        assert not program.contains(0)

    def test_contains_boundaries(self):
        program = assemble("nop\nhalt", base=0x10)
        assert program.contains(0x10)
        assert program.contains(0x14)
        assert not program.contains(0x18)
        assert not program.contains(0xC)


class TestMemoryEdges:
    def test_write_bytes_at_end(self):
        mem = Memory(64)
        mem.write_bytes(60, b"abcd")
        assert mem.read_bytes(60, 4) == b"abcd"

    def test_write_bytes_overflow(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.write_bytes(62, b"abcd")

    def test_word_at_last_slot(self):
        mem = Memory(64)
        mem.store_word(60, 7)
        assert mem.load_word(60) == 7

    def test_machine_surfaces_misaligned_load(self):
        machine = Machine(assemble("""
            li r1, 2
            lw r2, 0(r1)
            halt
        """))
        with pytest.raises(MemoryError_):
            machine.run()


class TestTrapEdges:
    def test_handler_reads_freq_field(self):
        seen = []

        class Probe(BranchOnRandomUnit):
            def resolve(self, field):
                seen.append(field)
                return False

        machine = Machine(assemble("brr 11, t\nnop\nt: halt",
                                   brr_mode="trap"))
        BrrTrapEmulator(unit=Probe(Lfsr(20))).install(machine)
        machine.run()
        assert seen == [11]

    def test_trap_statistics(self):
        machine = Machine(assemble("""
            li r1, 8
        loop:
            brr 1/2, hit
        back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        hit:
            jmp back
        """, brr_mode="trap"))
        emulator = BrrTrapEmulator()
        emulator.install(machine)
        machine.run(max_steps=10_000)
        assert emulator.traps == 8
        assert 0 <= emulator.taken <= 8

    def test_register_trap_handler_validates_opcode(self):
        machine = Machine(assemble("halt"))
        with pytest.raises(ValueError):
            machine.register_trap_handler(64, lambda m, w, p: p + 4)


class TestConditionUnitEdges:
    def test_all_sixteen_selections_distinct_widths(self):
        unit = ConditionUnit(Lfsr(20))
        sizes = [len(unit.bit_selection(f)) for f in range(16)]
        assert sizes == list(range(1, 17))

    def test_outputs_length(self):
        unit = ConditionUnit(Lfsr(16))
        assert len(unit.all_outputs()) == 16

    def test_field16_needs_all_bits_of_16(self):
        unit = ConditionUnit(Lfsr(16))
        assert unit.bit_selection(15) == tuple(range(16))


class TestBrrUnitEdges:
    def test_random_bits_range_and_determinism(self):
        a = BranchOnRandomUnit(Lfsr(20, seed=5))
        b = BranchOnRandomUnit(Lfsr(20, seed=5))
        assert a.random_bits(24) == b.random_bits(24)

    def test_zero_random_bits(self):
        unit = BranchOnRandomUnit()
        assert unit.random_bits(0) == 0

    def test_restore_rejects_zero(self):
        unit = BranchOnRandomUnit()
        with pytest.raises(Exception):
            unit.restore_context(0)
