"""Small statistics helpers used by the experiment harness.

This is the single home of the CI/variance arithmetic the sampled
experiment pipeline relies on (``repro.stats.estimators`` wraps these
into population-aware :class:`~repro.stats.estimators.Estimate`
objects): plain means, unbiased standard deviations, standard errors,
Student-t intervals and matched-pair deltas.  Everything takes plain
sequences and returns plain floats, so experiment reducers can reuse
the exact arithmetic (and therefore the exact float results) the
estimators do.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation."""
    if len(values) < 2:
        raise ValueError("need at least two samples")
    center = mean(values)
    return (sum((v - center) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def stderr(values: Sequence[float]) -> float:
    """Standard error of the mean (unbiased sample std / sqrt(n))."""
    return sample_std(values) / math.sqrt(len(values))


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value at ``confidence`` (via scipy)."""
    from scipy import stats as scipy_stats

    if df < 1:
        raise ValueError(f"need df >= 1, got {df}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df))


def t_interval(values: Sequence[float],
               confidence: float = 0.95) -> Tuple[float, float]:
    """``(mean, half_width)`` of the two-sided t confidence interval.

    One sample carries no variance information, so ``n == 1`` answers
    an infinite half-width — the honest "we cannot bound this yet"
    value the sampled figure pipeline renders as ``±?``.
    """
    center = mean(values)
    if len(values) < 2:
        return center, float("inf")
    return center, t_critical(len(values) - 1, confidence) * stderr(values)


def matched_pair_interval(a: Sequence[float], b: Sequence[float],
                          confidence: float = 0.95) -> Tuple[float, float]:
    """``(mean delta, half_width)`` for paired samples ``a[i] - b[i]``.

    Pairing removes the between-subject variance (e.g. which benchmark
    a window came from), which is what makes small-sample overhead
    deltas like Figure 12's cbs-vs-brr comparison tight.
    """
    if len(a) != len(b):
        raise ValueError(f"paired samples differ in length: "
                         f"{len(a)} vs {len(b)}")
    return t_interval([x - y for x, y in zip(a, b)], confidence)


def fit_through_origin(xs: Sequence[float], ys: Sequence[float]
                       ) -> Tuple[float, float]:
    """Least-squares slope of ``y = m*x`` plus the fit's R^2.

    Used to test Figure 2's model that the variable component of
    sampling overhead is proportional to the sampling rate.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need matching sequences of length >= 2")
    sxx = sum(x * x for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sum(x * y for x, y in zip(xs, ys)) / sxx
    y_mean = mean(ys)
    ss_tot = sum((y - y_mean) ** 2 for y in ys)
    ss_res = sum((y - slope * x) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return slope, r_squared


def welch_t(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's t statistic and two-sided p-value (via scipy)."""
    from scipy import stats as scipy_stats

    t_stat, p_value = scipy_stats.ttest_ind(list(a), list(b), equal_var=False)
    return float(t_stat), float(p_value)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
