"""Tests for footnote 3's shared-LFSR decode arbitration in timing."""

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.isa.asm import assemble
from repro.timing.config import TimingConfig
from repro.timing.runner import time_program

# Two branch-on-randoms back to back in the same fetch packet, many
# times over: the worst case for a shared LFSR.
ADJACENT_BRR = """
    li r1, 300
loop:
    brr 15, a
a:  brr 15, b
b:  addi r1, r1, -1
    bne r1, r0, loop
    halt
"""

# brr instructions far apart: sharing costs nothing.
SPREAD_BRR = """
    li r1, 300
loop:
    brr 15, a
a:  addi r2, r2, 1
    addi r3, r3, 1
    addi r4, r4, 1
    brr 15, b
b:  addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def run(source, shared):
    config = TimingConfig().with_overrides(brr_shared_lfsr=shared)
    return time_program(assemble(source), brr_unit=HardwareCounterUnit(),
                        config=config)


class TestSharedLfsr:
    def test_adjacent_brr_packets_split(self):
        replicated = run(ADJACENT_BRR, shared=False)
        shared = run(ADJACENT_BRR, shared=True)
        assert shared.stats.brr_packet_splits > 200
        assert replicated.stats.brr_packet_splits == 0
        # With never-taken brr the split is absorbed by decode slack
        # (fetch is only 3-wide) — the arbitration is nearly free,
        # which is footnote 3's argument for considering it.
        assert shared.cycles <= replicated.cycles + 50

    def test_split_delays_taken_brr_resolution(self):
        """When the arbitrated brr is *taken*, deferring its decode
        defers the front-end redirect, so the split shows up as real
        cycles."""
        source = """
            li r1, 300
        loop:
            brr 15, a
        a:  brr 0, b        ; ~50% taken, resolved a cycle later
        b:  addi r1, r1, -1
            bne r1, r0, loop
            halt
        """
        replicated = run(source, shared=False)
        shared = run(source, shared=True)
        assert shared.stats.brr_packet_splits > 200
        assert shared.cycles > replicated.cycles

    def test_spread_brr_rarely_splits(self):
        shared = run(SPREAD_BRR, shared=True)
        # With >= 4 instructions between them, the two brr decode in
        # different cycles anyway ("it is unlikely that multiple
        # branch-on-random instructions will be in the same fetch
        # packet").
        assert shared.stats.brr_packet_splits < 30

    def test_split_cost_bounded(self):
        """A split defers only the brr (and younger) decode by a cycle,
        so the worst case here is about a cycle per loop iteration."""
        replicated = run(ADJACENT_BRR, shared=False)
        shared = run(ADJACENT_BRR, shared=True)
        assert shared.cycles - replicated.cycles <= 320

    def test_brra_does_not_arbitrate(self):
        """brra needs no randomness, hence no LFSR port."""
        source = """
            li r1, 200
        loop:
            brra a
        a:  brra b
        b:  addi r1, r1, -1
            bne r1, r0, loop
            halt
        """
        result = run(source, shared=True)
        assert result.stats.brr_packet_splits == 0

    def test_paper_config_uses_replication(self):
        assert TimingConfig().brr_shared_lfsr is False
