"""``repro.api`` — the stable, versioned public façade.

Everything a script needs to regenerate the paper's evaluation lives
behind this module: one keyword-only ``run_<command>()`` function per
CLI command, plus the engine types (:class:`ExperimentEngine`,
:class:`EngineConfig`, :class:`WindowSpec`, :class:`WindowFailure`).
The CLI handlers in :mod:`repro.cli` are thin wrappers over these
functions, so ``python -m repro figure9`` and
``repro.api.run_figure9()`` are provably the same code path.

Stability policy (see ``docs/api.md`` for the full contract):

* names exported in ``__all__`` follow deprecate-then-remove — at
  least one minor release emitting :class:`DeprecationWarning` before
  any breaking change;
* every ``run_*`` function takes keyword-only arguments, so adding
  parameters is never a breaking change;
* each function returns a :class:`FigureResult` whose ``data`` is the
  command's machine-readable document (what ``--json`` prints) and
  whose ``text`` is the rendered table (what the default CLI prints);
* anything *not* exported here (``repro.engine`` internals, the
  experiment modules, simulator guts) may change without notice.

Every function accepts ``engine=`` to supply a configured
:class:`ExperimentEngine`; with ``None`` the process-wide default
engine is used (configure it via :func:`set_engine` or environment
variables — see ``docs/engine.md``).
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from .engine import (
    EngineConfig,
    ExperimentEngine,
    IntegrityError,
    ResultCache,
    RunRecorder,
    WindowFailure,
    WindowSpec,
    format_doctor,
    get_engine,
    is_failure,
    run_windows,
    set_engine,
)
from .engine import run_doctor as _engine_run_doctor
from .stats import SamplingPlan

#: Default per-command scales, shared with the CLI so the two entry
#: points cannot drift: fraction of the paper's invocation counts for
#: the accuracy figures, outer-loop multiplier for Figure 12, and
#: microbenchmark characters for Figures 13/14/2.
DEFAULT_ACCURACY_SCALE = 0.05
DEFAULT_JVM_SCALE = 3.0
DEFAULT_MICRO_CHARS = 4000


@dataclass(frozen=True)
class FigureResult:
    """One command's output: machine-readable data + rendered table."""

    data: Any
    text: str


@contextlib.contextmanager
def _engine_ctx(engine: Optional[ExperimentEngine]) -> Iterator[None]:
    """Temporarily install ``engine`` as the process default, so the
    experiment code (which resolves the default engine internally)
    runs every window through it."""
    if engine is None:
        yield
        return
    from .engine import core as _core

    previous = _core._default_engine
    set_engine(engine)
    try:
        yield
    finally:
        set_engine(previous)


# ----------------------------------------------------------------------
# Sampling/seed knobs, resolved once for every figure command.


def _resolve_seed(seed: Optional[int],
                  engine: Optional[ExperimentEngine],
                  default: int) -> int:
    """The uniform experiment seed: explicit argument first, then the
    engine's ``--seed``/``REPRO_SEED`` config, then the figure's
    historical default."""
    if seed is not None:
        return int(seed)
    config_seed = (engine or get_engine()).config.seed
    if config_seed is not None:
        return int(config_seed)
    return default


def _resolve_plan(sample: Any, seed: int) -> Optional[SamplingPlan]:
    """Coerce a ``sample=`` value (plan string, :class:`SamplingPlan`
    or ``None``) into a plan seeded with the resolved seed."""
    if sample is None:
        return None
    if isinstance(sample, SamplingPlan):
        return sample
    return SamplingPlan.parse(str(sample), seed=seed)


def _sampled_data(rows: Any, sampling: Any) -> Any:
    """Exhaustive runs keep their historical document shape; sampled
    runs wrap it so the plan/CI telemetry travels with the rows."""
    if sampling is None:
        return rows
    return {"rows": rows, "sampling": sampling.to_dict()}


# ----------------------------------------------------------------------
# One façade function per CLI command.


def run_figure9(*, scale: float = DEFAULT_ACCURACY_SCALE,
                seeds: Optional[Sequence[int]] = None,
                seed: Optional[int] = None,
                sample: Any = None,
                engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 9: sampling accuracy at interval 2^10."""
    from .experiments import figure9_report, format_accuracy_rows

    resolved = _resolve_seed(seed, engine, 0)
    plan = _resolve_plan(sample, resolved)
    with _engine_ctx(engine):
        report = figure9_report(
            scale=scale, seeds=tuple(seeds) if seeds is not None
            else (resolved,), plan=plan)
    return FigureResult(
        _sampled_data(report.rows, report.sampling),
        format_accuracy_rows(report.rows,
                             f"Figure 9: accuracy at 2^10 (scale {scale})",
                             sampling=report.sampling))


def run_figure10(*, scale: float = DEFAULT_ACCURACY_SCALE,
                 seeds: Optional[Sequence[int]] = None,
                 seed: Optional[int] = None,
                 sample: Any = None,
                 engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 10: sampling accuracy at interval 2^13."""
    from .experiments import figure10_report, format_accuracy_rows

    resolved = _resolve_seed(seed, engine, 0)
    plan = _resolve_plan(sample, resolved)
    with _engine_ctx(engine):
        report = figure10_report(
            scale=scale, seeds=tuple(seeds) if seeds is not None
            else (resolved,), plan=plan)
    return FigureResult(
        _sampled_data(report.rows, report.sampling),
        format_accuracy_rows(report.rows,
                             f"Figure 10: accuracy at 2^13 (scale {scale})",
                             sampling=report.sampling))


def run_figure12(*, scale: float = DEFAULT_JVM_SCALE, interval: int = 1024,
                 seed: Optional[int] = None,
                 sample: Any = None,
                 engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 12: framework overhead on the JVM workloads."""
    from .experiments import figure12_report, format_fig12_rows

    plan = _resolve_plan(sample, _resolve_seed(seed, engine, 0))
    with _engine_ctx(engine):
        report = figure12_report(scale=scale, interval=interval, plan=plan)
    return FigureResult(
        _sampled_data([dataclasses.asdict(row) for row in report.rows],
                      report.sampling),
        format_fig12_rows(report.rows, sampling=report.sampling))


def _microbench_sweep(scale: int, engine: Optional[ExperimentEngine],
                      seed: Optional[int] = None, sample: Any = None):
    from .experiments import microbench_sweep

    resolved = _resolve_seed(seed, engine, 1)
    plan = _resolve_plan(sample, resolved)
    with _engine_ctx(engine):
        return microbench_sweep(n_chars=int(scale), seed=resolved, plan=plan)


def run_figure13(*, scale: int = DEFAULT_MICRO_CHARS,
                 seed: Optional[int] = None,
                 sample: Any = None,
                 engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 13: percent overhead vs. sampling interval."""
    from .experiments import format_figure13

    sweep = _microbench_sweep(scale, engine, seed, sample)
    return FigureResult(sweep.to_dict(), format_figure13(sweep))


def run_figure14(*, scale: int = DEFAULT_MICRO_CHARS,
                 seed: Optional[int] = None,
                 sample: Any = None,
                 engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 14: added cycles per dynamic sampling site."""
    from .experiments import format_figure14

    sweep = _microbench_sweep(scale, engine, seed, sample)
    return FigureResult(sweep.to_dict(), format_figure14(sweep))


def run_figure2(*, scale: int = DEFAULT_MICRO_CHARS,
                seed: Optional[int] = None,
                engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Figure 2-style decomposition of framework overhead.

    The cost decomposition fits both curve parameters from the full
    interval sweep, so this command takes ``seed`` but not ``sample``.
    """
    from .analysis import decompose, format_decomposition
    from .experiments import microbench_sweep

    resolved = _resolve_seed(seed, engine, 1)
    with _engine_ctx(engine):
        sweep = microbench_sweep(n_chars=int(scale), seed=resolved)
        decompositions = [decompose(sweep, kind, "full-dup")
                          for kind in ("cbs", "brr")]
    text = "\n".join(format_decomposition(d) for d in decompositions)
    return FigureResult([dataclasses.asdict(d) for d in decompositions],
                        text)


def run_sensitivity(*, scale: float = DEFAULT_ACCURACY_SCALE,
                    chars: int = DEFAULT_MICRO_CHARS,
                    engine: Optional[ExperimentEngine] = None
                    ) -> FigureResult:
    """Tap/bit-policy/seed-noise sensitivity plus the timing sweep."""
    from .experiments import (
        bit_policy_sensitivity,
        format_sensitivity_result,
        format_timing_sweep,
        seed_noise_baseline,
        taps_sensitivity,
        timing_config_sweep,
    )

    with _engine_ctx(engine):
        taps = taps_sensitivity(scale=scale)
        bits = bit_policy_sensitivity(scale=scale)
        noise = seed_noise_baseline(scale=scale)
        timing = timing_config_sweep(n_chars=chars)
    text = "\n".join([
        format_sensitivity_result(taps),
        format_sensitivity_result(bits),
        f"seed-variation baseline: mean={noise['mean']:.2f}% "
        f"std={noise['std']:.3f}%",
        format_timing_sweep(timing),
    ])
    return FigureResult(
        {"taps": taps.to_dict(), "bit_policy": bits.to_dict(),
         "seed_noise": noise, "timing": timing.to_dict()}, text)


def run_cost(*, engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Section 3.3 hardware-cost table."""
    from .experiments import cost_rows, format_cost_table

    with _engine_ctx(engine):
        return FigureResult(
            [dataclasses.asdict(row) for row in cost_rows()],
            format_cost_table())


def run_scorecard(*, quick: bool = True,
                  engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """PASS/FAIL every headline claim; ``data["failed"]`` mirrors the
    CLI's non-zero exit condition."""
    from .experiments import format_scorecard, scorecard_failed
    from .experiments import run_scorecard as _run_scorecard

    with _engine_ctx(engine):
        results = _run_scorecard(quick=quick)
    data = {
        "claims": [result.to_dict() for result in results],
        "passed": sum(r.passed for r in results),
        "total": len(results),
        "failed": scorecard_failed(results),
    }
    return FigureResult(data, format_scorecard(results))


def run_fuzz(*, windows: int = 25, seed: Optional[int] = None,
             scheme: str = "mixed", blocks: int = 24,
             shrink: bool = True, serve_diff: bool = False,
             engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Cross-path differential fuzzing over generated programs.

    Runs ``windows`` adversarial programs through every independent
    execution path (lock-step, golden replay, loop kernel, vector
    kernel, trap-emulated ``brr``) and diffs canonical stats;
    divergences are shrunk to minimal programs.  ``serve_diff``
    additionally byte-compares each window served by an ephemeral
    ``repro serve`` instance against the local façade document.
    ``data["failed"]`` mirrors the CLI's non-zero exit condition.  The
    harness re-executes every path by construction, so no window cache
    is involved; ``engine`` only supplies the default seed.
    """
    from .fuzz import format_fuzz, run_differential_fuzz

    resolved = _resolve_seed(seed, engine, 0)
    report = run_differential_fuzz(windows=int(windows), seed=resolved,
                                   scheme=scheme, blocks=int(blocks),
                                   shrink=shrink, serve_diff=serve_diff)
    return FigureResult(report.to_dict(), format_fuzz(report))


def run_entropy(*, scale: int = 64, stride: int = 8,
                seed: Optional[int] = None,
                sample: Any = None,
                engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Entropy sensitivity: predictor pollution vs. randomness density.

    ``scale`` is the measured-loop iteration count of each generated
    grid program.
    """
    from .experiments import entropy_sweep, format_entropy

    resolved = _resolve_seed(seed, engine, 0)
    plan = _resolve_plan(sample, resolved)
    with _engine_ctx(engine):
        sweep = entropy_sweep(iterations=int(scale), stride=int(stride),
                              seed=resolved, plan=plan)
    return FigureResult(sweep.to_dict(), format_entropy(sweep))


def run_doctor(*, ledgers: Sequence[str] = (), repair: bool = False,
               engine: Optional[ExperimentEngine] = None) -> FigureResult:
    """Integrity audit of both on-disk stores plus any run ledgers
    (the ``repro doctor`` command — see ``docs/integrity.md``).

    ``data["clean"]`` is True when nothing was corrupt; with ``repair``
    corrupt store entries are quarantined (their next use re-executes)
    and damaged ledgers are rewritten in place.
    """
    target = engine or get_engine()
    report = _engine_run_doctor(target.cache, target.trace_store,
                                ledgers=tuple(ledgers), repair=repair)
    return FigureResult(report, format_doctor(report))


__all__ = [
    # engine surface
    "EngineConfig",
    "ExperimentEngine",
    "IntegrityError",
    "ResultCache",
    "RunRecorder",
    "WindowFailure",
    "WindowSpec",
    "get_engine",
    "is_failure",
    "run_windows",
    "set_engine",
    # sampling surface
    "SamplingPlan",
    # command façade
    "FigureResult",
    "run_figure9",
    "run_figure10",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_figure2",
    "run_sensitivity",
    "run_cost",
    "run_scorecard",
    "run_fuzz",
    "run_entropy",
    "run_doctor",
    # shared defaults
    "DEFAULT_ACCURACY_SCALE",
    "DEFAULT_JVM_SCALE",
    "DEFAULT_MICRO_CHARS",
]
