"""Statistical sampling of window populations (``docs/sampling.md``).

The plan/execute/estimate pipeline: experiments declare their full
window space as a :class:`WindowPopulation` of :class:`Cell`\\ s, a
:class:`SamplingPlan` deterministically selects which cells a run
executes (``exhaustive`` | ``fraction`` | ``budget`` | ``adaptive``),
and the estimators turn the sampled payloads into point estimates
with confidence intervals (:class:`Estimate`,
:class:`SamplingSummary`).  ``fraction=1.0`` degenerates into the
pre-sampling exhaustive pipeline byte for byte.

Execution lives on the engine —
:meth:`repro.engine.core.ExperimentEngine.run_plan` /
:func:`repro.engine.core.run_population` — so retries, the ledger and
fault policies apply to sampled runs unchanged.
"""

from .estimators import (
    Estimate,
    SamplingSummary,
    estimate_mean,
    finite_population_correction,
    matched_pair_estimate,
    stratified_estimate,
)
from .plan import PLAN_MODES, SamplingPlan
from .population import Cell, WindowPopulation

__all__ = [
    "Cell",
    "WindowPopulation",
    "PLAN_MODES",
    "SamplingPlan",
    "Estimate",
    "SamplingSummary",
    "estimate_mean",
    "finite_population_correction",
    "matched_pair_estimate",
    "stratified_estimate",
]
