"""Harness validation: the vectorised sampling fast path.

The accuracy experiments rely on position streams instead of
per-event sampler objects.  This bench (a) proves the fast path is
bit-identical to the hardware model and (b) measures the speedup that
makes the full-scale Figure 9/10 runs feasible.
"""

import numpy as np

from _shared import report

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.sampling import BrrSampler, brr_positions

N = 1 << 15
FIELD = 3
SEED = 0xACE1


def event_level_positions():
    sampler = BrrSampler(field=FIELD,
                         unit=BranchOnRandomUnit(Lfsr(16, seed=SEED)))
    return [i for i in range(N) if sampler.should_sample()]


def test_event_level_sampler(benchmark):
    positions = benchmark(event_level_positions)
    assert len(positions) > 0


def test_vectorised_positions(benchmark):
    positions = benchmark(lambda: brr_positions(N, FIELD, width=16,
                                                seed=SEED))
    assert positions.size > 0


def test_fast_path_bit_identical(benchmark):
    def both():
        slow = event_level_positions()
        fast = brr_positions(N, FIELD, width=16, seed=SEED)
        return slow, fast

    slow, fast = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.array_equal(np.asarray(slow), fast)
    report(f"\nfast-path validation: {fast.size} brr sample positions "
           f"over {N} events, bit-identical to the hardware model")
