"""The circuit breaker around the shared backend tier.

Contract (``docs/serve.md``): every backend call gets a wall-clock
budget; exhausted calls retry with backoff; ``failures`` consecutive
exhausted calls open the breaker (calls then fail fast — the store
degrades to local-tiers-only); after a cooldown one half-open probe is
admitted, whose success closes the breaker.  Telemetry (state
transitions, shed counts) is visible via ``stats()``, and failed
pushes are remembered so ``flush()`` converges the corpus on drain.
"""

import time

import pytest

from repro.engine import ResultCache
from repro.engine.cache import resolve_backend
from repro.engine.spec import WindowSpec
from repro.store import (
    BackendUnavailable,
    CircuitBreakerBackend,
    FilesystemBackend,
    maybe_wrap_breaker,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FlakyBackend(FilesystemBackend):
    """A filesystem backend with a switchable failure mode."""

    def __init__(self, root):
        super().__init__(root)
        self.mode = "ok"  # ok | error | hang
        self.hang_seconds = 0.5
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.mode == "error":
            raise OSError("injected")
        if self.mode == "hang":
            time.sleep(self.hang_seconds)

    def fetch(self, name, dest):
        self._maybe_fail()
        return super().fetch(name, dest)

    def push(self, name, src):
        self._maybe_fail()
        return super().push(name, src)


def _breaker(inner, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    defaults = dict(failures=2, reset_after=10.0, call_timeout=None,
                    retries=0, backoff=0.0, clock=clock,
                    sleep=lambda seconds: None)
    defaults.update(kwargs)
    return CircuitBreakerBackend(inner, **defaults), clock


def _seed_entry(root, name=b"payload"):
    path = root / "entry.bin"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(name)
    return path


class TestStateMachine:
    def test_consecutive_failures_open_the_breaker(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner, failures=3)
        inner.mode = "error"
        for _ in range(2):
            assert breaker.fetch("x", tmp_path / "dest") is False
        assert breaker.state == "closed"
        breaker.fetch("x", tmp_path / "dest")
        assert breaker.state == "open"
        assert breaker.opens == 1

    def test_open_breaker_fails_fast_without_touching_backend(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner)
        inner.mode = "error"
        breaker.fetch("x", tmp_path / "dest")
        breaker.fetch("x", tmp_path / "dest")
        assert breaker.state == "open"
        calls = inner.calls
        assert breaker.fetch("x", tmp_path / "dest") is False
        assert inner.calls == calls  # shed, not attempted
        assert breaker.fast_failed == 1

    def test_half_open_probe_success_closes(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, clock = _breaker(inner)
        src = _seed_entry(tmp_path)
        assert breaker.push("entry", src)  # published while healthy
        inner.mode = "error"
        breaker.fetch("entry", tmp_path / "dest")
        breaker.fetch("entry", tmp_path / "dest")
        assert breaker.state == "open"
        clock.advance(10.1)
        inner.mode = "ok"
        assert breaker.fetch("entry", tmp_path / "dest") is True
        assert breaker.state == "closed"
        assert breaker.closes == 1
        assert (tmp_path / "dest").read_bytes() == b"payload"

    def test_half_open_probe_failure_reopens(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, clock = _breaker(inner)
        inner.mode = "error"
        breaker.fetch("x", tmp_path / "dest")
        breaker.fetch("x", tmp_path / "dest")
        clock.advance(10.1)
        breaker.fetch("x", tmp_path / "dest")  # the probe, still failing
        assert breaker.state == "open"
        assert breaker.opens == 2
        # Cooldown restarted: still shedding before the next window.
        assert breaker.fetch("x", tmp_path / "dest") is False
        assert breaker.fast_failed >= 1

    def test_success_resets_the_consecutive_count(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner, failures=2)
        src = _seed_entry(tmp_path)
        inner.mode = "error"
        breaker.push("entry", src)
        inner.mode = "ok"
        assert breaker.push("entry", src) is True
        inner.mode = "error"
        breaker.push("entry", src)
        assert breaker.state == "closed"  # 1 failure, not 2 consecutive

    def test_transitions_are_recorded(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, clock = _breaker(inner)
        inner.mode = "error"
        breaker.fetch("x", tmp_path / "dest")
        breaker.fetch("x", tmp_path / "dest")
        clock.advance(10.1)
        inner.mode = "ok"
        breaker.fetch("x", tmp_path / "dest")
        states = [t["to"] for t in breaker.breaker_stats()["transitions"]]
        assert states == ["open", "half_open", "closed"]


class TestCallPlumbing:
    def test_retries_then_succeeds_without_breaker_penalty(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        src = _seed_entry(tmp_path)
        inner.push("entry", src)
        attempts = []

        class OnceFlaky(FilesystemBackend):
            def fetch(self, name, dest):
                attempts.append(name)
                if len(attempts) == 1:
                    raise OSError("transient")
                return inner.fetch(name, dest)

        breaker, _clock = _breaker(OnceFlaky(tmp_path / "shared"), retries=1)
        assert breaker.fetch("entry", tmp_path / "dest") is True
        assert len(attempts) == 2
        assert breaker.failures == 0  # retried within the call

    def test_hung_call_is_abandoned_within_budget(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        inner.mode = "hang"
        inner.hang_seconds = 5.0
        breaker = CircuitBreakerBackend(inner, failures=1, call_timeout=0.2,
                                        retries=0, backoff=0.0)
        started = time.monotonic()
        assert breaker.fetch("x", tmp_path / "dest") is False
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # nowhere near the 5s hang
        assert breaker.timeouts == 1
        assert breaker.state == "open"

    def test_timeout_raises_backend_unavailable_internally(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        inner.mode = "hang"
        inner.hang_seconds = 5.0
        breaker = CircuitBreakerBackend(inner, call_timeout=0.1)
        with pytest.raises(BackendUnavailable):
            breaker._timed(inner.fetch, ("x", tmp_path / "dest"))

    def test_counters_delegate_to_inner_backend(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner)
        assert breaker.counters is inner.counters

    def test_stats_carry_breaker_block(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner)
        stats = breaker.stats()
        assert stats["breaker"]["state"] == "closed"
        assert "opens" in stats["breaker"]
        assert stats["backend"].startswith("breaker(fs:")

    def test_bad_arguments_rejected(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        with pytest.raises(ValueError):
            CircuitBreakerBackend(inner, failures=0)
        with pytest.raises(ValueError):
            CircuitBreakerBackend(inner, call_timeout=0)
        with pytest.raises(ValueError):
            CircuitBreakerBackend(inner, reset_after=-1)


class TestWrapping:
    def test_spec_backends_are_wrapped_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BREAKER", raising=False)
        backend = resolve_backend(f"fs:{tmp_path / 'shared'}", "results")
        assert isinstance(backend, CircuitBreakerBackend)
        assert isinstance(backend.inner, FilesystemBackend)

    def test_env_can_disable_wrapping(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER", "0")
        backend = resolve_backend(f"fs:{tmp_path / 'shared'}", "results")
        assert isinstance(backend, FilesystemBackend)

    def test_live_backend_instances_pass_through(self, tmp_path):
        live = FilesystemBackend(tmp_path / "shared")
        assert resolve_backend(live, "results") is live

    def test_maybe_wrap_is_idempotent(self, tmp_path):
        breaker, _clock = _breaker(FlakyBackend(tmp_path / "shared"))
        assert maybe_wrap_breaker(breaker, True) is breaker
        assert maybe_wrap_breaker(None, True) is None

    def test_env_knobs_tune_the_breaker(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_FAILURES", "7")
        monkeypatch.setenv("REPRO_BREAKER_RESET", "1.5")
        monkeypatch.setenv("REPRO_BREAKER_TIMEOUT", "0.25")
        backend = resolve_backend(f"fs:{tmp_path / 'shared'}", "results",
                                  True)
        assert backend.failure_threshold == 7
        assert backend.reset_after == 1.5
        assert backend.call_timeout == 0.25


class TestStoreDegradation:
    """A flaky/hostile backend degrades the store, never the request."""

    def _cache(self, tmp_path, backend):
        return ResultCache(tmp_path / "cache", backend=backend)

    def _spec(self):
        return WindowSpec(kind="probe", params=(("value", 1),))

    def test_raising_backend_is_contained_on_put_and_get(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        inner.mode = "error"
        cache = self._cache(tmp_path, inner)  # no breaker: worst case
        spec = self._spec()
        assert cache.put(spec, {"answer": 42}) is True  # local write lands
        assert cache.get(spec) == {"answer": 42}

    def test_failed_pushes_flush_once_backend_recovers(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, clock = _breaker(inner, failures=1)
        cache = self._cache(tmp_path, breaker)
        spec = self._spec()
        inner.mode = "error"
        cache.put(spec, {"answer": 42})
        assert breaker.state == "open"
        assert cache.stats()["push_pending"] == 1
        inner.mode = "ok"
        clock.advance(10.1)
        report = cache.flush()
        assert report == {"pending": 1, "published": 1}
        assert cache.stats()["push_pending"] == 0
        assert breaker.state == "closed"
        # The entry actually reached the shared corpus.
        pushed = list((tmp_path / "shared").rglob("*.json"))
        assert len(pushed) == 1

    def test_open_breaker_means_local_tiers_only(self, tmp_path):
        inner = FlakyBackend(tmp_path / "shared")
        breaker, _clock = _breaker(inner, failures=1)
        cache = self._cache(tmp_path, breaker)
        spec = self._spec()
        inner.mode = "error"
        cache.put(spec, {"answer": 42})
        assert breaker.state == "open"
        calls = inner.calls
        assert cache.get(spec) == {"answer": 42}  # served locally
        other = WindowSpec(kind="probe", params=(("value", 2),))
        assert cache.get(other) is None  # miss: backend not consulted
        assert inner.calls == calls
