"""Shared experiment-execution subsystem (see ``docs/engine.md``).

Every figure reproduction decomposes into independent, deterministic
simulation windows.  This package turns that observation into
infrastructure: declarative :class:`WindowSpec`s, a content-addressed
on-disk :class:`ResultCache`, a record-once / replay-many
:class:`TraceStore` keyed by each window's functional projection
(``docs/trace_format.md``), a process-pool executor with a serial
deterministic fallback, and structured JSONL run artifacts.
"""

from .artifacts import RunRecorder, WindowRecord
from .cache import ResultCache, default_cache_dir
from .core import (
    ExperimentEngine,
    default_jobs,
    get_engine,
    run_windows,
    set_engine,
)
from .spec import SCHEMA_VERSION, WindowSpec
from .tracestore import (
    TIMING_ONLY_PARAMS,
    TRACE_STORE_VERSION,
    TraceStore,
    active_store,
    default_trace_dir,
    functional_key,
    trace_enabled_by_env,
)

__all__ = [
    "SCHEMA_VERSION",
    "WindowSpec",
    "ResultCache",
    "default_cache_dir",
    "RunRecorder",
    "WindowRecord",
    "ExperimentEngine",
    "default_jobs",
    "get_engine",
    "run_windows",
    "set_engine",
    "TIMING_ONLY_PARAMS",
    "TRACE_STORE_VERSION",
    "TraceStore",
    "active_store",
    "default_trace_dir",
    "functional_key",
    "trace_enabled_by_env",
]
