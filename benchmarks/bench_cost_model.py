"""Section 3.3 summary: the hardware cost table.

Paper claims: "for a single-issue machine, we estimate branch-on-random
can be implemented with roughly 20 bits of state (for the LFSR) and
less than 100 gates ... for a 4-wide superscalar, branch-on-random
should contribute less than 100 bits of state and less than 400
gates."
"""


from _shared import run_once, report

from repro.core.cost import estimate_cost, paper_design_points
from repro.experiments import format_cost_table


def test_cost_table(benchmark):
    table = run_once(benchmark, format_cost_table)
    report("\n" + table)

    single, wide = paper_design_points()
    assert single.state_bits == 20
    assert single.gates_macro < 100
    assert wide.state_bits < 100
    assert wide.gates_macro < 400


def test_cost_scaling_sweep(benchmark):
    """Replication scales linearly; sharing trades gates for state."""

    def sweep():
        return {
            width: estimate_cost(decode_width=width, replicated=True)
            for width in (1, 2, 4, 8)
        }

    estimates = run_once(benchmark, sweep)
    for width, est in estimates.items():
        assert est.state_bits == 20 * width
    shared = estimate_cost(decode_width=4, replicated=False)
    assert shared.state_bits == 20
    assert shared.gates_macro > 0
