"""The ``repro serve`` multi-tenant simulation service.

The tentpole contract (satellite coverage): N concurrent identical
requests coalesce onto exactly one simulation and receive
byte-identical JSON; the served document's ``data`` matches a local
``repro.api`` run of the same command byte-for-byte; validation
failures are clean 400s; ``/healthz`` and ``/statsz`` expose liveness
and the serve + store-tier counters.
"""

import asyncio
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import api
from repro.engine import EngineConfig, ExperimentEngine, ResultCache
from repro.serve import (
    RequestError,
    ServerThread,
    SimulationService,
    request_key,
)
from repro.serve.service import validate_request

SCALE = 400  # characters: small enough for sub-second microbenchmarks


def _engine(tmp_path):
    return ExperimentEngine(
        config=EngineConfig(jobs=1),
        cache=ResultCache(tmp_path / "cache", backend=None))


@pytest.fixture()
def server(tmp_path):
    with ServerThread(SimulationService(engine=_engine(tmp_path))) as thread:
        yield thread


def _get(server, path):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=120)


def _post(server, document):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/v1/figure",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    return urllib.request.urlopen(request, timeout=120)


# ----------------------------------------------------------------------
# Request validation and canonicalisation (no server needed).


class TestValidation:
    def test_unknown_command_rejected(self):
        with pytest.raises(RequestError, match="unknown command"):
            validate_request("rm_rf", {})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(RequestError, match="unknown parameter"):
            validate_request("figure13", {"bogus": 1})

    def test_bad_value_rejected(self):
        with pytest.raises(RequestError, match="bad value"):
            validate_request("figure13", {"scale": "many"})
        with pytest.raises(RequestError, match="bad value"):
            validate_request("figure13", {"scale": "400.5"})

    def test_coercion_canonicalises(self):
        # "2" and 2 and 2.0 are the same request.
        keys = {request_key("figure12", validate_request(
            "figure12", {"scale": raw})) for raw in ("2", 2, 2.0)}
        assert len(keys) == 1

    def test_seed_lists_from_query_and_json(self):
        from_query = validate_request("figure9", {"seeds": "0,1,2"})
        from_json = validate_request("figure9", {"seeds": [0, 1, 2]})
        assert from_query == from_json
        assert request_key("figure9", from_query) \
            == request_key("figure9", from_json)

    def test_param_order_does_not_matter(self):
        a = validate_request("figure12", {"scale": 2, "interval": 512})
        b = validate_request("figure12", {"interval": 512, "scale": 2})
        assert request_key("figure12", a) == request_key("figure12", b)

    def test_new_command_knobs_reach_the_request_key(self):
        # Regression: requests differing only in a new command's knob
        # must NOT coalesce — every whitelisted knob has to land in the
        # canonical key.
        fuzz_keys = {request_key("fuzz", validate_request(
            "fuzz", {"scheme": scheme, "windows": 5}))
            for scheme in ("cbs", "brr", "mixed")}
        assert len(fuzz_keys) == 3
        entropy_keys = {request_key("entropy", validate_request(
            "entropy", {"stride": stride})) for stride in (4, 8)}
        assert len(entropy_keys) == 2

    def test_scheme_choice_is_validated(self):
        with pytest.raises(RequestError, match="bad value"):
            validate_request("fuzz", {"scheme": "surprise"})
        assert validate_request("fuzz", {"scheme": " BRR "}) \
            == {"scheme": "brr"}

    def test_whitelist_matches_facade_signatures(self):
        # Audit: every whitelisted parameter must be a keyword of its
        # facade function, and every facade keyword (minus the engine
        # plumbing) must be whitelisted — so a knob added to the API
        # can never silently coalesce across distinct values.
        import inspect

        from repro.serve.service import COMMANDS

        for command, allowed in COMMANDS.items():
            signature = inspect.signature(getattr(api, f"run_{command}"))
            facade = {name for name in signature.parameters
                      if name != "engine"}
            assert set(allowed) == facade, command


# ----------------------------------------------------------------------
# Coalescing (service level, no sockets).


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_simulation(
            self, tmp_path):
        service = SimulationService(engine=_engine(tmp_path))

        async def fan_out():
            return await asyncio.gather(*[
                service.submit("figure13", {"scale": SCALE})
                for _ in range(6)])

        results = asyncio.new_event_loop().run_until_complete(fan_out())
        assert service.counters.requests == 6
        assert service.counters.simulations == 1
        assert service.counters.coalesced == 5
        documents = {json.dumps(r.document(), sort_keys=True)
                     for r in results}
        assert len(documents) == 1
        assert sum(r.coalesced for r in results) == 5

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        service = SimulationService(engine=_engine(tmp_path))

        async def fan_out():
            return await asyncio.gather(
                service.submit("figure13", {"scale": SCALE}),
                service.submit("figure14", {"scale": SCALE}))

        asyncio.new_event_loop().run_until_complete(fan_out())
        assert service.counters.simulations == 2
        assert service.counters.coalesced == 0

    def test_sequential_requests_recompute_through_engine_cache(
            self, tmp_path):
        """After the in-flight window closes, a repeat request runs
        again — but its simulation windows are engine-cache hits."""
        service = SimulationService(engine=_engine(tmp_path))
        loop = asyncio.new_event_loop()
        loop.run_until_complete(service.submit("figure13", {"scale": SCALE}))
        loop.run_until_complete(service.submit("figure13", {"scale": SCALE}))
        assert service.counters.simulations == 2
        summary = service.engine.summary()
        assert summary["cache_hits"] > 0


# ----------------------------------------------------------------------
# The HTTP surface.


class TestHttp:
    def test_healthz(self, server):
        with _get(server, "/healthz") as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_concurrent_identical_requests_byte_identical(self, server):
        path = f"/v1/figure/figure13?scale={SCALE}"
        with ThreadPoolExecutor(6) as pool:
            bodies = list(pool.map(
                lambda _: _get(server, path).read(), range(6)))
        assert len(set(bodies)) == 1
        stats = json.loads(_get(server, "/statsz").read())
        assert stats["serve"]["simulations"] == 1
        assert stats["serve"]["coalesced"] == 5
        assert stats["serve"]["requests"] == 6

    def test_get_and_post_agree(self, server):
        get_body = _get(server, f"/v1/figure/figure13?scale={SCALE}").read()
        post_body = _post(server, {
            "command": "figure13", "params": {"scale": SCALE}}).read()
        assert get_body == post_body

    def test_served_data_matches_local_api(self, server, tmp_path):
        body = json.loads(_get(
            server, f"/v1/figure/figure13?scale={SCALE}").read())
        local = api.run_figure13(
            scale=SCALE,
            engine=ExperimentEngine(
                config=EngineConfig(jobs=1),
                cache=ResultCache(tmp_path / "local", backend=None)))
        assert json.dumps(body["data"], sort_keys=True) \
            == json.dumps(local.data, sort_keys=True)
        assert body["text"] == local.text

    def test_validation_errors_are_400(self, server):
        for path in ("/v1/figure/rm_rf",
                     "/v1/figure/figure13?bogus=1",
                     f"/v1/figure/figure13?scale=lots",
                     "/v1/figure"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, path)
            assert excinfo.value.code == 400
            assert "error" in json.loads(excinfo.value.read())
        stats = json.loads(_get(server, "/statsz").read())
        assert stats["serve"]["rejected"] >= 3
        assert stats["serve"]["simulations"] == 0

    def test_statsz_surfaces_store_tiers(self, server):
        _get(server, f"/v1/figure/figure13?scale={SCALE}").read()
        stats = json.loads(_get(server, "/statsz").read())
        for store in ("results", "traces"):
            assert set(stats["stores"][store]) \
                >= {"memory", "disk", "backend", "integrity"}
        assert stats["engine"]["windows"] > 0

    def test_post_with_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/figure",
            data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
