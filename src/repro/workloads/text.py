"""Synthetic Shakespeare-like character streams (Section 5.3).

The paper's microbenchmark processes "half a million characters" of
Shakespearian plays, noting that "the character stream ... has words
that are all upper-case or all lower-case", which makes the
classifying branches data dependent and caps branch prediction
accuracy around 84.5%.  This generator reproduces those statistics:
words of varied length, each entirely lower- or upper-case, separated
by spaces and occasional punctuation/newlines.
"""

from __future__ import annotations

import random
import warnings
from typing import Tuple

#: Character class codes used by analysis helpers.
LOWER, UPPER, OTHER = "lower", "upper", "other"

_WORD_LENGTHS = (2, 3, 4, 5, 6, 7, 8, 9)
_WORD_LENGTH_WEIGHTS = (6, 14, 18, 16, 12, 8, 4, 2)
_PUNCTUATION = b".,;:!?'\n-"


def _generate_text(
    n_chars: int,
    seed: int = 0,
    upper_word_prob: float = 0.18,
    punctuation_prob: float = 0.12,
) -> bytes:
    """Generate exactly ``n_chars`` bytes of play-like text."""
    if n_chars < 0:
        raise ValueError("character count must be non-negative")
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < n_chars:
        length = rng.choices(_WORD_LENGTHS, weights=_WORD_LENGTH_WEIGHTS)[0]
        if rng.random() < upper_word_prob:
            first, span = ord("A"), 26
        else:
            first, span = ord("a"), 26
        for _ in range(length):
            out.append(first + rng.randrange(span))
        if rng.random() < punctuation_prob:
            out.append(rng.choice(_PUNCTUATION))
        out.append(ord(" "))
    return bytes(out[:n_chars])


def generate_text(
    n_chars: int,
    seed: int = 0,
    upper_word_prob: float = 0.18,
    punctuation_prob: float = 0.12,
) -> bytes:
    """Deprecated shim over the workload registry; see
    :func:`repro.workloads.registry.get_workload`."""
    warnings.warn(
        "generate_text() is deprecated; use "
        "get_workload('text', n_chars=...).raw instead",
        DeprecationWarning, stacklevel=2)
    return _generate_text(n_chars, seed=seed,
                          upper_word_prob=upper_word_prob,
                          punctuation_prob=punctuation_prob)


def classify(char: int) -> str:
    """Class of one byte, mirroring the microbenchmark's branch tree:
    >= 'a' is lower-case, else >= 'A' is upper-case, else other."""
    if char >= ord("a"):
        return LOWER
    if char >= ord("A"):
        return UPPER
    return OTHER


def class_counts(text: bytes) -> Tuple[int, int, int]:
    """(lower, upper, other) character counts."""
    lower = upper = other = 0
    for char in text:
        if char >= 97:
            lower += 1
        elif char >= 65:
            upper += 1
        else:
            other += 1
    return lower, upper, other


def reference_checksum(text: bytes) -> int:
    """The checksum the microbenchmark computes, evaluated in Python.

    Lower-case characters are added, upper-case characters are added
    doubled, and other characters are XORed — matching the three
    conditional update paths in the generated assembly.
    """
    checksum = 0
    for char in text:
        if char >= 97:
            checksum = (checksum + char) & 0xFFFFFFFF
        elif char >= 65:
            checksum = (checksum + 2 * char) & 0xFFFFFFFF
        else:
            checksum ^= char
    return checksum


def site_encounters(text: bytes) -> int:
    """Instrumentation sites dynamically encountered while processing
    ``text``: one edge site for a lower-case character, two for the
    others (the second classifying branch is also profiled)."""
    lower, upper, other = class_counts(text)
    return lower + 2 * (upper + other)
