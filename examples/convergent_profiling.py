#!/usr/bin/env python3
"""Convergent profiling (Section 7) on top of branch-on-random.

"In convergent profiling, a high sampling rate is used initially, but
as the profile 'converges' the sampling rate can be reduced ... If the
low frequency samples appear out of line with the characterization,
sampling rates can be increased to re-characterize the behavior."

A synthetic program phase-changes halfway through: an instrumented
site's observed value distribution shifts.  The profiler starts fast,
backs off as the site converges, then snaps back to the fast rate when
the drift appears — all by rewriting the freq field of one brr
instruction.

Run:  python examples/convergent_profiling.py
"""

import random

from repro.sampling import ConvergentProfiler

ENCOUNTERS = 120_000
PHASE_CHANGE = 60_000


def main() -> None:
    profiler = ConvergentProfiler(
        initial_interval=4,
        max_interval=1024,
        samples_per_level=24,
        drift_sigma=6.0,
    )
    rng = random.Random(42)
    site = "alloc_site_17"

    checkpoints = {int(ENCOUNTERS * f) for f in
                   (0.01, 0.1, 0.25, 0.49, 0.51, 0.6, 0.75, 1.0)}
    print(f"{'encounter':>10} {'interval':>9} {'samples':>8} "
          f"{'recharacterizations':>20}")
    for encounter in range(1, ENCOUNTERS + 1):
        # The instrumented quantity (e.g. allocated object size)
        # changes distribution at the phase boundary.
        if encounter <= PHASE_CHANGE:
            value = rng.gauss(64.0, 4.0)
        else:
            value = rng.gauss(192.0, 6.0)
        if profiler.encounter(site):
            profiler.record(site, value)
        if encounter in checkpoints:
            state = profiler.sites[site]
            print(f"{encounter:>10} {profiler.current_interval(site):>9} "
                  f"{profiler.samples:>8} {state.recharacterizations:>20}")

    state = profiler.sites[site]
    print(f"\ntotal encounters: {profiler.encounters}, "
          f"samples: {profiler.samples} "
          f"({100 * profiler.samples / profiler.encounters:.2f}% — vs "
          f"25% if it had stayed at the initial 1/4 rate)")
    print(f"final characterisation: mean {state.mean:.1f} "
          f"(true second-phase mean 192)")
    assert state.recharacterizations >= 1, "drift should have been caught"


if __name__ == "__main__":
    main()
