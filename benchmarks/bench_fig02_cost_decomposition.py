"""Figure 2: the fixed + variable decomposition of sampling overhead.

Paper model: "The total execution overhead from sampling is a
combination of fixed and variable costs ... even when the sampling
rate is reduced to zero, the overhead does not disappear."  Here the
Figure 13 sweep is decomposed per framework: the framework-only floor
is the fixed cost; the instrumentation-payload gap is the variable
cost, which should scale ~linearly with the sampling rate — and
branch-on-random's fixed cost should be a small fraction of
counter-based sampling's (the point of the paper).
"""


from _shared import run_once, shared_sweep, report

from repro.analysis import decompose, format_decomposition
from repro.experiments import sampling_payoff_interval


def test_fixed_variable_decomposition(benchmark):
    sweep = run_once(benchmark, shared_sweep)

    results = {}
    for kind in ("cbs", "brr"):
        decomposition = decompose(sweep, kind, "full-dup")
        results[kind] = decomposition
    report(format_decomposition(decomposition))

    # Counter-based sampling has a real fixed floor ("5-55%" in prior
    # work; small here because Full-Duplication amortises it).
    assert results["cbs"].fixed_cost > 1.0
    # Branch-on-random nearly eliminates the fixed cost.
    assert results["brr"].fixed_cost < results["cbs"].fixed_cost / 3
    # The variable component behaves like Figure 2: ~proportional to
    # the sampling rate.
    for kind in ("cbs", "brr"):
        assert results[kind].variable_slope > 0
        assert results[kind].variable_r_squared > 0.7

    # Figure 2's payoff narrative: the interval at which *sampled*
    # instrumentation becomes cheaper than unsampled instrumentation.
    report(f"\nsampling payoff vs. full instrumentation "
           f"({sweep.full_instr_overhead:.1f}% overhead):")
    payoffs = {}
    for kind in ("cbs", "brr"):
        for dup in ("no-dup", "full-dup"):
            payoff = sampling_payoff_interval(sweep, kind, dup)
            payoffs[(kind, dup)] = payoff
            report(f"  {kind} ({dup}): "
                   + (f"pays off from interval {payoff}" if payoff
                      else "never pays off in range"))
    # brr's low fixed cost means it pays off at a (much) smaller
    # interval than cbs under the same layout.
    for dup in ("no-dup", "full-dup"):
        brr_payoff = payoffs[("brr", dup)]
        cbs_payoff = payoffs[("cbs", dup)]
        assert brr_payoff is not None
        assert cbs_payoff is None or brr_payoff <= cbs_payoff
