"""The :class:`ExperimentEngine`: cached, parallel window execution.

Experiments declare their work as a list of
:class:`~repro.engine.spec.WindowSpec`s and reduce the returned
payloads; the engine owns everything in between:

* **cache** — each spec's digest is looked up in the content-addressed
  :class:`~repro.engine.cache.ResultCache` before any simulation runs;
* **traces** — timed windows record/replay their functional streams
  through the engine's :class:`~repro.engine.tracestore.TraceStore`
  (keyed by the spec's functional projection), so all timing-config
  variations of one window pay a single functional execution;
* **fan-out** — cache misses execute on a ``ProcessPoolExecutor``
  (``jobs`` workers, ``REPRO_JOBS`` by default) or, with ``jobs=1``,
  serially in spec order in the calling process — the deterministic
  fallback that reproduces the seed code's execution order exactly;
* **observability** — every window (hit or miss) is logged to the
  engine's :class:`~repro.engine.artifacts.RunRecorder`, including its
  trace-store usage and functional step count.

Windows are pure functions of their specs, so hit-vs-miss,
record-vs-replay and serial-vs-parallel cannot change results, only
wall time; the determinism tests in ``tests/test_engine.py`` and the
golden replay tests in ``tests/test_trace_replay.py`` pin that
property.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..timing.fastpath import fastpath_enabled, fastpath_override
from .artifacts import RunRecorder, WindowRecord
from .cache import ResultCache, cache_enabled_by_env
from .spec import WindowSpec
from .tracestore import (
    TraceStore,
    active_store,
    consume_trace_info,
    default_trace_dir,
    trace_enabled_by_env,
)


def default_jobs() -> int:
    """``REPRO_JOBS`` (default 1: the deterministic serial backend)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _execute(spec: WindowSpec) -> Dict[str, Any]:
    from .windows import run_window

    return run_window(spec.kind, spec.params_dict())


def _pool_execute(item: Tuple[int, Dict[str, Any], Tuple[str, bool, bool]]):
    """Top-level worker entry (must be picklable)."""
    index, spec_dict, (trace_root, trace_enabled, fast) = item
    spec = WindowSpec.from_dict(spec_dict)
    started = time.perf_counter()
    with fastpath_override(fast), \
            active_store(TraceStore(trace_root, enabled=trace_enabled)):
        payload = _execute(spec)
        trace_info = consume_trace_info()
    return (index, payload, time.perf_counter() - started, os.getpid(),
            trace_info)


class ExperimentEngine:
    """Shared execution backend for every experiment in the repo."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        recorder: Optional[RunRecorder] = None,
        trace_store: Optional[TraceStore] = None,
        fast: Optional[bool] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is None:
            cache = ResultCache(enabled=cache_enabled_by_env())
        self.cache = cache
        if trace_store is None:
            trace_store = TraceStore(default_trace_dir(cache.root),
                                     enabled=trace_enabled_by_env())
        self.trace_store = trace_store
        self.recorder = recorder or RunRecorder()
        # Resolved once so pool workers follow the parent's REPRO_FAST
        # setting instead of re-reading their own environment.
        self.fast = fastpath_enabled() if fast is None else bool(fast)

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[WindowSpec]) -> List[Dict[str, Any]]:
        """Execute every spec; payloads are returned in spec order."""
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        misses: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec)
            if cached is not None:
                results[index] = cached
                self._record(spec, cached, cache="hit", wall_s=0.0,
                             worker=None)
            else:
                misses.append(index)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                self._run_pool(specs, misses, results)
            else:
                with fastpath_override(self.fast), \
                        active_store(self.trace_store):
                    for index in misses:
                        spec = specs[index]
                        started = time.perf_counter()
                        payload = _execute(spec)
                        wall = time.perf_counter() - started
                        trace_info = consume_trace_info()
                        results[index] = payload
                        self.cache.put(spec, payload)
                        self._record(spec, payload, cache="miss",
                                     wall_s=wall, worker=os.getpid(),
                                     trace_info=trace_info)
        return results  # type: ignore[return-value]

    def _run_pool(self, specs: Sequence[WindowSpec], misses: List[int],
                  results: List[Optional[Dict[str, Any]]]) -> None:
        store_conf = (str(self.trace_store.root), self.trace_store.enabled,
                      self.fast)
        items = [(index, specs[index].to_dict(), store_conf)
                 for index in misses]
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, payload, wall, worker, trace_info in pool.map(
                    _pool_execute, items, chunksize=1):
                results[index] = payload
                self.cache.put(specs[index], payload)
                self._record(specs[index], payload, cache="miss",
                             wall_s=wall, worker=worker,
                             trace_info=trace_info)

    # ------------------------------------------------------------------

    def _record(self, spec: WindowSpec, payload: Dict[str, Any],
                cache: str, wall_s: float, worker: Optional[int],
                trace_info: Optional[Dict[str, Any]] = None) -> None:
        trace_info = trace_info or {}
        self.recorder.record(WindowRecord(
            key=spec.cache_key,
            kind=spec.kind,
            label=spec.label(),
            cache=cache,
            wall_s=round(wall_s, 6),
            worker=worker,
            cycles=payload.get("cycles"),
            instructions=payload.get("instructions"),
            ts=time.time(),
            trace=trace_info.get("trace"),
            trace_bytes=trace_info.get("trace_bytes"),
            functional_steps=trace_info.get("functional_steps"),
            timing_path=trace_info.get("timing_path"),
            replay_records_per_s=trace_info.get("replay_records_per_s"),
        ))

    def summary(self) -> Dict[str, Any]:
        return self.recorder.summary()


# ----------------------------------------------------------------------
# Module-level default engine: experiments use it unless handed one
# explicitly; the CLI configures it from flags/environment.

_default_engine: Optional[ExperimentEngine] = None


def get_engine() -> ExperimentEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def set_engine(engine: Optional[ExperimentEngine]) -> None:
    global _default_engine
    _default_engine = engine


def run_windows(specs: Sequence[WindowSpec],
                engine: Optional[ExperimentEngine] = None
                ) -> List[Dict[str, Any]]:
    """Run specs on ``engine`` (or the process-wide default)."""
    return (engine or get_engine()).run(specs)
