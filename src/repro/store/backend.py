"""The shared backend tier: a pluggable cross-replica object store.

Bottom of the three-tier stack.  A :class:`Backend` moves whole entry
*files* — it never decodes them — between a replica's local disk tier
and some shared medium, addressed by the disk tier's relative entry
name (``v<N>/<key[:2]>/<key><suffix>``).  Because entries are
content-addressed and checksummed (``docs/integrity.md``), a fetched
file is verified locally before anything trusts it; a backend
therefore needs no integrity story of its own, only atomicity.

The reference implementation is :class:`FilesystemBackend`: a shared
directory (NFS mount, bind-mounted volume, ...) that many ``repro
serve`` replicas point at with ``REPRO_STORE_BACKEND=fs:/path`` (the
``fs:`` scheme prefix is optional).  Each logical store namespaces
itself (``<root>/results/...``, ``<root>/traces/...``) so one backend
root carries the whole corpus.  New schemes register via
:func:`register_backend_scheme`.

A shared medium is the one tier a replica does not control: it can
stall, vanish, or flake without warning.  :class:`CircuitBreakerBackend`
is the resilience wrapper the tiered stores put around whatever
backend a spec names (``REPRO_BREAKER``, default on): every call gets
a wall-clock budget (a hung NFS read becomes a miss, not a hung
request), transient errors retry with exponential backoff, and a run
of consecutive failures *opens* the breaker — calls then fail fast
(the store degrades to local-tiers-only) until a cooldown admits one
half-open probe, whose success closes the breaker again.  State
transitions and shed-call counts ride along in :meth:`Backend.stats`,
so ``/statsz`` and ``repro cache stats`` show the breaker working.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import shutil
import tempfile
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from .base import TierCounters

#: Environment variable that selects the shared backend for every
#: store in the process; see :func:`make_backend` for the format.
BACKEND_ENV = "REPRO_STORE_BACKEND"

#: Values of :data:`BACKEND_ENV` that mean "no shared backend".
_DISABLED = ("", "0", "none", "off", "no")


class Backend:
    """Interface of a shared store backend (file-granular, atomic)."""

    #: Scheme the backend registered under (telemetry only).
    scheme = "abstract"

    def __init__(self) -> None:
        self.counters = TierCounters()

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        """Copy entry ``name`` into local file ``dest`` (atomically);
        True when the entry existed and landed."""
        raise NotImplementedError

    def push(self, name: str, src: pathlib.Path) -> bool:
        """Publish local file ``src`` as entry ``name`` (atomically);
        True when it landed.  Pushes are best-effort: a failure leaves
        the local tiers authoritative and is reported via counters."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.scheme

    def stats(self) -> Dict[str, Any]:
        return dict(self.counters.as_dict(), backend=self.describe())


class FilesystemBackend(Backend):
    """Shared-directory backend (NFS-style): the reference implementation.

    Both directions copy through a same-directory temp file and
    ``os.replace``, so concurrent replicas pushing the same
    content-addressed entry cannot tear each other — last writer wins
    with identical bytes.
    """

    scheme = "fs"

    def __init__(self, root: pathlib.Path) -> None:
        super().__init__()
        self.root = pathlib.Path(root)

    def _atomic_copy(self, src: pathlib.Path, dest: pathlib.Path) -> int:
        dest.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=dest.parent, prefix=".tmp-", suffix=dest.suffix,
            delete=False)
        handle.close()
        try:
            shutil.copyfile(src, handle.name)
            nbytes = os.path.getsize(handle.name)
            os.replace(handle.name, dest)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
            raise
        return nbytes

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        src = self.root / name
        try:
            nbytes = self._atomic_copy(src, pathlib.Path(dest))
        except (OSError, ValueError):
            self.counters.misses += 1
            return False
        self.counters.hits += 1
        self.counters.bytes_read += nbytes
        return True

    def push(self, name: str, src: pathlib.Path) -> bool:
        try:
            nbytes = self._atomic_copy(pathlib.Path(src), self.root / name)
        except (OSError, ValueError):
            return False
        self.counters.bytes_written += nbytes
        return True

    def describe(self) -> str:
        return f"fs:{self.root}"


# ----------------------------------------------------------------------
# The circuit breaker: how a flaky shared backend degrades the store
# to local-tiers-only instead of hanging or erroring every request.

#: The breaker's states, in the classic pattern's vocabulary.
BREAKER_STATES = ("closed", "open", "half_open")

#: Environment switch: wrap spec-named backends in a breaker.
BREAKER_ENV = "REPRO_BREAKER"


class BackendUnavailable(OSError):
    """A backend call exceeded its wall-clock budget (the worker thread
    is abandoned) or was refused because the breaker is open."""


class CircuitBreakerBackend(Backend):
    """Retry + timeout + open/half-open/closed wrapper around a backend.

    Semantics per call (``fetch`` or ``push``):

    * **closed** — delegate, with each attempt bounded by
      ``call_timeout`` seconds (a hung call is abandoned on its daemon
      thread and counts as a failure).  A failed attempt retries up to
      ``retries`` times with ``backoff * 2**attempt`` sleeps; only an
      exhausted call counts against the breaker.  ``failures``
      consecutive exhausted calls open the breaker.
    * **open** — fail fast (``False`` — a miss / unpublished push)
      without touching the backend, until ``reset_after`` seconds have
      passed.
    * **half-open** — after the cooldown exactly one probe call is
      admitted; success closes the breaker, failure re-opens it (and
      restarts the cooldown).  Concurrent calls during the probe fail
      fast.

    The wrapper is transparent on the happy path: byte counters belong
    to the wrapped backend (``counters`` is delegated), and a breaker
    around a healthy backend only adds the per-call time budget.
    ``clock``/``sleep`` are injectable for deterministic tests.
    """

    scheme = "breaker"

    def __init__(self, inner: Backend, *,
                 failures: int = 5,
                 reset_after: float = 30.0,
                 call_timeout: Optional[float] = 5.0,
                 retries: int = 1,
                 backoff: float = 0.05,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if reset_after < 0:
            raise ValueError(
                f"reset_after must be >= 0, got {reset_after}")
        if call_timeout is not None and call_timeout <= 0:
            raise ValueError(
                f"call_timeout must be positive, got {call_timeout}")
        self.inner = inner
        self.failure_threshold = failures
        self.reset_after = reset_after
        self.call_timeout = call_timeout
        self.retries = max(0, retries)
        self.backoff = max(0.0, backoff)
        self._clock = clock
        self._sleep = sleep
        self._born = clock()
        self._lock = threading.Lock()
        self.state = "closed"
        self._consecutive = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        #: Telemetry: calls admitted, exhausted failures, per-call
        #: timeouts, calls shed while open, and state transitions.
        self.calls = 0
        self.failures = 0
        self.timeouts = 0
        self.fast_failed = 0
        self.opens = 0
        self.half_opens = 0
        self.closes = 0
        self.transitions: Deque[Dict[str, Any]] = deque(maxlen=32)

    # Byte/hit accounting belongs to the backend doing the IO.
    @property
    def counters(self) -> TierCounters:
        return self.inner.counters

    # -- state machine ---------------------------------------------------

    def _transition(self, state: str) -> None:
        """Record a state change (callers hold the lock)."""
        self.state = state
        self.transitions.append(
            {"to": state, "at": round(self._clock() - self._born, 3)})
        if state == "open":
            self.opens += 1
            self._opened_at = self._clock()
        elif state == "half_open":
            self.half_opens += 1
        elif state == "closed":
            self.closes += 1

    def _admit(self) -> bool:
        """Whether this call may touch the backend."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.reset_after:
                    return False
                self._transition("half_open")
                self._probing = True
                return True
            # half_open: exactly one probe in flight.
            if self._probing:
                return False
            self._probing = True
            return True

    def _on_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            if self.state == "half_open":
                self._probing = False
                self._transition("closed")

    def _on_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == "half_open":
                self._probing = False
                self._transition("open")
                return
            if self.state == "closed":
                self._consecutive += 1
                if self._consecutive >= self.failure_threshold:
                    self._consecutive = 0
                    self._transition("open")

    # -- call plumbing ----------------------------------------------------

    def _timed(self, call: Callable[..., Any], args: tuple) -> Any:
        """One attempt under the wall-clock budget.  A call that
        outlives the budget keeps running on its daemon thread (it
        cannot be pre-empted) but this caller moves on — the hang costs
        one abandoned thread, never a hung request."""
        if self.call_timeout is None:
            return call(*args)
        box: Dict[str, Any] = {}

        def runner() -> None:
            try:
                box["value"] = call(*args)
            except BaseException as exc:  # delivered to the caller below
                box["error"] = exc

        thread = threading.Thread(target=runner, daemon=True,
                                  name="repro-backend-call")
        thread.start()
        thread.join(self.call_timeout)
        if thread.is_alive():
            self.timeouts += 1
            raise BackendUnavailable(
                f"backend call exceeded {self.call_timeout}s "
                f"({self.inner.describe()})")
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _guarded(self, call: Callable[..., Any], *args: Any) -> Any:
        if not self._admit():
            self.fast_failed += 1
            return False
        self.calls += 1
        attempt = 0
        while True:
            try:
                result = self._timed(call, args)
            except Exception:
                if attempt < self.retries:
                    self._sleep(self.backoff * (2 ** attempt))
                    attempt += 1
                    continue
                self._on_failure()
                return False
            self._on_success()
            return result

    # -- Backend interface -------------------------------------------------

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        return bool(self._guarded(self.inner.fetch, name, dest))

    def push(self, name: str, src: pathlib.Path) -> bool:
        return bool(self._guarded(self.inner.push, name, src))

    def describe(self) -> str:
        return f"breaker({self.inner.describe()})"

    def breaker_stats(self) -> Dict[str, Any]:
        """The breaker block of :meth:`stats` (state + transitions)."""
        with self._lock:
            return {
                "state": self.state,
                "calls": self.calls,
                "failures": self.failures,
                "timeouts": self.timeouts,
                "fast_failed": self.fast_failed,
                "opens": self.opens,
                "half_opens": self.half_opens,
                "closes": self.closes,
                "failure_threshold": self.failure_threshold,
                "reset_after": self.reset_after,
                "call_timeout": self.call_timeout,
                "transitions": list(self.transitions),
            }

    def stats(self) -> Dict[str, Any]:
        return dict(self.counters.as_dict(), backend=self.describe(),
                    breaker=self.breaker_stats())


def breaker_enabled_by_env() -> bool:
    """``REPRO_BREAKER`` (default on): wrap spec-named backends."""
    return os.environ.get(BREAKER_ENV, "1").strip().lower() \
        not in ("0", "false", "no", "off")


def breaker_from_env(inner: Backend) -> CircuitBreakerBackend:
    """A breaker around ``inner``, tuned by ``REPRO_BREAKER_*``."""
    def _float(name: str, default: float) -> float:
        try:
            return float(os.environ.get(name, "") or default)
        except ValueError:
            return default

    def _int(name: str, default: int) -> int:
        try:
            return int(os.environ.get(name, "") or default)
        except ValueError:
            return default

    timeout = _float("REPRO_BREAKER_TIMEOUT", 5.0)
    return CircuitBreakerBackend(
        inner,
        failures=max(1, _int("REPRO_BREAKER_FAILURES", 5)),
        reset_after=max(0.0, _float("REPRO_BREAKER_RESET", 30.0)),
        call_timeout=timeout if timeout > 0 else None,
        retries=max(0, _int("REPRO_BREAKER_RETRIES", 1)),
        backoff=max(0.0, _float("REPRO_BREAKER_BACKOFF", 0.05)),
    )


def maybe_wrap_breaker(backend: Optional[Backend],
                       enabled: Optional[bool] = None) -> Optional[Backend]:
    """Wrap ``backend`` in a circuit breaker unless disabled.

    ``enabled=None`` resolves ``REPRO_BREAKER`` (default on); an
    already-wrapped backend (or ``None``) passes through untouched.
    """
    if backend is None or isinstance(backend, CircuitBreakerBackend):
        return backend
    if enabled is None:
        enabled = breaker_enabled_by_env()
    return breaker_from_env(backend) if enabled else backend


#: scheme -> factory(rest-of-spec, namespace) -> Backend
_SCHEMES: Dict[str, Callable[[str, str], Backend]] = {}


def register_backend_scheme(
        scheme: str, factory: Callable[[str, str], Backend]) -> None:
    """Register a backend scheme for ``REPRO_STORE_BACKEND=<scheme>:...``."""
    _SCHEMES[scheme] = factory


register_backend_scheme(
    "fs", lambda rest, namespace: FilesystemBackend(
        pathlib.Path(rest) / namespace))


def make_backend(spec: Optional[str], namespace: str) -> Optional[Backend]:
    """Build the shared backend a spec string names, or ``None``.

    ``spec`` is ``<scheme>:<rest>`` (a bare path implies ``fs:``);
    ``namespace`` keeps each logical store's entries apart under one
    shared root (``results`` / ``traces``).  Unset/disabled specs
    return ``None``; an unknown scheme raises ``ValueError``.
    """
    if spec is None or spec.strip().lower() in _DISABLED:
        return None
    spec = spec.strip()
    scheme, sep, rest = spec.partition(":")
    if not sep or len(scheme) <= 1:  # bare path (incl. "C:..."-style)
        scheme, rest = "fs", spec
    factory = _SCHEMES.get(scheme)
    if factory is None:
        raise ValueError(
            f"unknown store backend scheme {scheme!r} in {spec!r}; "
            f"known: {sorted(_SCHEMES)}")
    return factory(rest, namespace)


def backend_spec_from_env() -> Optional[str]:
    """``REPRO_STORE_BACKEND``, or ``None`` when unset/disabled."""
    spec = os.environ.get(BACKEND_ENV)
    if spec is None or spec.strip().lower() in _DISABLED:
        return None
    return spec


def backend_from_env(namespace: str) -> Optional[Backend]:
    return make_backend(backend_spec_from_env(), namespace)
