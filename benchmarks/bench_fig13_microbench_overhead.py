"""Figure 13: % overhead vs. sampling interval on the microbenchmark.

Paper results reproduced here:

* "For sampling intervals above 64 ... the sampling overhead from
  using branch-on-random is an order of magnitude less than the
  overhead from using counter-based sampling."
* "The lines show the overhead of branch-on-random decreasing much
  faster and further than counter-based."
* "Both implementations benefit from using Full-Duplication over
  No-Duplication."
* The counter-based curve is *not* monotone at the smallest intervals
  (interval 2 is cheaper than 4: the branch predictor captures the
  period-2 counter pattern).
"""


from _shared import run_once, shared_sweep, report

from repro.experiments import format_figure13


def test_figure13(benchmark):
    sweep = run_once(benchmark, shared_sweep)

    report(format_figure13(sweep))
    report(f"baseline branch accuracy: {sweep.base_branch_accuracy:.3f} "
           f"(paper: 0.845); L1 hit rates I={sweep.base_l1i_hit_rate:.4f} "
           f"D={sweep.base_l1d_hit_rate:.4f} (paper: >0.995)")

    def last(kind, dup, payload=False):
        return sweep.series(kind, dup, payload)[-1]

    def first(kind, dup, payload=False):
        return sweep.series(kind, dup, payload)[0]

    # The gap at the top of the interval range: order of magnitude for
    # the Full-Duplication deployment the paper recommends; a clear
    # multiple for No-Duplication (our 3-wide fetch makes the single
    # brr instruction's slot cost the no-dup floor — see EXPERIMENTS.md).
    assert last("cbs", "full-dup").overhead > \
        5 * last("brr", "full-dup").overhead
    assert last("cbs", "no-dup").overhead > \
        2 * last("brr", "no-dup").overhead

    # brr decreases "much faster and further".
    brr_drop = first("brr", "no-dup").overhead / max(
        0.01, last("brr", "no-dup").overhead)
    cbs_drop = first("cbs", "no-dup").overhead / max(
        0.01, last("cbs", "no-dup").overhead)
    assert brr_drop > cbs_drop

    # Full-Duplication lowers the framework floor for both schemes.
    assert last("cbs", "full-dup").overhead < last("cbs", "no-dup").overhead
    assert last("brr", "full-dup").overhead < last("brr", "no-dup").overhead

    # The cbs small-interval anomaly: short periodic counter patterns
    # fit in the predictor's global history, so a *smaller* interval
    # can be cheaper than a larger one (the paper saw 2 < 4; our
    # 16-bit gshare also captures period 4, pushing the peak to 8).
    cbs_series = sweep.series("cbs", "no-dup", False)
    by_interval = {p.interval: p.overhead for p in cbs_series}
    assert min(by_interval[2], by_interval[4]) < by_interval[8]

    # Instrumentation payload adds on top of the framework.
    assert first("cbs", "no-dup", True).overhead > \
        first("cbs", "no-dup", False).overhead
