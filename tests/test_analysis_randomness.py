"""Tests for the sampling-placement quality statistics."""

import numpy as np
import pytest

from repro.analysis.randomness import (
    autocorrelation,
    conditional_taken_probability,
    gap_cv,
    gap_distribution,
    geometric_gap_test,
    parity_balance,
    placement_report,
)
from repro.sampling import brr_decision_array, brr_positions, periodic_positions

N = 1 << 16
FIELD = 2  # 1/8
RATE = 1 / 8


class TestGapDistribution:
    def test_gaps(self):
        assert gap_distribution([1, 4, 9]).tolist() == [3, 5]

    def test_needs_two(self):
        with pytest.raises(ValueError):
            gap_distribution([5])

    def test_monotone_required(self):
        with pytest.raises(ValueError):
            gap_distribution([5, 5])


class TestGeometricTest:
    def test_brr_gap_spread_is_geometric_like(self):
        """The LFSR's short-range correlations mean the exact gap
        distribution is not geometric (the paper's adjacent-bit
        caveat), but the mean and spread are — unlike a counter's
        degenerate single-gap distribution."""
        positions = brr_positions(N, FIELD, width=20, seed=0xBEEF)
        gaps = gap_distribution(positions)
        assert gaps.mean() == pytest.approx(1 / RATE, rel=0.1)
        assert 0.6 <= gap_cv(positions) <= 1.5  # geometric CV ~ 0.94
        # No single gap value dominates (no resonance atom).
        __, counts = np.unique(gaps, return_counts=True)
        assert counts.max() / gaps.size < 0.5

    def test_counter_gap_cv_zero(self):
        assert gap_cv(periodic_positions(N, 8)) == 0.0

    def test_counter_gaps_fail(self):
        positions = periodic_positions(N, 8)
        __, p_value = geometric_gap_test(positions, RATE)
        assert p_value < 1e-6

    def test_true_bernoulli_passes(self):
        rng = np.random.default_rng(4)
        positions = np.flatnonzero(rng.random(N) < RATE)
        __, p_value = geometric_gap_test(positions, RATE)
        assert p_value > 0.01

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            geometric_gap_test([1, 2, 3], 0.0)


class TestAutocorrelation:
    def test_alternating_stream_negative(self):
        assert autocorrelation([0, 1] * 100) == pytest.approx(-1.0)

    def test_constant_stream_zero(self):
        assert autocorrelation([1] * 50) == 0.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            autocorrelation([1], lag=1)

    def test_spaced_policy_decorrelates(self):
        """The paper's fix: spaced AND inputs have much weaker lag-1
        correlation than adjacent bits."""
        contiguous = brr_decision_array(N, 3, width=20, seed=7,
                                        policy="contiguous")
        spaced = brr_decision_array(N, 3, width=20, seed=7, policy="spaced")
        assert abs(autocorrelation(spaced.astype(int))) < \
            abs(autocorrelation(contiguous.astype(int))) + 1e-9


class TestConditionalProbability:
    def test_paper_adjacent_bit_example(self):
        """'the conditional probability of taking the branch given that
        the previous (25% frequency) branch was taken is 50%, because
        one of [the] bits is guaranteed to be one.'"""
        decisions = brr_decision_array(1 << 17, 1, width=20, seed=0xACE1,
                                       policy="contiguous")
        conditional = conditional_taken_probability(decisions.astype(int))
        assert conditional == pytest.approx(0.5, abs=0.03)

    def test_spaced_bits_restore_independence(self):
        decisions = brr_decision_array(1 << 17, 1, width=20, seed=0xACE1,
                                       policy="spaced")
        conditional = conditional_taken_probability(decisions.astype(int))
        assert conditional == pytest.approx(0.25, abs=0.05)

    def test_no_taken_rejected(self):
        with pytest.raises(ValueError):
            conditional_taken_probability([0, 0, 0])


class TestParityBalance:
    def test_counter_locks_parity(self):
        positions = periodic_positions(N, 8)
        balance = parity_balance(positions)
        assert balance in (0.0, 1.0)  # the resonance mechanism

    def test_brr_balanced(self):
        positions = brr_positions(N, FIELD, width=20, seed=0x55)
        assert abs(parity_balance(positions) - 0.5) < 0.03

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parity_balance([])


class TestReport:
    def test_report_fields(self):
        positions = brr_positions(N, FIELD, width=20, seed=0x99)
        report = placement_report(positions, RATE)
        assert set(report) == {"mean_gap", "expected_gap", "gap_std",
                               "gap_cv", "geometric_p_value",
                               "parity_balance"}
        assert report["mean_gap"] == pytest.approx(report["expected_gap"],
                                                   rel=0.1)
