"""Entropy sensitivity: predictor pollution vs. randomness density.

The paper's qualitative claim (Section 3) is that *check branches* —
the conditional branches counter-based sampling uses to consult its
state — expose the sampling decision stream to the branch predictor,
while ``brr`` keeps the randomness inside the LFSR unit where the
predictor never sees it.  This experiment makes that claim
quantitative with the adversarial workload generator: matched program
grids where a controllable fraction of slots (the *randomness
density*) is steered by fresh entropy-pool bytes, rendered either as
conditional pool branches (``cbs`` scheme) or as ``brr`` instructions
(``brr`` scheme).

Sweeping density x gshare history length through the sampling-aware
population pipeline yields the pollution surface: ``cbs`` branch
accuracy degrades monotonically as density rises (the predictor is
being fed coin flips), at every history length, while ``brr`` stays
flat apart from a handful of cold mispredicts.  The density-0 cell of
every (scheme, history) stratum is mandatory — it is the overhead
baseline the rest of the stratum normalises against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine import ExperimentEngine, WindowSpec, is_failure, run_population
from ..stats import (
    Cell,
    SamplingPlan,
    SamplingSummary,
    WindowPopulation,
    estimate_mean,
)
from ..timing.config import TimingConfig
from ..timing.runner import WindowResult, overhead_percent

#: Randomness densities swept (fraction of grid slots fed entropy).
DENSITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: gshare history lengths swept (bits of global history).
HISTORY_BITS: Tuple[int, ...] = (8, 16)

#: The two matched renderings of the same entropy stream.
SCHEMES: Tuple[str, ...] = ("cbs", "brr")


@dataclass
class EntropyPoint:
    """One (scheme, history length, density) cell."""

    scheme: str
    history_bits: int
    density: float
    cycles: int
    branch_accuracy: float
    cond_branches: int
    cond_mispredicts: int
    #: Percent cycle overhead vs. the density-0 cell of the same
    #: (scheme, history) stratum.
    overhead: float


@dataclass
class EntropySweep:
    """The full pollution surface."""

    iterations: int
    stride: int
    seed: int
    points: List[EntropyPoint] = field(default_factory=list)
    #: Present only when a non-exhaustive plan left cells unrun.
    sampling: Optional[SamplingSummary] = None

    def series(self, scheme: str, history_bits: int) -> List[EntropyPoint]:
        """One curve, ordered by density."""
        return sorted(
            (p for p in self.points
             if (p.scheme, p.history_bits) == (scheme, history_bits)),
            key=lambda p: p.density,
        )

    def densities_present(self) -> List[float]:
        return sorted({p.density for p in self.points})

    def to_dict(self) -> Dict[str, Any]:
        from dataclasses import asdict

        data = asdict(self)
        data.pop("sampling", None)
        if self.sampling is not None:
            data["sampling"] = self.sampling.to_dict()
        return data


def adversarial_window_spec(
    scheme: str,
    density: float,
    *,
    iterations: int = 64,
    stride: int = 8,
    history_bits: Optional[int] = None,
    history_stress: int = 0,
    call_depth: int = 0,
    seed: int = 0,
) -> WindowSpec:
    """Declarative form of one adversarial timing window.

    Every generator knob lands in the functional cache key; only the
    history length rides in ``config`` (timing-only, so all history
    lengths of one grid share a single recorded trace).
    """
    config = (None if history_bits is None
              else TimingConfig(gshare_history_bits=history_bits))
    return WindowSpec.make(
        "adversarial",
        scheme=scheme,
        density=density,
        stride=stride,
        loop_shape=[iterations],
        history_stress=history_stress,
        call_depth=call_depth,
        seed=seed,
        config=None if config is None else config.to_dict(),
    )


def _stratum(scheme: str, history_bits: int) -> str:
    return f"{scheme}/h{history_bits}"


def entropy_population(
    iterations: int = 64,
    stride: int = 8,
    densities: Sequence[float] = DENSITIES,
    history_bits: Sequence[int] = HISTORY_BITS,
    seed: int = 0,
) -> WindowPopulation:
    """The sweep's window space: (scheme x history x density) cells,
    stratified by curve, with every density-0 cell mandatory."""
    cells = [
        Cell(
            id=f"{_stratum(scheme, bits)}/d{density:g}",
            stratum=_stratum(scheme, bits),
            specs=(adversarial_window_spec(
                scheme, density, iterations=iterations, stride=stride,
                history_bits=bits, seed=seed),),
            mandatory=density == 0.0,
            tags=(("scheme", scheme), ("history_bits", bits),
                  ("density", density)),
        )
        for scheme in SCHEMES
        for bits in history_bits
        for density in densities
    ]
    return WindowPopulation("entropy", tuple(cells))


def entropy_sweep(
    iterations: int = 64,
    stride: int = 8,
    densities: Sequence[float] = DENSITIES,
    history_bits: Sequence[int] = HISTORY_BITS,
    seed: int = 0,
    engine: Optional[ExperimentEngine] = None,
    plan: Optional[SamplingPlan] = None,
) -> EntropySweep:
    """Run the pollution surface.

    Each cell is an independent engine window (cached by its full
    generator knob set); the sweep object is a pure reduction.  A
    non-exhaustive ``plan`` still runs every density-0 baseline and
    attaches a per-curve accuracy estimate for the rest.
    """
    population = entropy_population(iterations, stride, densities,
                                    history_bits, seed)
    run = run_population(population, plan=plan, engine=engine)

    base_cycles: Dict[str, int] = {}
    for scheme in SCHEMES:
        for bits in history_bits:
            payload = run.cell_payloads(f"{_stratum(scheme, bits)}/d0")[0]
            if is_failure(payload):
                raise RuntimeError(
                    "entropy baseline window was skipped after repeated "
                    "failures; re-run with failure_policy='retry'")
            base_cycles[_stratum(scheme, bits)] = payload["cycles"]

    sweep = EntropySweep(iterations=iterations, stride=stride, seed=seed)
    for cell in run.cells:
        payload = run.cell_payloads(cell.id)[0]
        scheme = cell.tag("scheme")
        bits = cell.tag("history_bits")
        density = cell.tag("density")
        if is_failure(payload):
            sweep.points.append(EntropyPoint(
                scheme=scheme, history_bits=bits, density=density,
                cycles=-1, branch_accuracy=float("nan"), cond_branches=0,
                cond_mispredicts=0, overhead=float("nan")))
            continue
        result = WindowResult.from_dict(payload["result"])
        sweep.points.append(EntropyPoint(
            scheme=scheme,
            history_bits=bits,
            density=density,
            cycles=result.cycles,
            branch_accuracy=result.stats.branch_accuracy,
            cond_branches=result.stats.cond_branches,
            cond_mispredicts=result.stats.cond_mispredicts,
            overhead=overhead_percent(base_cycles[_stratum(scheme, bits)],
                                      result.cycles),
        ))

    if not run.complete:
        estimates = {}
        for scheme in SCHEMES:
            for bits in history_bits:
                accuracies = [
                    p.branch_accuracy
                    for p in sweep.series(scheme, bits)
                    if not math.isnan(p.branch_accuracy)
                ]
                if accuracies:
                    estimates[f"{_stratum(scheme, bits)} accuracy"] = \
                        estimate_mean(accuracies,
                                      population=len(densities),
                                      confidence=run.plan.confidence)
        sweep.sampling = SamplingSummary(
            plan=run.plan,
            windows_population=run.windows_population,
            windows_run=run.windows_run,
            cells_population=run.cells_population,
            cells_run=run.cells_run,
            estimates=estimates,
        )
    return sweep


def pollution_trend(sweep: EntropySweep, scheme: str,
                    history_bits: int) -> List[Tuple[float, float]]:
    """(density, branch accuracy) pairs for one curve, ascending
    density — the monotonicity witness the CI smoke asserts on."""
    return [(p.density, p.branch_accuracy)
            for p in sweep.series(scheme, history_bits)
            if not math.isnan(p.branch_accuracy)]


def format_entropy(sweep: EntropySweep) -> str:
    """The pollution surface as fixed-width tables."""
    columns = sweep.densities_present()
    history = sorted({p.history_bits for p in sweep.points})
    lines = [
        f"Entropy sensitivity: branch accuracy vs. randomness density "
        f"({sweep.iterations} iterations, stride {sweep.stride})",
        "curve" + " " * 7 + " ".join(f"d={d:<5g}" for d in columns),
    ]

    def cell_text(series: List[EntropyPoint], density: float,
                  attribute: str) -> str:
        for point in series:
            if point.density == density:
                value = getattr(point, attribute)
                return "    nan" if math.isnan(value) else f"{value:7.4f}"
        return f"{'-':>7}"

    for scheme in SCHEMES:
        for bits in history:
            series = sweep.series(scheme, bits)
            if not series:
                continue
            lines.append(f"{_stratum(scheme, bits):<12}"
                         + " ".join(cell_text(series, d, "branch_accuracy")
                                    for d in columns))
    lines.append("")
    lines.append("percent cycle overhead vs. density-0 baseline:")
    for scheme in SCHEMES:
        for bits in history:
            series = sweep.series(scheme, bits)
            if not series:
                continue
            lines.append(f"{_stratum(scheme, bits):<12}"
                         + " ".join(cell_text(series, d, "overhead")
                                    for d in columns))
    if sweep.sampling is not None:
        lines.extend(sweep.sampling.describe())
    return "\n".join(lines)
