"""Tests for the timing report formatters and profile utilities."""

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.isa.asm import assemble
from repro.profiles import Profile, overlap_accuracy
from repro.timing.pipeline import TimingStats
from repro.timing.report import compare, format_stats
from repro.timing.runner import time_program


class TestFormatStats:
    def test_plain_stats(self):
        stats = TimingStats(instructions=100, cycles=50, cond_branches=10,
                            cond_mispredicts=1, loads=5, stores=3)
        text = format_stats(stats, title="window")
        assert "window" in text
        assert "IPC" in text and "2.000" in text
        assert "accuracy 90.00%" in text
        assert "branch-on-random" not in text  # none resolved

    def test_brr_line_appears(self):
        stats = TimingStats(instructions=10, cycles=10, brr_resolved=4,
                            brr_taken=1)
        assert "branch-on-random" in format_stats(stats)

    def test_packet_splits_reported(self):
        stats = TimingStats(instructions=10, cycles=10, brr_resolved=4,
                            brr_packet_splits=2)
        assert "packet splits" in format_stats(stats)

    def test_rob_stalls_reported(self):
        stats = TimingStats(instructions=10, cycles=10, rob_stall_cycles=7)
        assert "ROB stall" in format_stats(stats)

    def test_real_run(self):
        program = assemble("""
            li r1, 50
        loop:
            brr 1/4, hit
        back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        hit:
            brra back
        """)
        result = time_program(program, brr_unit=HardwareCounterUnit())
        text = format_stats(result.stats)
        assert "branch-on-random" in text


class TestCompare:
    def test_overhead_table(self):
        base = TimingStats(instructions=100, cycles=1000)
        inst = TimingStats(instructions=120, cycles=1100)
        text = compare(base, [("instrumented", inst)])
        assert "10.00%" in text
        assert "baseline" in text
        assert "instrumented" in text

    def test_zero_base_rejected(self):
        with pytest.raises(ValueError):
            compare(TimingStats(), [])


class TestProfileUtilities:
    def test_merged(self):
        a = Profile({"x": 2, "y": 1})
        b = Profile({"y": 3, "z": 1})
        merged = a.merged(b)
        assert merged.count("y") == 4
        assert merged.total == 7
        # Originals untouched.
        assert a.count("y") == 1

    def test_merged_accuracy_improves_with_more_samples(self):
        full = Profile({"a": 800, "b": 150, "c": 50})
        run1 = Profile({"a": 7, "b": 3})
        run2 = Profile({"a": 9, "b": 1, "c": 1})
        merged = run1.merged(run2)
        assert merged.total == run1.total + run2.total
        assert overlap_accuracy(full, merged) > 0

    def test_dict_roundtrip(self):
        profile = Profile({"m": 5, "n": 2})
        clone = Profile.from_dict(profile.to_dict())
        assert clone.count("m") == 5
        assert clone.total == profile.total

    def test_json_roundtrip(self):
        import json

        profile = Profile({"m": 5})
        text = json.dumps(profile.to_dict())
        assert Profile.from_dict(json.loads(text)).count("m") == 5
