"""Shared store plumbing: the tier protocol, counters, atomic writes.

Every tier of a :class:`~repro.store.tiered.TieredStore` — in-process
memory, local disk, shared backend — exposes the same telemetry shape
(:class:`TierCounters`) so ``repro cache stats`` and ``/statsz`` can
render the whole stack uniformly.  The atomic-write helpers implement
the one concurrency discipline every on-disk tier relies on: write to
a same-directory temp file, optionally fsync, then ``os.replace`` —
so two processes ``put()``-ing the same key both succeed and readers
never observe a torn entry (last writer wins, byte-complete either
way).
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

try:  # pragma: no cover - import cosmetics
    from typing import Protocol
except ImportError:  # pragma: no cover - py<3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]


@dataclass
class TierCounters:
    """Hit/miss/byte telemetry of one store tier, this process."""

    hits: int = 0
    misses: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Entries dropped to stay under the tier's bounds (memory tier).
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class Store(Protocol):
    """What the engine expects of any store: typed get/put plus the
    maintenance surface the ``repro cache`` / ``repro doctor`` CLIs
    drive.  :class:`~repro.engine.cache.ResultCache` and
    :class:`~repro.engine.tracestore.TraceStore` are the two live
    implementations — thin typed views over one
    :class:`~repro.store.tiered.TieredStore` each."""

    root: pathlib.Path
    enabled: bool
    policy: str

    def stats(self) -> Dict[str, Any]: ...

    def scan(self, repair: bool = False) -> Dict[str, Any]: ...

    def prune(self) -> int: ...

    def clear(self) -> int: ...


def atomic_write_bytes(path: pathlib.Path, data: bytes,
                       fsync: bool = True) -> bool:
    """Atomically (and, by default, durably) replace ``path`` with
    ``data``.  Concurrent writers of the same path never tear each
    other: each writes its own temp file and the final ``os.replace``
    is atomic — last writer wins.  Returns True when the bytes landed.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        mode="wb", dir=path.parent, prefix=".tmp-",
        suffix=path.suffix, delete=False)
    try:
        with handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(handle.name, path)
        return True
    except OSError:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        return False


def atomic_write_with(path: pathlib.Path,
                      writer: Callable[[str], Any]) -> Tuple[Any, bool]:
    """Atomically replace ``path`` with whatever ``writer(tmp_path)``
    produces — the recorder-callback discipline of the trace store,
    where the encoder streams straight to a file.  Returns
    ``(writer result, landed)``; on a writer exception the temp file
    is removed and the exception propagates.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        dir=path.parent, prefix=".tmp-", suffix=path.suffix, delete=False)
    handle.close()
    try:
        result = writer(handle.name)
        os.replace(handle.name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise
    return result, True


def env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """An integer environment knob, ``default`` when unset/garbled."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default
