"""Figure 12: sampling-framework overhead on the JVM workloads.

"Software counter-based sampling (using Full-Duplication) averages
almost a 5% overhead on these weakly-optimized benchmarks, while the
branch-on-random-based framework achieves a 0.64% overhead.
Performance is normalized to a non-instrumented version of the code,
and both experiments use a sampling period of 1024."

The window space is declared as a :class:`~repro.stats.WindowPopulation`
(one cell per benchmark, holding its ``none``/``cbs``/``brr`` triple so
overhead deltas stay matched) and executed under an optional
:class:`~repro.stats.SamplingPlan`.  Exhaustive runs reproduce the
pre-sampling pipeline byte for byte; sampled runs additionally carry a
:class:`~repro.stats.SamplingSummary` with per-framework overhead
estimates and a matched-pair cbs-vs-brr delta CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..engine import ExperimentEngine, WindowSpec, is_failure, run_population
from ..jvm.benchmarks import FIGURE12_BENCHMARKS
from ..stats import (
    Cell,
    SamplingPlan,
    SamplingSummary,
    WindowPopulation,
    estimate_mean,
    matched_pair_estimate,
)
from ..timing.config import TimingConfig
from ..timing.runner import overhead_percent

#: One timed window per (benchmark, framework) variant.
VARIANTS = ("none", "cbs", "brr")


@dataclass
class Fig12Row:
    """Overhead of both frameworks on one benchmark."""

    benchmark: str
    base_cycles: int
    cbs_overhead: float
    brr_overhead: float
    window_instructions: int


@dataclass
class Fig12Report:
    """Figure 12's rows plus, for sampled runs, the estimator footer."""

    rows: List[Fig12Row]
    sampling: Optional[SamplingSummary] = None


def jvm_window_spec(
    name: str,
    variant: str,
    scale: float,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
) -> WindowSpec:
    """Declarative form of one Figure 12 timing window."""
    return WindowSpec.make(
        "jvm",
        benchmark=name,
        variant=variant,
        scale=scale,
        interval=interval if variant != "none" else None,
        config=None if config is None else config.to_dict(),
    )


def fig12_population(
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> WindowPopulation:
    """Figure 12's full window space: one cell per benchmark holding
    its matched ``none``/``cbs``/``brr`` triple, stratified by
    benchmark."""
    names = list(benchmarks) if benchmarks is not None \
        else list(FIGURE12_BENCHMARKS)
    cells = tuple(
        Cell(
            id=name,
            stratum=name,
            specs=tuple(jvm_window_spec(name, variant, scale, interval,
                                        config)
                        for variant in VARIANTS),
            tags=(("benchmark", name),),
        )
        for name in names
    )
    return WindowPopulation("figure12", cells)


def _reduce_row(name: str, base, cbs, brr) -> Fig12Row:
    if any(is_failure(payload) for payload in (base, cbs, brr)):
        # Skipped windows (failure_policy="skip") degrade the whole
        # benchmark row to NaN; NaN propagates into the average row.
        return Fig12Row(benchmark=name, base_cycles=0,
                        cbs_overhead=float("nan"),
                        brr_overhead=float("nan"),
                        window_instructions=0)
    return Fig12Row(
        benchmark=name,
        base_cycles=base["cycles"],
        cbs_overhead=overhead_percent(base["cycles"], cbs["cycles"]),
        brr_overhead=overhead_percent(base["cycles"], brr["cycles"]),
        window_instructions=base["instructions"],
    )


def run_benchmark(
    name: str,
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Fig12Row:
    """Overhead of cbs and brr Full-Duplication sampling vs. baseline."""
    population = fig12_population(scale, interval, config, benchmarks=[name])
    run = run_population(population, engine=engine)
    return _reduce_row(name, *run.cell_payloads(name))


def figure12_report(
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    benchmarks: Optional[Sequence[str]] = None,
    plan: Optional[SamplingPlan] = None,
) -> Fig12Report:
    """All (or a planned sample of the) benchmarks plus the average row.

    The selected cells fan out through the engine in one batch, so a
    4-worker run overlaps the benchmarks instead of timing them back
    to back.  When the plan leaves windows unrun, the report carries a
    :class:`~repro.stats.SamplingSummary`: per-framework overhead
    estimates (finite-population t intervals over benchmark cells) and
    the matched-pair cbs-minus-brr delta.
    """
    population = fig12_population(scale, interval, config, benchmarks)
    run = run_population(population, plan=plan, engine=engine)
    rows = [
        _reduce_row(cell.id, *run.cell_payloads(cell.id))
        for cell in run.cells
    ]
    rows.append(Fig12Row(
        benchmark="average",
        base_cycles=sum(r.base_cycles for r in rows),
        cbs_overhead=sum(r.cbs_overhead for r in rows) / len(rows),
        brr_overhead=sum(r.brr_overhead for r in rows) / len(rows),
        window_instructions=sum(r.window_instructions for r in rows),
    ))
    sampling = None
    if not run.complete:
        body = [row for row in rows[:-1]
                if not math.isnan(row.cbs_overhead)]
        confidence = run.plan.confidence
        estimates = {}
        if body:
            estimates["cbs overhead %"] = estimate_mean(
                [row.cbs_overhead for row in body],
                population=population.size, confidence=confidence)
            estimates["brr overhead %"] = estimate_mean(
                [row.brr_overhead for row in body],
                population=population.size, confidence=confidence)
            estimates["cbs-brr paired delta %"] = matched_pair_estimate(
                [(row.cbs_overhead, row.brr_overhead) for row in body],
                population=population.size, confidence=confidence)
        sampling = SamplingSummary(
            plan=run.plan,
            windows_population=run.windows_population,
            windows_run=run.windows_run,
            cells_population=run.cells_population,
            cells_run=run.cells_run,
            estimates=estimates,
        )
    return Fig12Report(rows=rows, sampling=sampling)


def figure12(
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    benchmarks: Optional[Sequence[str]] = None,
    plan: Optional[SamplingPlan] = None,
) -> List[Fig12Row]:
    """The classic rows-only view of :func:`figure12_report`."""
    return figure12_report(scale=scale, interval=interval, config=config,
                           engine=engine, benchmarks=benchmarks,
                           plan=plan).rows


def format_rows(rows: List[Fig12Row],
                sampling: Optional[SamplingSummary] = None) -> str:
    lines = [
        "Figure 12: framework overhead at period 1024 (Full-Duplication)",
        f"{'benchmark':<10} {'counter-based %':>16} {'branch-on-random %':>20}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.cbs_overhead:16.2f} "
            f"{row.brr_overhead:20.2f}"
        )
    if sampling is not None:
        lines.extend(sampling.describe())
    return "\n".join(lines)
