"""Tests for the LFSR model against the paper's Figure 6 and Section 3.4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lfsr import Lfsr, LfsrError
from repro.core.taps import (
    FIGURE6_TAPS,
    MAXIMAL_TAPS,
    PAPER_SENSITIVITY_TAPS_32,
    default_taps,
    taps_are_maximal,
)

#: The exact 15-state sequence printed in Figure 6 of the paper.
FIGURE6_SEQUENCE = [
    0b0001, 0b1000, 0b0100, 0b0010, 0b1001, 0b1100, 0b0110, 0b1011,
    0b0101, 0b1010, 0b1101, 0b1110, 0b1111, 0b0111, 0b0011,
]


class TestFigure6:
    def test_exact_sequence(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0001)
        assert list(lfsr.sequence(15)) == FIGURE6_SEQUENCE

    def test_sequence_wraps(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0001)
        states = list(lfsr.sequence(16))
        assert states[15] == states[0]

    def test_single_update_from_0110(self):
        # The figure's worked example: 0110 updates to 1011.
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0110)
        lfsr.step()
        assert lfsr.state == 0b1011

    def test_period_is_15(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0001)
        assert lfsr.period() == 15


class TestConstruction:
    def test_default_taps_used(self):
        lfsr = Lfsr(16)
        assert lfsr.taps == default_taps(16)

    def test_zero_seed_rejected(self):
        with pytest.raises(LfsrError):
            Lfsr(8, seed=0)

    def test_seed_masked_to_width(self):
        lfsr = Lfsr(4, seed=0b10001)  # bit 4 masked off -> 0001
        assert lfsr.state == 0b0001

    def test_width_below_two_rejected(self):
        with pytest.raises(LfsrError):
            Lfsr(1)

    def test_leading_tap_must_match_width(self):
        with pytest.raises(LfsrError):
            Lfsr(8, taps=(7, 1))

    def test_unknown_width_without_taps_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(40)


class TestStateAccess:
    def test_bit_positions(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b1010)
        assert [lfsr.bit(i) for i in range(4)] == [0, 1, 0, 1]

    def test_bit_out_of_range(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS)
        with pytest.raises(LfsrError):
            lfsr.bit(4)
        with pytest.raises(LfsrError):
            lfsr.bit(-1)

    def test_bits_bulk_read(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b1010)
        assert lfsr.bits([0, 2]) == [0, 0]
        assert lfsr.bits([1, 3]) == [1, 1]

    def test_scan_chain_roundtrip(self):
        lfsr = Lfsr(16, seed=0x1234)
        saved = lfsr.read_scan()
        lfsr.step_many(100)
        lfsr.write_scan(saved)
        assert lfsr.state == 0x1234

    def test_scan_write_zero_rejected(self):
        lfsr = Lfsr(16)
        with pytest.raises(LfsrError):
            lfsr.write_scan(0)

    def test_step_returns_shifted_out_bit(self):
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0001)
        assert lfsr.step() == 1
        assert lfsr.step() == 0


class TestMaximality:
    @pytest.mark.parametrize("width", sorted(MAXIMAL_TAPS))
    def test_canonical_taps_are_primitive(self, width):
        assert taps_are_maximal(MAXIMAL_TAPS[width])

    @pytest.mark.parametrize("width", [4, 5, 6, 7, 8, 9, 10, 11, 12])
    def test_measured_period_matches(self, width):
        lfsr = Lfsr(width)
        assert lfsr.period() == (1 << width) - 1

    def test_sensitivity_tap_sets_accepted(self):
        # The paper asserts all four 32-bit configurations "cycle
        # through all the possible values"; we at least require the
        # model to construct and step them.
        for taps in PAPER_SENSITIVITY_TAPS_32:
            lfsr = Lfsr(32, taps=taps, seed=0xDEADBEEF)
            lfsr.step_many(64)
            assert lfsr.state != 0

    def test_one_probability_footnote2(self):
        # n=16: 2^15 / (2^16 - 1) = 0.5000076...
        lfsr = Lfsr(16)
        assert lfsr.one_probability() == pytest.approx(0.5000076, abs=1e-6)

    def test_every_nonzero_state_visited(self):
        lfsr = Lfsr(8)
        states = set(lfsr.sequence((1 << 8) - 1))
        assert len(states) == 255
        assert 0 not in states

    def test_bit_balance_over_full_period(self):
        """Footnote 2: each bit is 1 in exactly 2^(n-1) states."""
        lfsr = Lfsr(8)
        ones = [0] * 8
        for state in lfsr.sequence(255):
            for b in range(8):
                ones[b] += (state >> b) & 1
        assert all(count == 128 for count in ones)


class TestShiftBack:
    """Section 3.4: deterministic recovery of speculative updates."""

    def test_shift_back_restores_state(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=8)
        before = lfsr.state
        lfsr.step_many(5)
        lfsr.shift_back(5)
        assert lfsr.state == before

    def test_shift_back_partial(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=8)
        lfsr.step_many(3)
        mid = lfsr.state
        lfsr.step_many(4)
        lfsr.shift_back(4)
        assert lfsr.state == mid

    def test_shift_back_updates_counter(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=8)
        lfsr.step_many(4)
        lfsr.shift_back(2)
        assert lfsr.updates == 2

    def test_shift_back_beyond_history_rejected(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=2)
        lfsr.step_many(5)
        with pytest.raises(LfsrError):
            lfsr.shift_back(3)

    def test_shift_back_without_history_rejected(self):
        lfsr = Lfsr(16, seed=0xACE1)
        lfsr.step()
        with pytest.raises(LfsrError):
            lfsr.shift_back(1)

    def test_negative_count_rejected(self):
        lfsr = Lfsr(16, history_bits=4)
        with pytest.raises(LfsrError):
            lfsr.shift_back(-1)

    def test_history_ring_keeps_newest(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=4)
        lfsr.step_many(10)
        mid = None
        # After 10 steps with capacity 4 we can undo exactly 4.
        reference = Lfsr(16, seed=0xACE1)
        reference.step_many(6)
        mid = reference.state
        lfsr.shift_back(4)
        assert lfsr.state == mid


class TestClone:
    def test_clone_is_independent(self):
        lfsr = Lfsr(16, seed=0xBEEF)
        copy = lfsr.clone()
        lfsr.step_many(10)
        assert copy.state == 0xBEEF

    def test_clone_preserves_history(self):
        lfsr = Lfsr(16, seed=0xBEEF, history_bits=4)
        lfsr.step_many(3)
        copy = lfsr.clone()
        copy.shift_back(3)
        assert copy.state == 0xBEEF


@settings(max_examples=50)
@given(
    width=st.integers(min_value=4, max_value=24),
    seed=st.integers(min_value=1, max_value=(1 << 24) - 1),
    steps=st.integers(min_value=0, max_value=64),
)
def test_state_never_zero(width, seed, steps):
    """A maximal LFSR seeded non-zero never reaches the zero state."""
    lfsr = Lfsr(width, seed=(seed % ((1 << width) - 1)) + 1)
    for _ in range(steps):
        lfsr.step()
        assert lfsr.state != 0


@settings(max_examples=50)
@given(
    seed=st.integers(min_value=1, max_value=0xFFFF),
    steps=st.integers(min_value=1, max_value=32),
)
def test_shift_back_inverts_step(seed, steps):
    lfsr = Lfsr(16, seed=seed, history_bits=32)
    trail = [lfsr.state]
    for _ in range(steps):
        lfsr.step()
        trail.append(lfsr.state)
    for expected in reversed(trail[:-1]):
        lfsr.shift_back(1)
        assert lfsr.state == expected


class TestJumpAhead:
    def test_jump_matches_stepping(self):
        for count in (0, 1, 2, 7, 100, 12345):
            jumper = Lfsr(16, seed=0xACE1)
            stepper = Lfsr(16, seed=0xACE1)
            jumper.jump(count)
            stepper.step_many(count)
            assert jumper.state == stepper.state, count
            assert jumper.updates == count

    def test_full_period_jump_is_identity(self):
        lfsr = Lfsr(12, seed=0x5A5)
        lfsr.jump((1 << 12) - 1)
        assert lfsr.state == 0x5A5

    def test_huge_jump_fast(self):
        lfsr = Lfsr(32, taps=(32, 22, 2, 1), seed=0xDEADBEEF)
        lfsr.jump(10**15)  # far beyond anything steppable
        assert lfsr.state != 0

    def test_jump_clears_history(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=8)
        lfsr.step_many(4)
        lfsr.jump(3)
        with pytest.raises(LfsrError):
            lfsr.shift_back(1)

    def test_negative_jump_rejected(self):
        with pytest.raises(LfsrError):
            Lfsr(16).jump(-1)

    def test_decorrelated_stream_placement(self):
        """Threads seeded by equal jumps occupy disjoint cycle
        segments."""
        base = Lfsr(16, seed=1)
        seeds = []
        for __ in range(4):
            seeds.append(base.state)
            base.jump(16384)
        assert len(set(seeds)) == 4

class TestBatchedStepping:
    """``step_words``/``step_many`` vs bit-at-a-time ``step()``: state,
    output stream, update counter and shift-back history must all be
    exactly what individual steps would have produced."""

    @pytest.mark.parametrize("width", [4, 16, 20, 24])
    @pytest.mark.parametrize("history_bits", [0, 3, 8, 200])
    @pytest.mark.parametrize("words", [1, 2, 5])
    def test_step_words_matches_step(self, width, history_bits, words):
        seed = 0xACE1 & ((1 << width) - 1) or 1
        batched = Lfsr(width, seed=seed, history_bits=history_bits)
        stepper = Lfsr(width, seed=seed, history_bits=history_bits)
        out = batched.step_words(words)
        bits = [stepper.step() for _ in range(words * 64)]
        expected = [
            sum(bit << i for i, bit in enumerate(bits[k * 64:(k + 1) * 64]))
            for k in range(words)
        ]
        assert out == expected
        assert batched.state == stepper.state
        assert batched.updates == stepper.updates
        assert list(batched._history) == list(stepper._history)

    def test_step_words_zero_and_negative(self):
        lfsr = Lfsr(16, seed=0xACE1)
        assert lfsr.step_words(0) == []
        assert lfsr.updates == 0
        with pytest.raises(LfsrError):
            lfsr.step_words(-1)

    def test_step_words_then_shift_back(self):
        lfsr = Lfsr(16, seed=0xACE1, history_bits=32)
        reference = Lfsr(16, seed=0xACE1, history_bits=32)
        lfsr.step_words(2)
        reference.step_many(128)
        lfsr.shift_back(7)
        reference.shift_back(7)
        assert lfsr.state == reference.state
        assert lfsr.updates == reference.updates

    @pytest.mark.parametrize("width,history_bits", [
        (4, 0), (4, 5), (20, 0), (20, 5), (20, 64),
    ])
    @pytest.mark.parametrize("count", [0, 1, 79, 1000, 12345])
    def test_step_many_matches_step(self, width, history_bits, count):
        seed = 0xACE1 & ((1 << width) - 1) or 1
        batched = Lfsr(width, seed=seed, history_bits=history_bits)
        stepper = Lfsr(width, seed=seed, history_bits=history_bits)
        batched.step_many(count)
        for _ in range(count):
            stepper.step()
        assert batched.state == stepper.state
        assert batched.updates == stepper.updates
        assert list(batched._history) == list(stepper._history)

    def test_advance_matrix_cached_across_instances(self):
        from repro.core.lfsr import _ADVANCE_CACHE

        first = Lfsr(16, seed=1)._advance_matrix()
        second = Lfsr(16, seed=0xACE1)._advance_matrix()
        assert first is second
        assert _ADVANCE_CACHE[(16, default_taps(16))] is first
