"""Timing-model configuration, defaulting to the paper's Section 5.1.

"We configured our simulator to be a 4-wide (decode, execute, retire)
out-of-order processor with a 80-entry reorder-buffer.  The front end
can fetch up to three x86 instruction per cycle, but stops fetch at a
predicted taken branch.  Its branch predictor is a tournament
predictor with a 16-bit gshare and a 64k-entry bimodal predictor, and
it includes a 32-entry RAS and a 1024-entry branch target buffer
(BTB).  The minimum (back-end) misprediction penalty is 11 cycles.
The L1 caches are 32KB, 4-way set-associative with 64-byte blocks.
The shared L2 cache is 1MB, 8-way set-associative and responds in 8
cycles, and memory responds in 140 cycles. ... Branch-on-random
instructions are resolved in the decode stage, the 5th stage of the
pipeline."
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class TimingConfig:
    """All knobs of the cycle-level model."""

    # Widths.
    fetch_width: int = 3
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4

    # Buffering.
    rob_entries: int = 80
    phys_regs: int = 128

    # Pipeline depth: decode is the 5th stage, so an instruction
    # fetched in cycle c decodes no earlier than c + frontend_depth.
    frontend_depth: int = 4

    # Minimum back-end misprediction penalty in cycles.
    backend_penalty: int = 11

    # Branch predictor.
    gshare_history_bits: int = 16
    bimodal_entries: int = 1 << 16  # "64k-entry bimodal"
    chooser_entries: int = 1 << 12
    btb_entries: int = 1024
    ras_entries: int = 32

    # Caches: (size bytes, associativity).
    line_bytes: int = 64
    l1i_size: int = 32 << 10
    l1i_assoc: int = 4
    l1d_size: int = 32 << 10
    l1d_assoc: int = 4
    l2_size: int = 1 << 20
    l2_assoc: int = 8
    l1_latency: int = 1
    l2_latency: int = 8
    memory_latency: int = 140

    # Branch-on-random microarchitecture (Section 3.3 rules).  The
    # flags exist so ablation benchmarks can turn each rule off:
    # resolving brr in the back end and/or letting it pollute the
    # predictor recreates the behaviour of an ordinary conditional
    # branch.
    brr_resolve_at_decode: bool = True
    brr_uses_predictor: bool = False
    brr_commits_at_decode: bool = True
    #: Footnote 3's alternative to per-decoder LFSR replication: a
    #: single LFSR with a program-order priority encoder.  At most one
    #: brr can then resolve per decode cycle; a fetch packet holding
    #: more is split, the extras decoding the following cycle.
    brr_shared_lfsr: bool = False

    def with_overrides(self, **kwargs) -> "TimingConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar form, safe to JSON-encode or cross processes."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimingConfig":
        """Inverse of :meth:`to_dict`; rejects unknown field names."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown TimingConfig fields: {sorted(unknown)}"
            )
        return cls(**data)


#: The exact Section 5.1 machine.
PAPER_CONFIG = TimingConfig()

#: A deliberately naive variant in which brr behaves like an ordinary
#: conditional branch — used by the ablation benchmarks to show how
#: much each Section 3.3 design rule buys.
NAIVE_BRR_CONFIG = PAPER_CONFIG.with_overrides(
    brr_resolve_at_decode=False,
    brr_uses_predictor=True,
    brr_commits_at_decode=False,
)
