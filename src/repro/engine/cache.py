"""Content-addressed cache of window results — a typed view over the
three-tier store layer (:mod:`repro.store`).

On disk, results live under
``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json`` where ``key`` is the
spec's canonical digest (which already folds in
:data:`~repro.engine.spec.SCHEMA_VERSION`, seeds and every simulation
parameter — see ``docs/engine.md``); the layout is byte-for-byte what
the pre-refactor cache wrote.  Above the disk sits an in-process LRU
of canonical payload bytes (bounded by entries and bytes —
``REPRO_MEM_ENTRIES`` / ``REPRO_MEM_BYTES``), filled on verified
reads; below it an optional shared backend (``REPRO_STORE_BACKEND``)
lets many replicas share one corpus — a local miss falls through to
the backend, and every ``put`` publishes back.  Entries are written
atomically (temp file + ``os.replace``), so concurrent workers and
concurrent processes sharing one cache directory never tear each
other.

Every entry embeds an integrity block — the payload's canonical
sha256 and the schema version — recomputed on read
(``docs/integrity.md``).  What a mismatch becomes is the cache's
``policy``: ``verify`` (quarantine + raise), ``repair`` (the default:
quarantine to ``<root>/quarantine/`` with a reason file and
transparently recompute — or re-fetch from the shared backend) or
``trust`` (skip digest verification; an unparseable entry is still
dropped, as before the integrity layer).

The root defaults to ``~/.cache/repro`` and is overridden by
``REPRO_CACHE_DIR``; ``REPRO_CACHE=0`` disables caching entirely.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Tuple, Union

from ..store import (
    Backend,
    Codec,
    DiskTier,
    IntegrityError,  # noqa: F401 - historical import surface
    MemoryTier,
    TieredStore,
    backend_from_env,
    integrity_policy_from_env,
    make_backend,
    maybe_wrap_breaker,
    memory_bytes_from_env,
    memory_entries_from_env,
    payload_digest,
)
from .spec import SCHEMA_VERSION, WindowSpec

#: Constructor default meaning "resolve ``REPRO_STORE_BACKEND``".
AUTO_BACKEND = "auto"


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no")


def resolve_backend(backend: Union[Backend, str, None],
                    namespace: str,
                    breaker: Optional[bool] = None) -> Optional[Backend]:
    """The shared-backend constructor argument, resolved: a live
    :class:`Backend` (used as-is — callers wrap their own), a spec
    string, :data:`AUTO_BACKEND` (read ``REPRO_STORE_BACKEND``), or
    ``None`` (no shared tier).  Spec-named backends are wrapped in a
    :class:`~repro.store.backend.CircuitBreakerBackend` per ``breaker``
    (``None`` resolves ``REPRO_BREAKER``, default on)."""
    if backend is None or isinstance(backend, Backend):
        return backend
    if backend == AUTO_BACKEND:
        resolved = backend_from_env(namespace)
    else:
        resolved = make_backend(backend, namespace)
    return maybe_wrap_breaker(resolved, breaker)


class _ResultCodec(Codec):
    """Result entries: JSON documents with an embedded integrity block.

    The memory tier holds the payload's canonical JSON bytes, not the
    decoded object — ``get`` decodes fresh each time, so a reducer
    mutating a returned payload cannot pollute later reads.
    """

    store_title = "result cache"
    namespace = "results"

    @staticmethod
    def check_entry(entry: Any) -> Dict[str, Any]:
        """The entry's payload, after verifying the embedded digest;
        raises ``ValueError`` on any mismatch."""
        payload = entry["result"]
        block = entry["integrity"]
        if block.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"entry schema {block.get('schema')!r} != {SCHEMA_VERSION}")
        digest = payload_digest(payload)
        if block.get("digest") != digest:
            raise ValueError(
                f"payload digest mismatch: stored "
                f"{str(block.get('digest'))[:12]}…, computed {digest[:12]}…")
        return payload

    def load(self, path: pathlib.Path,
             verify: bool) -> Tuple[Dict[str, Any], int]:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        payload = (self.check_entry(entry) if verify else entry["result"])
        try:
            nbytes = path.stat().st_size
        except OSError:
            nbytes = 0
        return payload, nbytes

    def to_memory(self, value: Dict[str, Any],
                  nbytes: int) -> Tuple[bytes, int]:
        blob = json.dumps(value, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return blob, len(blob)

    def from_memory(self, stored: bytes) -> Dict[str, Any]:
        return json.loads(stored.decode("utf-8"))


class ResultCache:
    """Content-addressed store mapping spec digests to result payloads."""

    def __init__(self, root: Optional[pathlib.Path] = None,
                 enabled: bool = True,
                 policy: Optional[str] = None,
                 memory_entries: Optional[int] = None,
                 memory_bytes: Optional[int] = None,
                 backend: Union[Backend, str, None] = AUTO_BACKEND,
                 breaker: Optional[bool] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.enabled = enabled
        codec = _ResultCodec()
        self._tiers = TieredStore(
            disk=DiskTier(self.root, SCHEMA_VERSION, ".json"),
            codec=codec,
            memory=MemoryTier(
                max_entries=(memory_entries if memory_entries is not None
                             else memory_entries_from_env()),
                max_bytes=(memory_bytes if memory_bytes is not None
                           else memory_bytes_from_env())),
            backend=resolve_backend(backend, codec.namespace, breaker),
            policy=(policy if policy is not None
                    else integrity_policy_from_env()),
            promote_on_put=False,
            durable=True,
        )
        self.hits = 0
        self.misses = 0

    # The policy and integrity counters live on the tier stack; expose
    # them under their historical names.
    @property
    def policy(self) -> str:
        return self._tiers.policy

    @property
    def integrity(self):
        return self._tiers.integrity

    @property
    def backend(self) -> Optional[Backend]:
        return self._tiers.backend

    def _path(self, key: str) -> pathlib.Path:
        return self._tiers.disk.path(key)

    @staticmethod
    def _check_entry(entry: Any) -> Dict[str, Any]:
        return _ResultCodec.check_entry(entry)

    def get(self, spec: WindowSpec) -> Optional[Dict[str, Any]]:
        """The cached payload for ``spec``, or ``None`` on a miss.

        Reads walk the tier stack: memory LRU, then the local disk
        entry (verified per the policy — a corrupt one is quarantined
        under ``verify``/``repair``, and raises :class:`IntegrityError`
        under ``verify``), then the shared backend, whose fetch fills
        the local tiers on the way up.
        """
        if not self.enabled:
            return None
        found = self._tiers.get(spec.cache_key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found[0]

    def put(self, spec: WindowSpec, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` for ``spec`` (atomic, last-writer-wins).

        The entry is flushed and fsynced *before* the rename, so a
        window that completed before a crash or SIGKILL is durably
        cached — the invariant ``repro resume`` relies on to execute
        only the missing windows.  With a shared backend configured
        the entry is also published there (best-effort).  Returns True
        when the entry landed.
        """
        if not self.enabled:
            return False
        entry = {"spec": spec.to_dict(), "result": payload,
                 "integrity": {"schema": SCHEMA_VERSION,
                               "digest": payload_digest(payload)}}
        data = json.dumps(entry, sort_keys=True).encode("utf-8")
        return self._tiers.put_bytes(spec.cache_key, data, value=payload)

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).  Only the versioned payload
    # subtrees are touched: the trace store may nest its own tree under
    # this root (``<root>/traces`` by default) and manages it itself.

    def stats(self) -> Dict[str, Any]:
        """Entry/byte counts of the current-version cache, the
        integrity layer's health counters, and per-tier telemetry."""
        return self._tiers.stats()

    def tier_counters(self) -> Dict[str, Any]:
        """Per-tier hit/miss/byte counters only (cheap — no disk walk);
        what the engine folds into its JSONL run summaries."""
        return self._tiers.tier_counters()

    def flush(self) -> Dict[str, int]:
        """Retry backend publishes that failed (graceful drain)."""
        return self._tiers.flush()

    def scan(self, repair: bool = False) -> Dict[str, Any]:
        """Verify every current-version entry (the ``repro doctor``
        pass).  With ``repair``, corrupt entries are quarantined so
        their next use recomputes them; without it they are only
        reported."""
        return self._tiers.scan(repair=repair)

    def prune(self) -> int:
        """Drop stale-version subtrees, leftover temp files and the
        quarantine audit trail; returns the number of files removed."""
        return self._tiers.prune()

    def clear(self) -> int:
        """Delete every cached payload (all versions); returns the count."""
        return self._tiers.clear()
