"""Tests for per-thread LFSR context switching (Section 3.4)."""

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.isa.asm import assemble
from repro.sim.machine import Machine
from repro.sim.threads import ContextScheduler

# Two independent threads, each counting its own brr samples into a
# distinct memory word, each halting when its loop ends.
TWO_THREADS = """
threadA:
    li r1, 400
    li r2, 0
    li r3, 0x4000
aloop:
    brr 1/8, ahit
aback:
    addi r1, r1, -1
    bne r1, r0, aloop
    sw r2, 0(r3)
    halt
ahit:
    addi r2, r2, 1
    brra aback

threadB:
    li r1, 400
    li r2, 0
    li r3, 0x4004
bloop:
    brr 1/8, bhit
bback:
    addi r1, r1, -1
    bne r1, r0, bloop
    sw r2, 0(r3)
    halt
bhit:
    addi r2, r2, 1
    brra bback
"""


def solo_samples(entry, seed):
    """Thread run in isolation with its own LFSR: the reference."""
    machine = Machine(assemble(TWO_THREADS),
                      brr_unit=BranchOnRandomUnit(Lfsr(20, seed=seed)),
                      entry=entry)
    machine.run(max_steps=100_000)
    addr = 0x4000 if entry == "threadA" else 0x4004
    return machine.memory.load_word(addr)


def scheduled_samples(quantum, switch_lfsr=True):
    machine = Machine(assemble(TWO_THREADS),
                      brr_unit=BranchOnRandomUnit(Lfsr(20)))
    scheduler = ContextScheduler(machine, switch_lfsr=switch_lfsr)
    scheduler.add_thread("A", "threadA", lfsr_seed=0x11111)
    scheduler.add_thread("B", "threadB", lfsr_seed=0x22222)
    scheduler.run(quantum=quantum)
    return (machine.memory.load_word(0x4000),
            machine.memory.load_word(0x4004),
            scheduler)


class TestContextScheduler:
    def test_both_threads_complete(self):
        a, b, scheduler = scheduled_samples(quantum=64)
        assert a > 0 and b > 0
        assert all(t.finished for t in scheduler.threads)
        assert scheduler.switches > 2

    def test_lfsr_save_restore_gives_solo_sequences(self):
        """With the LFSR in the context, each thread's sample count is
        exactly what it gets running alone with its seed — regardless
        of interleaving."""
        expected_a = solo_samples("threadA", 0x11111)
        expected_b = solo_samples("threadB", 0x22222)
        for quantum in (13, 64, 500):
            a, b, __ = scheduled_samples(quantum=quantum)
            assert a == expected_a, f"quantum {quantum}"
            assert b == expected_b, f"quantum {quantum}"

    def test_without_lfsr_switch_threads_interfere(self):
        """Hardware without software-visible LFSR state cannot give
        per-thread determinism: counts shift with the quantum."""
        results = {q: scheduled_samples(q, switch_lfsr=False)[:2]
                   for q in (13, 64)}
        assert results[13] != results[64]

    def test_quantum_boundary_mid_instruction_safe(self):
        """Switching at any quantum preserves totals (sample counts are
        per-thread state, never lost across switches)."""
        a1, b1, __ = scheduled_samples(quantum=1)
        a2, b2, __ = scheduled_samples(quantum=999)
        assert (a1, b1) == (a2, b2)

    def test_steps_accounted(self):
        __, __, scheduler = scheduled_samples(quantum=50)
        for thread in scheduler.threads:
            assert thread.steps > 400  # loop body > iterations

    def test_rejects_non_lfsr_unit(self):
        from repro.core.brr import HardwareCounterUnit

        machine = Machine(assemble(TWO_THREADS),
                          brr_unit=HardwareCounterUnit())
        with pytest.raises(TypeError):
            ContextScheduler(machine)

    def test_runs_without_brr_unit(self):
        source = """
        t1: li r1, 5
        l1: addi r1, r1, -1
            bne r1, r0, l1
            halt
        t2: li r2, 5
        l2: addi r2, r2, -1
            bne r2, r0, l2
            halt
        """
        machine = Machine(assemble(source))
        scheduler = ContextScheduler(machine)
        scheduler.add_thread("x", "t1")
        scheduler.add_thread("y", "t2")
        scheduler.run(quantum=3)
        assert all(t.finished for t in scheduler.threads)
