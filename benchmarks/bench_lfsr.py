"""Microbenchmarks of the core branch-on-random hardware model.

Not a paper figure, but the substrate everything else runs on: LFSR
update rate, condition-unit evaluation, and full brr resolution — plus
a correctness gate on the exact Figure 6 sequence.
"""

from repro.core.brr import BranchOnRandomUnit
from repro.core.condition import ConditionUnit
from repro.core.lfsr import Lfsr
from repro.core.taps import FIGURE6_TAPS

FIGURE6_SEQUENCE = [
    0b0001, 0b1000, 0b0100, 0b0010, 0b1001, 0b1100, 0b0110, 0b1011,
    0b0101, 0b1010, 0b1101, 0b1110, 0b1111, 0b0111, 0b0011,
]


def test_figure6_sequence_bench(benchmark):
    """Figure 6: the 4-bit LFSR walks the exact published sequence."""

    def walk():
        lfsr = Lfsr(4, taps=FIGURE6_TAPS, seed=0b0001)
        return list(lfsr.sequence(15))

    sequence = benchmark(walk)
    assert sequence == FIGURE6_SEQUENCE


def test_lfsr_step_rate(benchmark):
    lfsr = Lfsr(20)

    def steps():
        for __ in range(10_000):
            lfsr.step()

    benchmark(steps)


def test_condition_unit_evaluate(benchmark):
    lfsr = Lfsr(20)
    unit = ConditionUnit(lfsr)

    def evaluate():
        hits = 0
        for __ in range(10_000):
            hits += unit.evaluate(9)
            lfsr.step()
        return hits

    benchmark(evaluate)


def test_brr_resolution_rate(benchmark):
    unit = BranchOnRandomUnit()

    def resolve():
        taken = 0
        for __ in range(10_000):
            taken += unit.resolve(9)
        return taken

    benchmark(resolve)


def test_lfsr_step_words_rate(benchmark):
    """Word-batched output generation (satellite of the fastpath PR).

    Produces the same 10_000*64 bits as test_lfsr_step_rate's loop
    would over 64 runs, but through the cached M^width hop; the
    equivalence gate below keeps the speedup honest.
    """
    lfsr = Lfsr(20)

    def words():
        return lfsr.step_words(10_000)

    benchmark(words)


def test_step_words_pinned_speedup():
    """step_words must beat bit-at-a-time stepping while staying exact.

    Not a pytest-benchmark fixture: this is the hard >= gate (the
    timed comparison is in BENCH_timing.json's "lfsr" section and in
    the fixtures above).  The factor here is deliberately conservative
    so CI noise never flakes it.
    """
    from repro.experiments import bench_lfsr_rates

    rates = bench_lfsr_rates(bits=1 << 16)
    assert rates["speedup"] is not None and rates["speedup"] >= 1.3, rates
