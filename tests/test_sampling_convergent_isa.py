"""Tests for ISA-level convergent profiling (brr field patching)."""

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.sampling import ConvergentController, SiteBinding
from repro.workloads.microbench import PROFILE_BASE, build_microbench


def make_setup(n_chars=6000, seed=3, interval=4):
    bench = build_microbench(n_chars, variant="no-dup", kind="brr",
                             interval=interval, seed=seed)
    machine = bench.make_machine(
        brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0x1111)))
    return bench, machine


class TestBindings:
    def test_bindings_point_at_brr_instructions(self):
        from repro.isa.instructions import Op

        bench, machine = make_setup()
        bindings = bench.brr_site_bindings()
        assert set(bindings) == {0, 1, 2, 3}
        for binding in bindings.values():
            instr = bench.program.decode_at(binding.brr_addr)
            assert instr.op is Op.BRR
            assert PROFILE_BASE <= binding.counter_addr < PROFILE_BASE + 16

    def test_bindings_require_brr_nodup(self):
        bench = build_microbench(500, variant="full")
        with pytest.raises(ValueError):
            bench.brr_site_bindings()
        bench = build_microbench(500, variant="full-dup", kind="brr")
        with pytest.raises(ValueError):
            bench.brr_site_bindings()


class TestController:
    def test_initial_field_patched_in(self):
        bench, machine = make_setup(interval=1024)  # compiled at 1/1024
        controller = ConvergentController(
            machine, bench.brr_site_bindings(), initial_field=1)
        # The controller re-encoded every site at 1/4.
        for key in controller.sites:
            assert controller.current_interval(key) == 4

    def test_rates_back_off_as_shares_stabilise(self):
        bench, machine = make_setup(n_chars=20_000)
        controller = ConvergentController(
            machine, bench.brr_site_bindings(),
            initial_field=1, max_field=6,
            stable_polls_to_backoff=2, share_tolerance=0.05,
        )
        controller.run(steps_per_poll=8000, polls=30)
        intervals = [controller.current_interval(k) for k in controller.sites]
        # The character-class mix is stationary: every site backs off.
        assert all(interval > 4 for interval in intervals)
        summary = controller.summary()
        assert sum(s["samples"] for s in summary.values()) > 0

    def test_shares_track_true_distribution(self):
        from repro.workloads.text import class_counts

        bench, machine = make_setup(n_chars=20_000)
        controller = ConvergentController(
            machine, bench.brr_site_bindings(),
            initial_field=1, max_field=5,
            stable_polls_to_backoff=2, share_tolerance=0.05,
        )
        controller.run(steps_per_poll=8000, polls=40)
        lower, upper, other = class_counts(bench.text)
        total = lower + 2 * (upper + other)
        true_lower_share = lower / total
        measured = controller.sites[1].share  # site 1 = lower edge
        assert measured == pytest.approx(true_lower_share, abs=0.08)

    def test_converged_flag_reached_at_max_field(self):
        bench, machine = make_setup(n_chars=30_000)
        controller = ConvergentController(
            machine, bench.brr_site_bindings(),
            initial_field=1, max_field=3,
            stable_polls_to_backoff=1, share_tolerance=0.2,
        )
        controller.run(steps_per_poll=6000, polls=40)
        assert any(c.converged for c in controller.sites.values())

    def test_rate_changes_recorded(self):
        bench, machine = make_setup(n_chars=20_000)
        controller = ConvergentController(
            machine, bench.brr_site_bindings(),
            initial_field=1, max_field=5,
            stable_polls_to_backoff=1, share_tolerance=0.2,
        )
        controller.run(steps_per_poll=8000, polls=25)
        assert any(c.rate_changes for c in controller.sites.values())

    def test_validation(self):
        bench, machine = make_setup()
        with pytest.raises(ValueError):
            ConvergentController(machine, {})
        with pytest.raises(ValueError):
            ConvergentController(machine, bench.brr_site_bindings(),
                                 initial_field=5, max_field=2)

    def test_poll_before_any_samples_is_safe(self):
        bench, machine = make_setup()
        controller = ConvergentController(machine,
                                          bench.brr_site_bindings())
        controller.poll()  # nothing sampled yet
        assert controller.polls == 1

    def test_run_stops_at_halt(self):
        bench, machine = make_setup(n_chars=800)
        controller = ConvergentController(machine,
                                          bench.brr_site_bindings())
        steps = controller.run(steps_per_poll=100_000, polls=10)
        assert machine.halted
        assert steps < 100_000 * 10
