"""Software emulation of branch-on-random via invalid-opcode traps.

Section 4.1 of the paper: "we had Jikes emit an invalid opcode for the
branch-on-random followed by 4 bytes for a branch offset.  We
registered a signal handler for SIGILL ... When our invalid opcode is
encountered, the O/S calls our signal handler which functionally
emulates a branch-on-random by simulating an LFSR in software; based
on the LFSR state, the signal handler either updates the PC to the
fall-through instruction or adds the branch offset to the PC."

:class:`BrrTrapEmulator` is that signal handler.  The assembler's
``brr_mode="trap"`` emits the matching two-word encoding (see
:data:`repro.isa.asm.TRAP_BRR_OPCODE`), and the LFSR lives in the
emulator object — the analogue of the thread-local storage the paper
stores it in.
"""

from __future__ import annotations

from typing import Optional

from ..core.brr import BranchOnRandomUnit, RandomSource
from ..isa.asm import TRAP_BRR_OPCODE
from ..isa.instructions import WORD
from .machine import Machine


class BrrTrapEmulator:
    """Invalid-opcode handler that emulates ``brr`` in software."""

    def __init__(self, unit: Optional[RandomSource] = None) -> None:
        #: The software LFSR state ("stored in thread-local storage").
        self.unit: RandomSource = unit if unit is not None else BranchOnRandomUnit()
        #: Number of traps serviced.
        self.traps = 0
        #: Number of emulated branches that were taken.
        self.taken = 0

    def install(self, machine: Machine) -> None:
        """Register this emulator on a machine's trap table."""
        machine.register_trap_handler(TRAP_BRR_OPCODE, self.handle)

    def handle(self, machine: Machine, word: int, pc: int) -> int:
        """Service one trap; return the next PC.

        The emulated instruction occupies two words: the invalid
        opcode (with the freq field in bits 25:22) and a signed 32-bit
        byte offset applied when the branch is taken.
        """
        freq = (word >> 22) & 0xF
        raw_offset = machine.memory.load_word(pc + WORD)
        offset = raw_offset - 0x100000000 if raw_offset & 0x80000000 else raw_offset
        fall_through = pc + 2 * WORD
        self.traps += 1
        if self.unit.resolve(freq):
            self.taken += 1
            return fall_through + offset
        return fall_through
