"""The cross-path differential fuzzing harness (``repro.fuzz``).

The load-bearing test is the seeded known-divergence self-test: an
injected fault (via the harness's ``fault=`` seam) must be *detected*
as a divergence on the right comparison and *shrunk* to a minimal
program that still triggers it — proving the harness would catch a
real cross-path bug, not just agree with itself.
"""

import json

import pytest

from repro.fuzz import (
    DEFAULT_CONFIGS,
    TIMING_PAIRS,
    format_fuzz,
    run_differential_fuzz,
)
from repro.workloads.adversarial import build_adversarial


def _seed_with_brr(blocks=10, limit=40):
    """First window seed whose generated program contains a brr block
    (the content hook the injected fault below keys on)."""
    for seed in range(limit):
        if build_adversarial(scheme="mixed", seed=seed,
                             blocks=blocks).uses_brr:
            return seed
    raise AssertionError("no brr block in any candidate seed")


class TestCleanRuns:
    def test_mixed_windows_have_zero_divergences(self):
        report = run_differential_fuzz(windows=4, seed=0, blocks=10)
        assert not report.failed
        assert report.divergences == []
        # Per window: |TIMING_PAIRS| per config + the functional pair.
        per_window = len(DEFAULT_CONFIGS) * len(TIMING_PAIRS) + 1
        assert report.comparisons == 4 * per_window

    @pytest.mark.parametrize("scheme", ["cbs", "brr"])
    def test_grid_schemes_agree_too(self, scheme):
        report = run_differential_fuzz(windows=1, seed=0, scheme=scheme,
                                       blocks=6)
        assert not report.failed

    def test_determinism(self):
        first = run_differential_fuzz(windows=2, seed=5, blocks=8)
        second = run_differential_fuzz(windows=2, seed=5, blocks=8)
        assert first.to_dict() == second.to_dict()

    def test_format_reports_agreement(self):
        report = run_differential_fuzz(windows=1, seed=0, blocks=6)
        assert "0 divergences" in format_fuzz(report)


class TestKnownDivergenceSelfTest:
    def test_injected_fault_is_detected_and_shrunk(self):
        seed = _seed_with_brr()

        def fault(path, source, payload):
            # A content-dependent fault: the loop kernel "miscounts"
            # cycles whenever the program contains a brr block, so the
            # minimal reproducer must retain at least one.
            if path == "loop" and "brr 1/" in source:
                payload = dict(payload, cycles=payload["cycles"] + 7)
            return payload

        report = run_differential_fuzz(windows=1, seed=seed, blocks=10,
                                       fault=fault)
        assert report.failed
        comparisons = {d.comparison for d in report.divergences}
        assert comparisons == {f"{name}:loop-vs-golden"
                               for name, _ in DEFAULT_CONFIGS}
        shrunk = [d for d in report.divergences
                  if d.shrunk_source is not None]
        assert shrunk
        divergence = shrunk[0]
        assert divergence.fields == ["cycles"]
        assert divergence.shrunk_blocks < divergence.blocks
        # The minimal program still triggers the fault's content hook.
        assert "brr 1/" in divergence.shrunk_source

    def test_functional_fault_hits_trap_comparison(self):
        def fault(path, source, payload):
            if path == "functional:trap":
                payload = dict(payload, checksum=payload["checksum"] ^ 1)
            return payload

        report = run_differential_fuzz(windows=1, seed=0, blocks=8,
                                       shrink=False, fault=fault)
        assert report.failed
        assert (report.divergences[0].comparison
                == "functional:trap-vs-native")
        assert report.divergences[0].fields == ["checksum"]
        assert report.divergences[0].shrunk_source is None

    def test_report_round_trips_through_json(self):
        def fault(path, source, payload):
            if path == "vector":
                payload = dict(payload, cycles=payload["cycles"] + 1)
            return payload

        report = run_differential_fuzz(windows=1, seed=1, blocks=6,
                                       shrink=False, fault=fault)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["failed"] is True
        assert document["divergences"][0]["details"]["cycles"][0] != \
            document["divergences"][0]["details"]["cycles"][1]
        assert "FAIL" in format_fuzz(report)


class TestServeDiff:
    """``serve_diff=True``: an ephemeral ``repro serve`` instance must
    answer every fuzzed window byte-for-byte like the local façade."""

    @pytest.fixture(autouse=True)
    def _hermetic_cache(self, tmp_path, monkeypatch):
        # The ephemeral server builds a default engine; keep its cache
        # out of the real ~/.cache/repro.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_served_windows_match_local_byte_for_byte(self):
        report = run_differential_fuzz(windows=2, seed=0, blocks=6,
                                       serve_diff=True)
        assert not report.failed
        assert report.serve_checked == 2
        assert ", 2 served-vs-local" in format_fuzz(report)

    def test_serve_diff_defaults_off(self):
        report = run_differential_fuzz(windows=1, seed=0, blocks=6)
        assert report.serve_checked == 0
        assert "served-vs-local" not in format_fuzz(report)

    def test_local_perturbation_is_detected_and_shrunk(self):
        def serve_fault(window_seed, blocks, body):
            # Corrupt the *local* reference: the harness must notice
            # the served body no longer matches, at every block count.
            return body.replace(b'"failed"', b'"fialed"')

        report = run_differential_fuzz(windows=1, seed=0, blocks=6,
                                       serve_diff=True,
                                       serve_fault=serve_fault)
        assert report.failed
        divergence = report.divergences[-1]
        assert divergence.comparison == "serve:served-vs-local"
        assert divergence.fields == ["body"]
        served, local = divergence.details["body"]
        assert served != local
        assert served.startswith("sha256:")
        # ddmin shrank the block budget to the 1-minimal reproducer.
        assert divergence.shrunk_blocks == 1

    def test_report_serialises_the_serve_counter(self):
        report = run_differential_fuzz(windows=1, seed=0, blocks=6,
                                       serve_diff=True)
        document = json.loads(json.dumps(report.to_dict()))
        assert document["serve_checked"] == 1
        assert document["failed"] is False
