"""The :class:`ExperimentEngine`: cached, parallel, fault-tolerant
window execution.

Experiments declare their work as a list of
:class:`~repro.engine.spec.WindowSpec`s and reduce the returned
payloads; the engine owns everything in between:

* **cache** — each spec's digest is looked up in the content-addressed
  :class:`~repro.engine.cache.ResultCache` before any simulation runs;
  completed windows are durably cached the moment they finish, which
  is what makes interrupted runs resumable (``repro resume``);
* **traces** — timed windows record/replay their functional streams
  through the engine's :class:`~repro.engine.tracestore.TraceStore`
  (keyed by the spec's functional projection), so all timing-config
  variations of one window pay a single functional execution;
* **fan-out** — cache misses execute on a ``ProcessPoolExecutor``
  (``jobs`` workers) via ``submit`` + ``wait``, or, with ``jobs=1``,
  serially in spec order in the calling process — the deterministic
  fallback that reproduces the seed code's execution order exactly;
* **fault tolerance** — a crashed worker (``BrokenProcessPool``), a
  pickling error, or a window that exceeds the per-window
  :attr:`~repro.engine.config.EngineConfig.timeout` is retried with
  exponential backoff on a rebuilt pool; when the budget runs out the
  :attr:`~repro.engine.config.EngineConfig.failure_policy` decides
  between raising and returning a typed :class:`WindowFailure`
  placeholder so reducers can degrade gracefully;
* **observability** — every window (hit, miss, or failure) is logged
  to the engine's :class:`~repro.engine.artifacts.RunRecorder`,
  including its attempt count and trace-store usage.

Windows are pure functions of their specs, so hit-vs-miss,
record-vs-replay, serial-vs-parallel and fault-vs-clean execution
cannot change results, only wall time; ``tests/test_engine.py`` and
``tests/test_engine_faults.py`` pin that property.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
import warnings
from collections import deque
from concurrent import futures
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..timing.fastpath import (
    fastpath_mode,
    fastpath_override,
    normalize_fast_mode,
)
from . import shm_pages
from .artifacts import RunRecorder, WindowRecord, completed_keys, read_run_log
from .cache import ResultCache, cache_enabled_by_env
from .config import EngineConfig
from .faults import InjectedWorkerFault, fault_mode_from_env, maybe_inject
from .integrity import ValidationSettings, validation_override
from .spec import WindowSpec
from .tracestore import (
    TraceStore,
    active_store,
    consume_trace_info,
    default_trace_dir,
    functional_key,
    trace_enabled_by_env,
)


def default_jobs() -> int:
    """``REPRO_JOBS`` (default 1: the deterministic serial backend)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


class WindowTimeout(TimeoutError):
    """A pool window exceeded the configured per-window timeout."""


#: Failure classes worth retrying: the window itself is presumed fine,
#: the *execution* was the casualty (crashed/hung worker, transport
#: error, injected fault).  Anything else is a programming error and
#: propagates (or is skipped) without burning retries.
_TRANSIENT_ERRORS = (
    InjectedWorkerFault,
    BrokenExecutor,          # includes BrokenProcessPool
    futures.TimeoutError,
    TimeoutError,            # includes WindowTimeout
    pickle.PicklingError,
    EOFError,
)


@dataclass(frozen=True)
class WindowFailure:
    """Typed placeholder for a window abandoned under ``skip`` policy.

    Reducers receive it in place of the payload dict; they can test
    :func:`is_failure` (or duck-type via :meth:`get`, which answers
    ``None`` for every payload field) and degrade gracefully instead
    of aborting the whole figure.
    """

    key: str
    kind: str
    label: str
    error: str
    attempts: int
    failed: bool = True

    def get(self, name: str, default: Any = None) -> Any:
        """Dict-compatible accessor: a failure carries no payload."""
        return self.to_dict().get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def is_failure(payload: Any) -> bool:
    """True when an engine result is a :class:`WindowFailure`."""
    return isinstance(payload, WindowFailure)


def _default_cell_value(payloads: Tuple[Any, ...]) -> float:
    """Interim estimator value of one cell for adaptive scheduling:
    total simulated cycles (0 for untimed/failed windows)."""
    return float(sum((payload.get("cycles") or 0) for payload in payloads))


@dataclass
class PlanRun:
    """The result of one planned population execution.

    ``cells`` is the selected subset in population (declaration)
    order; ``payloads`` maps each selected cell id to its payload
    tuple, one payload per spec, in the cell's spec order.  Reducers
    consume this instead of a flat payload list.
    """

    population: Any                      # stats.WindowPopulation
    plan: Optional[Any]                  # stats.SamplingPlan | None
    cells: List[Any]                     # selected stats.Cell objects
    payloads: Dict[str, Tuple[Any, ...]]

    @property
    def windows_population(self) -> int:
        return self.population.n_windows

    @property
    def windows_run(self) -> int:
        return sum(len(cell.specs) for cell in self.cells)

    @property
    def cells_population(self) -> int:
        return self.population.size

    @property
    def cells_run(self) -> int:
        return len(self.cells)

    @property
    def complete(self) -> bool:
        """True when every window of the population executed — the
        condition under which reducers must reproduce the exhaustive
        pipeline byte for byte."""
        return self.windows_run >= self.windows_population

    def cell_payloads(self, cell_id: str) -> Tuple[Any, ...]:
        return self.payloads[cell_id]

    def plan_record(self, value: Optional[Callable[[Tuple[Any, ...]],
                                                   float]] = None
                    ) -> Dict[str, Any]:
        """The JSONL/summary telemetry document for this run: plan
        identity, window accounting and per-stratum CI half-widths."""
        from ..stats.estimators import estimate_mean

        value_fn = value or _default_cell_value
        confidence = self.plan.confidence if self.plan is not None else 0.95
        selected = {cell.id for cell in self.cells}
        strata: Dict[str, Any] = {}
        for stratum, members in self.population.strata().items():
            run_cells = [cell for cell in members if cell.id in selected]
            values = [
                value_fn(self.payloads[cell.id]) for cell in run_cells
                if not any(is_failure(p) for p in self.payloads[cell.id])
            ]
            entry: Dict[str, Any] = {
                "cells_run": len(run_cells),
                "cells_population": len(members),
            }
            if values:
                estimate = estimate_mean(values, population=len(members),
                                         confidence=confidence)
                entry["mean"] = estimate.point
                entry["ci_half_width"] = (
                    None if estimate.half_width == float("inf")
                    else estimate.half_width)
            else:
                entry["mean"] = None
                entry["ci_half_width"] = None
            strata[stratum] = entry
        return {
            "population": self.population.name,
            "plan": None if self.plan is None else self.plan.to_dict(),
            "windows_population": self.windows_population,
            "windows_run": self.windows_run,
            "cells_population": self.cells_population,
            "cells_run": self.cells_run,
            "complete": self.complete,
            "strata": strata,
        }


def _execute(spec: WindowSpec) -> Dict[str, Any]:
    from .windows import run_window

    return run_window(spec.kind, spec.params_dict())


def _pool_execute(item: Tuple[int, Dict[str, Any], Tuple, int]):
    """Top-level worker entry (must be picklable)."""
    index, spec_dict, conf, attempt = item
    (trace_root, trace_enabled, fast, fault_rate, fault_mode,
     integrity, validate_every, validate_policy,
     trace_handles, store_backend, trace_pages, breaker) = conf
    spec = WindowSpec.from_dict(spec_dict)
    started = time.perf_counter()
    maybe_inject(spec.cache_key, attempt, fault_rate, fault_mode,
                 in_worker=True)
    store = TraceStore(trace_root, enabled=trace_enabled, policy=integrity,
                       handles=trace_handles, backend=store_backend,
                       pages=trace_pages, breaker=breaker)
    validation = ValidationSettings(every=validate_every,
                                    policy=validate_policy)
    with fastpath_override(fast), active_store(store), \
            validation_override(validation):
        payload = _execute(spec)
        trace_info = consume_trace_info()
    return (index, payload, time.perf_counter() - started, os.getpid(),
            trace_info)


class ExperimentEngine:
    """Shared execution backend for every experiment in the repo.

    Configuration is one :class:`~repro.engine.config.EngineConfig`;
    the live collaborators (cache, recorder, trace store) and the
    ``executor_factory`` seam stay constructor injection.  The legacy
    scalar kwargs (``jobs=``, ``fast=``) still work but emit a
    :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        recorder: Optional[RunRecorder] = None,
        trace_store: Optional[TraceStore] = None,
        fast: Optional[bool] = None,
        *,
        config: Optional[EngineConfig] = None,
        resume_from: Optional[str] = None,
        executor_factory: Optional[Callable[[int], Any]] = None,
    ) -> None:
        if config is None:
            config = EngineConfig.from_env()
        legacy = {}
        if jobs is not None:
            legacy["jobs"] = max(1, int(jobs))
        if fast is not None:
            legacy["fast"] = fast if isinstance(fast, str) else bool(fast)
        if legacy:
            warnings.warn(
                "ExperimentEngine(jobs=..., fast=...) is deprecated; pass "
                "config=EngineConfig(jobs=..., fast=...) instead",
                DeprecationWarning, stacklevel=2)
            config = config.with_overrides(**legacy)
        if resume_from is not None:
            config = config.with_overrides(resume_from=str(resume_from))
        self.config = config
        self.jobs = (max(1, config.jobs) if config.jobs is not None
                     else default_jobs())
        if cache is None:
            cache = ResultCache(enabled=cache_enabled_by_env(),
                                policy=config.integrity,
                                backend=config.store_backend,
                                breaker=config.breaker)
        self.cache = cache
        if trace_store is None:
            trace_store = TraceStore(default_trace_dir(cache.root),
                                     enabled=trace_enabled_by_env(),
                                     policy=config.integrity,
                                     handles=config.trace_handles,
                                     backend=config.store_backend,
                                     breaker=config.breaker)
        self.trace_store = trace_store
        #: Watchdog settings installed around execution (serial) or
        #: shipped to each pool worker.
        self._validation = ValidationSettings(every=config.validate_every,
                                              policy=config.validate_policy)
        self.recorder = recorder or RunRecorder()
        # Resolved once (to a kernel-mode name: "vector" | "loop" |
        # "off") so pool workers follow the parent's REPRO_FAST /
        # REPRO_FAULT_MODE settings instead of re-reading their own
        # environment.
        self.fast = fastpath_mode() if config.fast is None \
            else normalize_fast_mode(config.fast)
        self._trace_pages = (
            shm_pages.pages_enabled_by_env() if config.trace_pages is None
            else bool(config.trace_pages)) and shm_pages.pages_supported()
        self._fault_mode = fault_mode_from_env()
        self._executor_factory = executor_factory
        #: Keys completed by the run being resumed (empty otherwise).
        self.resume_keys: FrozenSet[str] = self._load_resume_keys()
        #: Windows of *this* run served from cache thanks to the
        #: resumed run having completed them.
        self.resumed = 0

    def _load_resume_keys(self) -> FrozenSet[str]:
        if not self.config.resume_from:
            return frozenset()
        _meta, records = read_run_log(self.config.resume_from)
        return frozenset(completed_keys(records))

    # ------------------------------------------------------------------

    def run(self, specs: Sequence[WindowSpec]) -> List[Dict[str, Any]]:
        """Execute every spec; payloads are returned in spec order."""
        results: List[Optional[Dict[str, Any]]] = [None] * len(specs)
        misses: List[int] = []
        for index, spec in enumerate(specs):
            cached = self.cache.get(spec)
            if cached is not None:
                results[index] = cached
                if spec.cache_key in self.resume_keys:
                    self.resumed += 1
                self._record(spec, cached, cache="hit", wall_s=0.0,
                             worker=None)
            else:
                misses.append(index)

        if misses:
            if self.jobs > 1 and len(misses) > 1:
                self._run_pool(specs, misses, results)
            else:
                self._run_serial(specs, misses, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Plan-driven scheduling: execute a sampled subset of a window
    # population.  Selection is the plan's (deterministic, seeded);
    # execution reuses self.run() unchanged, so caching, retries,
    # fault policies and the ledger apply to sampled runs exactly as
    # to exhaustive ones.

    def run_plan(self, population, plan=None, value=None) -> PlanRun:
        """Execute ``population`` under ``plan`` (see ``docs/sampling.md``).

        ``plan=None`` is the zero-overhead exhaustive path: every cell
        runs, no telemetry is written, and the flattened execution
        order equals ``population.specs()`` — byte-identical to the
        pre-sampling pipeline.  An explicit plan additionally writes a
        ``plan`` record to the JSONL ledger (and the ``--json``
        summary) with windows_run/windows_population and per-stratum
        CI half-widths.  ``adaptive`` plans schedule the tail of their
        budget from interim estimator variance; ``value`` maps one
        cell's payload tuple to the scalar being estimated (default:
        total cycles).
        """
        if plan is not None and plan.mode == "adaptive":
            cells, payloads = self._run_adaptive(population, plan, value)
        else:
            cells = (population.enumerate() if plan is None
                     else plan.select(population))
            payloads = self._run_cells(cells)
        result = PlanRun(population=population, plan=plan, cells=cells,
                         payloads=payloads)
        if plan is not None:
            self.recorder.write_plan(result.plan_record(value))
        return result

    def _run_cells(self, cells) -> Dict[str, Tuple[Any, ...]]:
        """Run every cell's specs in one engine batch; split the flat
        payload list back per cell."""
        specs = [spec for cell in cells for spec in cell.specs]
        flat = self.run(specs)
        payloads: Dict[str, Tuple[Any, ...]] = {}
        position = 0
        for cell in cells:
            payloads[cell.id] = tuple(flat[position:position
                                           + len(cell.specs)])
            position += len(cell.specs)
        return payloads

    def _run_adaptive(self, population, plan, value=None):
        """Variance-driven scheduling: seed every stratum, then spend
        the remaining budget one cell at a time on the stratum whose
        interim confidence interval is widest."""
        from ..stats.estimators import estimate_mean

        value_fn = value or _default_cell_value
        all_cells = population.enumerate()
        budget = plan.target_cells(population.size)
        ranked = {
            stratum: sorted(members,
                            key=lambda c: (plan.rank(c.id), c.id))
            for stratum, members in population.strata().items()
        }
        payloads: Dict[str, Tuple[Any, ...]] = {}

        def run_batch(batch) -> None:
            payloads.update(self._run_cells(
                [cell for cell in batch if cell.id not in payloads]))

        # Seed batch: every mandatory cell plus (up to) two ranked
        # cells per stratum, so each stratum has enough samples for a
        # finite interim interval.
        seeds = [cell for cell in all_cells if cell.mandatory]
        for members in ranked.values():
            seeds.extend([cell for cell in members
                          if not cell.mandatory][:2])
        seen = set()
        seeds = [cell for cell in seeds
                 if not (cell.id in seen or seen.add(cell.id))]
        run_batch(seeds[:budget])

        while len(payloads) < budget:
            next_cell = None
            widest = None
            for stratum, members in ranked.items():
                remaining = [cell for cell in members
                             if cell.id not in payloads]
                if not remaining:
                    continue
                values = [
                    value_fn(payloads[cell.id]) for cell in members
                    if cell.id in payloads
                    and not any(is_failure(p) for p in payloads[cell.id])
                ]
                half_width = (
                    estimate_mean(values, population=len(members),
                                  confidence=plan.confidence).half_width
                    if values else float("inf"))
                if widest is None or half_width > widest:
                    widest = half_width
                    next_cell = remaining[0]
            if next_cell is None:
                break
            run_batch([next_cell])

        selected = [cell for cell in all_cells if cell.id in payloads]
        return selected, payloads

    # ------------------------------------------------------------------
    # Serial backend: in-process, spec order, with the same retry /
    # failure-policy semantics as the pool (timeouts excepted — a
    # window cannot be pre-empted from inside its own process).
    # Windows that share one functional trace and differ only in
    # timing config are scheduled as one batched replay (see
    # :func:`repro.engine.windows.run_window_group`); a batch failure
    # of any kind falls back to the per-window path, which owns
    # retries and the failure policy.

    def _serial_schedule(self, specs: Sequence[WindowSpec],
                         misses: List[int]) -> List[List[int]]:
        """Group miss indices by functional key, in order of each
        group's first appearance; non-batchable kinds stay singletons."""
        from .windows import GROUP_REGISTRY

        groups: Dict[Any, List[int]] = {}
        order: List[Any] = []
        for index in misses:
            spec = specs[index]
            if spec.kind in GROUP_REGISTRY and self.config.fault_rate == 0:
                key = (spec.kind, functional_key(spec.kind,
                                                 spec.params_dict()))
            else:
                # Fault injection is keyed per window/attempt; keep its
                # schedule (and the injection points) exactly as before.
                key = ("solo", index)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(index)
        return [groups[key] for key in order]

    def _run_serial_group(self, specs: Sequence[WindowSpec],
                          members: List[int],
                          results: List[Optional[Dict[str, Any]]]) -> bool:
        """Try one batched replay for a functional-key group; True when
        every member was completed (recorded + cached)."""
        from .windows import run_window_group

        kind = specs[members[0]].kind
        started = time.perf_counter()
        try:
            batch = run_window_group(
                kind, [specs[index].params_dict() for index in members])
        except Exception:
            consume_trace_info()  # drop partial telemetry
            return False  # per-window path re-runs with full retry policy
        if batch is None:
            return False
        wall = (time.perf_counter() - started) / len(members)
        for index, (payload, trace_info) in zip(members, batch):
            results[index] = payload
            self.cache.put(specs[index], payload)
            self._record(specs[index], payload, cache="miss",
                         wall_s=wall, worker=os.getpid(),
                         trace_info=trace_info, attempts=1)
        return True

    def _run_serial(self, specs: Sequence[WindowSpec], misses: List[int],
                    results: List[Optional[Dict[str, Any]]]) -> None:
        with fastpath_override(self.fast), \
                active_store(self.trace_store), \
                validation_override(self._validation):
            for members in self._serial_schedule(specs, misses):
                if len(members) > 1 and self._run_serial_group(
                        specs, members, results):
                    continue
                for index in members:
                    self._run_serial_one(specs[index], index, results)

    def _run_serial_one(self, spec: WindowSpec, index: int,
                        results: List[Optional[Dict[str, Any]]]) -> None:
        attempt = 0
        while True:
            started = time.perf_counter()
            try:
                maybe_inject(spec.cache_key, attempt,
                             self.config.fault_rate,
                             self._fault_mode, in_worker=False)
                payload = _execute(spec)
            except Exception as exc:
                consume_trace_info()  # drop partial telemetry
                if self._on_failure(spec, attempt, exc) == "retry":
                    attempt += 1
                    continue
                results[index] = self._skip(spec, attempt, exc)
                break
            wall = time.perf_counter() - started
            trace_info = consume_trace_info()
            results[index] = payload
            self.cache.put(spec, payload)
            self._record(spec, payload, cache="miss",
                         wall_s=wall, worker=os.getpid(),
                         trace_info=trace_info,
                         attempts=attempt + 1)
            break

    # ------------------------------------------------------------------
    # Pool backend: submit + wait with per-window deadlines.  A broken
    # pool (crashed worker) or an expired deadline (hung worker)
    # requeues the in-flight windows and rebuilds the executor; every
    # completed window is cached immediately, so an interrupt at any
    # point loses at most the windows still in flight.

    def _publish_pages(self, specs: Sequence[WindowSpec],
                       indices: Sequence[int]):
        """Publish shared-memory pages for every already-recorded
        functional trace the given windows will replay; ``None`` when
        pages are disabled or unsupported."""
        from .windows import GROUP_REGISTRY

        if not (self._trace_pages and self.trace_store.enabled):
            return None
        registry = shm_pages.TracePageRegistry()
        seen = set()
        for index in indices:
            spec = specs[index]
            if spec.kind not in GROUP_REGISTRY:
                continue
            key = functional_key(spec.kind, spec.params_dict())
            if key in seen:
                continue
            seen.add(key)
            trace = self.trace_store.load(key)
            if trace is None:
                continue  # first run records in a worker; next run pages
            try:
                registry.publish(key, trace)
            except Exception:
                pass  # pages are an amortisation, never a dependency
        return registry

    def _run_pool(self, specs: Sequence[WindowSpec], misses: List[int],
                  results: List[Optional[Dict[str, Any]]]) -> None:
        cfg = self.config
        pages = self._publish_pages(specs, misses)

        def make_conf():
            return (str(self.trace_store.root), self.trace_store.enabled,
                    self.fast, cfg.fault_rate, self._fault_mode,
                    cfg.integrity, cfg.validate_every, cfg.validate_policy,
                    cfg.trace_handles, cfg.store_backend,
                    pages.names() if pages is not None else None,
                    cfg.breaker)

        worker_conf = make_conf()
        workers = min(self.jobs, len(misses))
        queue = deque((index, 0) for index in misses)
        inflight: Dict[Any, Tuple[int, int, Optional[float]]] = {}
        pool = self._new_pool(workers)
        try:
            while queue or inflight:
                rebuild = False
                while queue and len(inflight) < workers:
                    index, attempt = queue.popleft()
                    item = (index, specs[index].to_dict(), worker_conf,
                            attempt)
                    try:
                        future = pool.submit(_pool_execute, item)
                    except BrokenExecutor:
                        queue.appendleft((index, attempt))
                        rebuild = True
                        break
                    deadline = (None if cfg.timeout is None
                                else time.monotonic() + cfg.timeout)
                    inflight[future] = (index, attempt, deadline)

                if inflight and not rebuild:
                    wait_s = None
                    deadlines = [d for (_, _, d) in inflight.values()
                                 if d is not None]
                    if deadlines:
                        wait_s = max(0.0,
                                     min(deadlines) - time.monotonic())
                    done, _ = futures.wait(
                        list(inflight), timeout=wait_s,
                        return_when=futures.FIRST_COMPLETED)
                    for future in done:
                        index, attempt, _ = inflight.pop(future)
                        try:
                            (_, payload, wall,
                             worker, trace_info) = future.result()
                        except Exception as exc:
                            if isinstance(exc, BrokenExecutor):
                                rebuild = True
                            self._pool_failure(specs[index], index, attempt,
                                               exc, queue, results)
                        else:
                            results[index] = payload
                            self.cache.put(specs[index], payload)
                            self._record(specs[index], payload, cache="miss",
                                         wall_s=wall, worker=worker,
                                         trace_info=trace_info,
                                         attempts=attempt + 1)
                    if cfg.timeout is not None:
                        now = time.monotonic()
                        expired = [f for f, (_, _, d) in inflight.items()
                                   if d is not None and d <= now]
                        for future in expired:
                            index, attempt, _ = inflight.pop(future)
                            future.cancel()
                            # A hung worker cannot be pre-empted through
                            # the executor; abandon the whole pool.
                            rebuild = True
                            self._pool_failure(
                                specs[index], index, attempt,
                                WindowTimeout(
                                    f"window {specs[index].short_key} "
                                    f"exceeded {cfg.timeout}s "
                                    f"(attempt {attempt + 1})"),
                                queue, results)

                if rebuild:
                    for future, (index, attempt, _) in inflight.items():
                        future.cancel()
                        queue.append((index, attempt))
                    inflight.clear()
                    self._teardown_pool(pool)
                    # The dead generation's workers may have held page
                    # attachments; its segments are unlinked here and a
                    # fresh set published for the rebuilt pool, so a
                    # crash can never leak shared memory.
                    if pages is not None:
                        pages.unlink_all()
                        pages = self._publish_pages(
                            specs, [index for index, _ in queue])
                        worker_conf = make_conf()
                    if queue:
                        pool = self._new_pool(min(workers, len(queue)))
        finally:
            self._teardown_pool(pool)
            if pages is not None:
                pages.unlink_all()

    def _new_pool(self, workers: int):
        if self._executor_factory is not None:
            return self._executor_factory(workers)
        return ProcessPoolExecutor(max_workers=max(1, workers))

    @staticmethod
    def _teardown_pool(pool) -> None:
        """Shut a pool down without waiting on (possibly hung) workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # an injected executor without the kwarg
            pool.shutdown(wait=False)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                process.terminate()

    # ------------------------------------------------------------------
    # Failure policy.

    def _on_failure(self, spec: WindowSpec, attempt: int,
                    exc: BaseException) -> str:
        """Decide what a failed attempt becomes: ``"retry"``,
        ``"skip"``, or a raised exception (fail the run)."""
        cfg = self.config
        transient = isinstance(exc, _TRANSIENT_ERRORS)
        if cfg.failure_policy != "raise" and transient \
                and attempt < cfg.retries:
            delay = cfg.backoff * (2 ** attempt)
            if delay > 0:
                time.sleep(delay)
            return "retry"
        if cfg.failure_policy == "skip":
            return "skip"
        raise exc

    def _pool_failure(self, spec: WindowSpec, index: int, attempt: int,
                      exc: BaseException, queue: deque,
                      results: List[Optional[Dict[str, Any]]]) -> None:
        if self._on_failure(spec, attempt, exc) == "retry":
            queue.append((index, attempt + 1))
        else:
            results[index] = self._skip(spec, attempt, exc)

    def _skip(self, spec: WindowSpec, attempt: int,
              exc: BaseException) -> WindowFailure:
        failure = WindowFailure(key=spec.cache_key, kind=spec.kind,
                                label=spec.label(), error=repr(exc),
                                attempts=attempt + 1)
        self._record(spec, failure, cache="failed", wall_s=0.0, worker=None,
                     attempts=attempt + 1, error=failure.error)
        return failure

    # ------------------------------------------------------------------

    def _record(self, spec: WindowSpec, payload: Any,
                cache: str, wall_s: float, worker: Optional[int],
                trace_info: Optional[Dict[str, Any]] = None,
                attempts: Optional[int] = None,
                error: Optional[str] = None) -> None:
        trace_info = trace_info or {}
        if trace_info.get("validation") == "divergence":
            # Typed evidence line next to the window record, so the
            # ledger shows *which* counters the fast path got wrong.
            self.recorder.write_validation({
                "key": spec.cache_key,
                "label": spec.label(),
                "policy": trace_info.get("validation_policy"),
                "mismatches": trace_info.get("validation_mismatches"),
            })
        self.recorder.record(WindowRecord(
            key=spec.cache_key,
            kind=spec.kind,
            label=spec.label(),
            cache=cache,
            wall_s=round(wall_s, 6),
            worker=worker,
            cycles=payload.get("cycles"),
            instructions=payload.get("instructions"),
            ts=time.time(),
            trace=trace_info.get("trace"),
            trace_bytes=trace_info.get("trace_bytes"),
            functional_steps=trace_info.get("functional_steps"),
            timing_path=trace_info.get("timing_path"),
            replay_records_per_s=trace_info.get("replay_records_per_s"),
            attempts=attempts,
            error=error,
            validation=trace_info.get("validation"),
        ))

    def flush_stores(self) -> Dict[str, Dict[str, int]]:
        """Retry failed backend publishes on both stores (graceful
        drain / ``repro serve`` shutdown): pending pushes get one more
        chance to reach the shared corpus before the process exits."""
        return {"results": self.cache.flush(),
                "traces": self.trace_store.flush()}

    def summary(self) -> Dict[str, Any]:
        return dict(self.recorder.summary(), resumed=self.resumed,
                    integrity={"results": self.cache.integrity.as_dict(),
                               "traces": self.trace_store.integrity.as_dict()},
                    stores={"results": self.cache.tier_counters(),
                            "traces": self.trace_store.tier_counters()})


# ----------------------------------------------------------------------
# Module-level default engine: experiments use it unless handed one
# explicitly; the CLI configures it from flags/environment.

_default_engine: Optional[ExperimentEngine] = None


def get_engine() -> ExperimentEngine:
    global _default_engine
    if _default_engine is None:
        _default_engine = ExperimentEngine()
    return _default_engine


def set_engine(engine: Optional[ExperimentEngine]) -> None:
    global _default_engine
    _default_engine = engine


def run_windows(specs: Sequence[WindowSpec],
                engine: Optional[ExperimentEngine] = None
                ) -> List[Dict[str, Any]]:
    """Run specs on ``engine`` (or the process-wide default)."""
    return (engine or get_engine()).run(specs)


def run_population(population, plan=None,
                   engine: Optional[ExperimentEngine] = None,
                   value=None) -> PlanRun:
    """Run a window population under a sampling plan on ``engine``
    (or the process-wide default) — see :meth:`ExperimentEngine.run_plan`."""
    return (engine or get_engine()).run_plan(population, plan=plan,
                                             value=value)
