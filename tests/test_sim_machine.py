"""Tests for the functional simulator."""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.isa.asm import assemble
from repro.isa.instructions import Op
from repro.sim.machine import Halted, Machine, MachineError
from repro.sim.memory import Memory, MemoryError_
from repro.sim.trap import BrrTrapEmulator


def run_program(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    machine.run()
    return machine


class TestMemory:
    def test_word_roundtrip(self):
        mem = Memory(1024)
        mem.store_word(8, 0xDEADBEEF)
        assert mem.load_word(8) == 0xDEADBEEF

    def test_little_endian(self):
        mem = Memory(1024)
        mem.store_word(0, 0x11223344)
        assert [mem.load_byte(i) for i in range(4)] == [0x44, 0x33, 0x22, 0x11]

    def test_byte_masking(self):
        mem = Memory(64)
        mem.store_byte(0, 0x1FF)
        assert mem.load_byte(0) == 0xFF

    def test_bounds_checked(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.load_word(64)
        with pytest.raises(MemoryError_):
            mem.store_byte(-1, 0)

    def test_misaligned_word_rejected(self):
        mem = Memory(64)
        with pytest.raises(MemoryError_):
            mem.load_word(2)

    def test_bulk_bytes(self):
        mem = Memory(64)
        mem.write_bytes(4, b"hello")
        assert mem.read_bytes(4, 5) == b"hello"

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Memory(0)
        with pytest.raises(ValueError):
            Memory(10)

    def test_program_too_large(self):
        mem = Memory(8)
        with pytest.raises(MemoryError_):
            mem.load_program(assemble("nop\nnop\nhalt"))


class TestArithmetic:
    def test_countdown_loop(self):
        machine = run_program(
            """
            li   r1, 5
            li   r2, 0
            loop:
            add  r2, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
            """
        )
        assert machine.regs[2] == 15

    def test_alu_ops(self):
        machine = run_program(
            """
            li  r1, 12
            li  r2, 10
            add r3, r1, r2
            sub r4, r1, r2
            and r5, r1, r2
            or  r6, r1, r2
            xor r7, r1, r2
            mul r8, r1, r2
            halt
            """
        )
        assert machine.regs[3:9] == [22, 2, 8, 14, 6, 120]

    def test_shifts(self):
        machine = run_program(
            """
            li   r1, 3
            shli r2, r1, 4
            shri r3, r2, 2
            li   r4, 2
            shl  r5, r1, r4
            shr  r6, r5, r4
            halt
            """
        )
        assert machine.regs[2] == 48
        assert machine.regs[3] == 12
        assert machine.regs[5] == 12
        assert machine.regs[6] == 3

    def test_wraparound(self):
        machine = run_program(
            """
            li   r1, -1
            addi r1, r1, 2
            halt
            """
        )
        assert machine.regs[1] == 1

    def test_negative_representation(self):
        machine = run_program("li r1, -2\nhalt")
        assert machine.regs[1] == 0xFFFFFFFE

    def test_signed_comparison(self):
        machine = run_program(
            """
            li   r1, -5
            li   r2, 3
            slt  r3, r1, r2
            slt  r4, r2, r1
            slti r5, r1, 0
            halt
            """
        )
        assert machine.regs[3] == 1
        assert machine.regs[4] == 0
        assert machine.regs[5] == 1

    def test_blt_signed(self):
        machine = run_program(
            """
            li   r1, -1
            li   r2, 1
            blt  r1, r2, good
            li   r3, 0
            halt
            good:
            li   r3, 7
            halt
            """
        )
        assert machine.regs[3] == 7


class TestMemoryOps:
    def test_load_store_word(self):
        machine = run_program(
            """
            li  r1, 0x200
            li  r2, 1234
            sw  r2, 0(r1)
            lw  r3, 0(r1)
            halt
            """
        )
        assert machine.regs[3] == 1234

    def test_load_store_byte(self):
        machine = run_program(
            """
            li  r1, 0x300
            li  r2, 0x1AB
            sb  r2, 5(r1)
            lb  r3, 5(r1)
            halt
            """
        )
        assert machine.regs[3] == 0xAB


class TestControlFlow:
    def test_call_return(self):
        machine = run_program(
            """
            li  r1, 1
            jal f
            addi r1, r1, 100
            halt
            f:
            addi r1, r1, 10
            ret
            """
        )
        assert machine.regs[1] == 111

    def test_indirect_jump(self):
        machine = run_program(
            """
            li  r1, dest
            jr  r1
            li  r2, 1
            halt
            dest:
            li  r2, 42
            halt
            """
        )
        assert machine.regs[2] == 42

    def test_brra_always_taken(self):
        machine = run_program(
            """
            brra t
            li r1, 1
            halt
            t: li r1, 9
            halt
            """
        )
        assert machine.regs[1] == 9

    def test_markers_counted(self):
        machine = run_program(
            """
            li r1, 3
            loop:
            marker 5
            addi r1, r1, -1
            bne r1, r0, loop
            marker 6
            halt
            """
        )
        assert machine.marker_counts == {5: 3, 6: 1}

    def test_marker_callbacks(self):
        seen = []
        machine = Machine(assemble("marker 1\nmarker 1\nhalt"))
        machine.on_marker(lambda m, mid, count: seen.append((mid, count)))
        machine.run()
        assert seen == [(1, 1), (1, 2)]

    def test_run_until_marker(self):
        machine = Machine(assemble(
            """
            li r1, 10
            loop:
            marker 2
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            """
        ))
        machine.run_until_marker(2, count=4)
        assert machine.marker_counts[2] == 4
        assert not machine.halted

    def test_run_until_marker_timeout(self):
        machine = Machine(assemble("marker 1\nhalt"))
        with pytest.raises(MachineError):
            machine.run_until_marker(1, count=5)


class TestBrrExecution:
    def test_brr_without_unit_fails(self):
        machine = Machine(assemble("brr 0, t\nt: halt"))
        with pytest.raises(MachineError):
            machine.run()

    def test_brr_hw_counter_every_other(self):
        source = """
            li r1, 8
            li r2, 0
            loop:
            brr 0, hit
            back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            hit:
            addi r2, r2, 1
            jmp back
        """
        machine = Machine(assemble(source), brr_unit=HardwareCounterUnit())
        machine.run()
        assert machine.regs[2] == 4  # every 2nd of 8 iterations

    def test_brr_lfsr_statistics(self):
        source = """
            li r1, 1024
            li r2, 0
            loop:
            brr 1/8, hit
            back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            hit:
            addi r2, r2, 1
            jmp back
        """
        machine = Machine(assemble(source), brr_unit=BranchOnRandomUnit())
        machine.run(max_steps=100_000)
        assert 64 <= machine.regs[2] <= 192  # ~128 expected

    def test_halt_then_step_raises(self):
        machine = Machine(assemble("halt"))
        machine.run()
        with pytest.raises(Halted):
            machine.step()

    def test_run_limit(self):
        machine = Machine(assemble("spin: jmp spin"))
        with pytest.raises(MachineError):
            machine.run(max_steps=100)


class TestTrapEmulation:
    def test_trap_brr_matches_native(self):
        """The SIGILL-emulated program takes exactly the same branches
        as the native one when both read the same LFSR sequence."""
        source = """
            li r1, 256
            li r2, 0
            loop:
            brr 1/4, hit
            back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            hit:
            addi r2, r2, 1
            jmp back
        """
        native = Machine(assemble(source),
                         brr_unit=BranchOnRandomUnit())
        native.run(max_steps=100_000)

        trap_machine = Machine(assemble(source, brr_mode="trap"))
        emulator = BrrTrapEmulator()
        emulator.install(trap_machine)
        trap_machine.run(max_steps=100_000)

        assert trap_machine.regs[2] == native.regs[2]
        assert emulator.traps == 256

    def test_trap_backward_branch(self):
        source = """
            jmp start
            target:
            li r2, 77
            halt
            start:
            li r1, 1
            brr 0, target
            brr 0, target
            halt
        """
        machine = Machine(assemble(source, brr_mode="trap"))
        emulator = BrrTrapEmulator(unit=HardwareCounterUnit(phase=1))
        emulator.install(machine)
        machine.run()
        assert machine.regs[2] == 77

    def test_unhandled_trap_raises(self):
        machine = Machine(assemble("brr 0, t\nt: halt", brr_mode="trap"))
        with pytest.raises(MachineError):
            machine.run()

    def test_trap_record_counts_instret(self):
        machine = Machine(assemble("brr 0, t\nt: halt", brr_mode="trap"))
        BrrTrapEmulator(unit=HardwareCounterUnit(phase=1)).install(machine)
        machine.run()
        # trap + halt = 2 retired instructions.
        assert machine.instret == 2


class TestTracing:
    def test_trace_records(self):
        machine = Machine(assemble(
            """
            li  r1, 0x200
            lw  r2, 0(r1)
            beq r2, r0, skip
            nop
            skip: halt
            """
        ))
        records = list(machine.run_trace())
        assert [r.instr.op for r in records] == [
            Op.LI, Op.LW, Op.BEQ, Op.HALT,
        ]
        assert records[1].mem_addr == 0x200
        assert records[2].taken is True
        assert records[2].next_pc == machine.program.address_of("skip")

    def test_trace_not_taken_branch(self):
        machine = Machine(assemble(
            """
            li  r1, 1
            beq r1, r0, skip
            nop
            skip: halt
            """
        ))
        records = list(machine.run_trace())
        assert records[1].taken is False
        assert records[1].next_pc == records[1].pc + 4

    def test_entry_symbol(self):
        machine = Machine(assemble(
            """
            li r1, 1
            halt
            main:
            li r1, 2
            halt
            """
        ), entry="main")
        machine.run()
        assert machine.regs[1] == 2
