"""Vectorised sample-position generation for large accuracy sweeps.

The Section 4 experiments compare profiles over hundreds of millions
of method invocations.  Rather than asking a sampler object about
every event, the experiment harness generates the *positions* at which
each framework samples:

* fixed-interval counters sample an arithmetic progression;
* branch-on-random decisions come from a tight bit-masked LFSR loop
  (the decision "AND of the selected bits" is one mask compare), and
  the positions are the indices of taken decisions.

Equivalence with the event-level samplers is covered by tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.condition import ConditionUnit
from ..core.lfsr import Lfsr, _popcount


def periodic_positions(n: int, interval: int, first: Optional[int] = None) -> np.ndarray:
    """Sample positions of a fixed-interval counter over ``n`` events.

    ``first`` is the index of the first sample; both counter samplers
    default to ``interval - 1`` (the counter starts at the sampling
    interval and fires when it reaches zero).
    """
    if n < 0:
        raise ValueError("event count must be non-negative")
    if interval < 1:
        raise ValueError("interval must be >= 1")
    if first is None:
        first = interval - 1
    if first < 0:
        raise ValueError("first sample index must be non-negative")
    return np.arange(first, n, interval, dtype=np.int64)


def brr_decision_array(
    n: int,
    field: int,
    width: int = 16,
    taps: Optional[Sequence[int]] = None,
    seed: int = 1,
    policy="spaced",
) -> np.ndarray:
    """Taken/not-taken decisions of ``n`` consecutive branch-on-randoms.

    Functionally identical to resolving ``n`` times through
    :class:`~repro.core.brr.BranchOnRandomUnit`, but implemented as a
    masked shift loop: the AND tree's output is 1 exactly when every
    selected LFSR bit is set, i.e. ``state & select_mask ==
    select_mask``.
    """
    if n < 0:
        raise ValueError("decision count must be non-negative")
    # Build the real hardware model once to validate the configuration
    # and derive the masks.
    lfsr = Lfsr(width, taps=taps, seed=seed)
    unit = ConditionUnit(lfsr, policy)
    select_mask = 0
    for position in unit.bit_selection(field):
        select_mask |= 1 << position
    tap_mask = 0
    for position in lfsr._tap_bits:
        tap_mask |= 1 << position
    top = width - 1
    state = lfsr.state
    out = np.empty(n, dtype=bool)
    for index in range(n):
        out[index] = (state & select_mask) == select_mask
        feedback = _popcount(state & tap_mask) & 1
        state = (state >> 1) | (feedback << top)
    return out


def brr_positions(
    n: int,
    field: int,
    width: int = 16,
    taps: Optional[Sequence[int]] = None,
    seed: int = 1,
    policy="spaced",
) -> np.ndarray:
    """Positions at which branch-on-random samples over ``n`` events."""
    return np.flatnonzero(
        brr_decision_array(n, field, width=width, taps=taps, seed=seed,
                           policy=policy)
    ).astype(np.int64)


class CounterPositionStream:
    """Chunked arithmetic-progression positions of a fixed-interval
    counter; state carries across chunks so multi-hundred-megabyte
    event streams can be processed piecewise."""

    def __init__(self, interval: int, first: Optional[int] = None) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self._next = interval - 1 if first is None else first
        if self._next < 0:
            raise ValueError("first sample index must be non-negative")

    def take(self, n: int) -> np.ndarray:
        """Sample positions within the next ``n`` events (chunk-local
        indices)."""
        if n < 0:
            raise ValueError("chunk size must be non-negative")
        positions = np.arange(self._next, n, self.interval, dtype=np.int64)
        if positions.size:
            self._next = int(positions[-1]) + self.interval - n
        else:
            self._next -= n
        return positions


class BrrPositionStream:
    """Chunked branch-on-random positions with persistent LFSR state."""

    def __init__(
        self,
        field: int,
        width: int = 16,
        taps: Optional[Sequence[int]] = None,
        seed: int = 1,
        policy="spaced",
    ) -> None:
        lfsr = Lfsr(width, taps=taps, seed=seed)
        unit = ConditionUnit(lfsr, policy)
        self._select_mask = 0
        for position in unit.bit_selection(field):
            self._select_mask |= 1 << position
        self._tap_mask = 0
        for position in lfsr._tap_bits:
            self._tap_mask |= 1 << position
        self._top = width - 1
        self._state = lfsr.state

    def take(self, n: int) -> np.ndarray:
        """Sample positions within the next ``n`` events."""
        if n < 0:
            raise ValueError("chunk size must be non-negative")
        select_mask, tap_mask, top = self._select_mask, self._tap_mask, self._top
        state = self._state
        out = np.empty(n, dtype=bool)
        for index in range(n):
            out[index] = (state & select_mask) == select_mask
            feedback = _popcount(state & tap_mask) & 1
            state = (state >> 1) | (feedback << top)
        self._state = state
        return np.flatnonzero(out).astype(np.int64)


def profile_counts(events: np.ndarray, positions: Optional[np.ndarray],
                   num_keys: Optional[int] = None) -> np.ndarray:
    """Per-method sample counts over an int event array.

    ``positions=None`` gives the full profile.
    """
    if num_keys is None:
        num_keys = int(events.max()) + 1 if events.size else 0
    selected = events if positions is None else events[positions]
    return np.bincount(selected, minlength=num_keys)


def overlap_from_counts(full: np.ndarray, sampled: np.ndarray) -> float:
    """Vectorised Section 4.1 overlap accuracy (0..100)."""
    full_total = full.sum()
    if full_total == 0:
        raise ValueError("full profile is empty")
    sampled_total = sampled.sum()
    if sampled_total == 0:
        return 0.0
    length = max(len(full), len(sampled))
    f = np.zeros(length, dtype=np.float64)
    s = np.zeros(length, dtype=np.float64)
    f[:len(full)] = full / full_total
    s[:len(sampled)] = sampled / sampled_total
    return 100.0 * float(np.minimum(f, s).sum())
