"""Hardware cost model for branch-on-random (Section 3.3 summary).

The paper estimates that branch-on-random costs "roughly 20 bits of
state (for the LFSR) and less than 100 gates" on a single-issue
machine, growing to "less than 100 bits of state and less than 400
gates" for a 4-wide superscalar with per-decoder replication.  This
module itemises that budget:

1. the LFSR flip-flops (the only state),
2. the feedback XOR network,
3. the 15 AND gates, one of each size from 2 to 16 inputs,
4. the 16-input mux driven by the instruction's freq field,
5. control logic (decoder recognition, redirect overload, BTB-insert
   suppression).

Two gate accountings are reported: ``macro`` counts each AND/mux as a
single library cell (the accounting under which the paper's <100-gate
claim holds) and ``two_input`` decomposes everything into 2-input
equivalents for a conservative upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .condition import FREQ_FIELD_VALUES
from .taps import RECOMMENDED_WIDTH, default_taps

#: Fixed allowance for decode-recognition and BTB-suppression control.
CONTROL_GATES = 10


@dataclass(frozen=True)
class CostEstimate:
    """Itemised hardware budget for one branch-on-random design."""

    lfsr_width: int
    decode_width: int
    replicated: bool
    lfsr_count: int
    state_bits: int
    xor_gates: int
    and_gates_macro: int
    and_gates_two_input: int
    mux_gates_macro: int
    mux_gates_two_input: int
    control_gates: int
    arbitration_gates: int = 0

    @property
    def gates_macro(self) -> int:
        """Total gates with ANDs and muxes counted as single cells."""
        return (
            self.xor_gates
            + self.and_gates_macro
            + self.mux_gates_macro
            + self.control_gates
            + self.arbitration_gates
        )

    @property
    def gates_two_input(self) -> int:
        """Total 2-input-equivalent gates (conservative bound)."""
        return (
            self.xor_gates
            + self.and_gates_two_input
            + self.mux_gates_two_input
            + self.control_gates
            + self.arbitration_gates
        )

    def rows(self) -> Tuple[Tuple[str, int], ...]:
        """Budget lines for report printing."""
        return (
            ("state bits (LFSR flip-flops)", self.state_bits),
            ("feedback XOR gates", self.xor_gates),
            ("AND gates (macro)", self.and_gates_macro),
            ("mux gates (macro)", self.mux_gates_macro),
            ("control gates", self.control_gates),
            ("arbitration gates", self.arbitration_gates),
            ("total gates (macro)", self.gates_macro),
            ("total gates (2-input equiv.)", self.gates_two_input),
        )


def estimate_cost(
    lfsr_width: int = RECOMMENDED_WIDTH,
    decode_width: int = 1,
    replicated: bool = True,
    taps: Optional[Sequence[int]] = None,
    freq_values: int = FREQ_FIELD_VALUES,
) -> CostEstimate:
    """Estimate the hardware budget for a branch-on-random design.

    ``replicated`` chooses between per-decoder LFSRs (state and logic
    scale with the decode width) and a single shared LFSR with a
    priority encoder arbitrating among decoders (footnote 3).
    """
    if lfsr_width < freq_values:
        raise ValueError(
            f"LFSR width {lfsr_width} cannot feed a {freq_values}-input "
            "AND tree"
        )
    if decode_width < 1:
        raise ValueError("decode width must be >= 1")
    tap_set = tuple(taps) if taps is not None else default_taps(lfsr_width)
    lfsr_count = decode_width if replicated else 1
    # Frequencies 2..freq_values need an AND gate; 50% is a raw bit.
    and_sizes = range(2, freq_values + 1)
    and_macro = len(list(and_sizes))
    and_two_input = sum(size - 1 for size in range(2, freq_values + 1))
    # A v-input mux decomposes into v-1 two-to-one muxes.
    mux_macro = 1
    mux_two_input = freq_values - 1
    # The datapath (AND tree + mux + control) exists per decoder that
    # can resolve a branch-on-random; the LFSR may be shared.
    datapaths = decode_width
    arbitration = 0 if replicated or decode_width == 1 else 2 * decode_width
    return CostEstimate(
        lfsr_width=lfsr_width,
        decode_width=decode_width,
        replicated=replicated,
        lfsr_count=lfsr_count,
        state_bits=lfsr_width * lfsr_count,
        xor_gates=(len(tap_set) - 1) * lfsr_count,
        and_gates_macro=and_macro * datapaths,
        and_gates_two_input=and_two_input * datapaths,
        mux_gates_macro=mux_macro * datapaths,
        mux_gates_two_input=mux_two_input * datapaths,
        control_gates=CONTROL_GATES * datapaths,
        arbitration_gates=arbitration,
    )


def paper_design_points() -> Tuple[CostEstimate, CostEstimate]:
    """The two design points quoted in the paper's summary.

    Returns the single-issue estimate (claimed ~20 bits, <100 gates)
    and the 4-wide replicated estimate (claimed <100 bits, <400 gates).
    """
    single = estimate_cost(lfsr_width=20, decode_width=1)
    wide = estimate_cost(lfsr_width=20, decode_width=4, replicated=True)
    return single, wide


def claims_hold() -> bool:
    """Do the paper's headline cost claims hold under this model?"""
    single, wide = paper_design_points()
    return (
        single.state_bits <= 20
        and single.gates_macro < 100
        and wide.state_bits <= 100
        and wide.gates_macro < 400
    )
