"""Tests for vectorised sample-position generation (fast path)."""

import numpy as np
import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.sampling import (
    BrrSampler,
    SoftwareCounterSampler,
    brr_decision_array,
    brr_positions,
    overlap_from_counts,
    periodic_positions,
    profile_counts,
)


class TestPeriodicPositions:
    def test_default_first(self):
        positions = periodic_positions(20, 4)
        assert positions.tolist() == [3, 7, 11, 15, 19]

    def test_explicit_first(self):
        assert periodic_positions(10, 4, first=0).tolist() == [0, 4, 8]

    def test_matches_event_sampler(self):
        n, interval = 500, 16
        sampler = SoftwareCounterSampler(interval)
        expected = [i for i in range(n) if sampler.should_sample()]
        assert periodic_positions(n, interval).tolist() == expected

    def test_empty(self):
        assert periodic_positions(0, 4).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_positions(-1, 4)
        with pytest.raises(ValueError):
            periodic_positions(10, 0)
        with pytest.raises(ValueError):
            periodic_positions(10, 4, first=-1)


class TestBrrDecisions:
    def test_matches_unit_resolutions(self):
        """The masked fast loop must be bit-identical to the hardware
        model resolving the same field from the same seed."""
        n, field, seed = 2000, 3, 0xBEEF
        unit = BranchOnRandomUnit(Lfsr(16, seed=seed), policy="spaced")
        expected = [unit.resolve(field) for _ in range(n)]
        fast = brr_decision_array(n, field, width=16, seed=seed)
        assert fast.tolist() == expected

    def test_matches_unit_contiguous_policy(self):
        n, field, seed = 1000, 5, 77
        unit = BranchOnRandomUnit(Lfsr(20, seed=seed), policy="contiguous")
        expected = [unit.resolve(field) for _ in range(n)]
        fast = brr_decision_array(n, field, width=20, seed=seed,
                                  policy="contiguous")
        assert fast.tolist() == expected

    def test_positions_are_indices_of_taken(self):
        decisions = brr_decision_array(500, 2, seed=3)
        positions = brr_positions(500, 2, seed=3)
        assert positions.tolist() == np.flatnonzero(decisions).tolist()

    def test_frequency_convergence(self):
        positions = brr_positions(1 << 16, 4)  # 1/32
        rate = positions.size / (1 << 16)
        assert abs(rate - 1 / 32) < 0.004

    def test_custom_taps(self):
        positions = brr_positions(10_000, 3, width=32,
                                  taps=(32, 31, 30, 10), seed=0x1234)
        assert 0 < positions.size < 10_000

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            brr_decision_array(-1, 0)

    def test_sampler_equivalence(self):
        sampler = BrrSampler(field=2, unit=BranchOnRandomUnit(Lfsr(16, seed=9)))
        expected = [i for i in range(300) if sampler.should_sample()]
        assert brr_positions(300, 2, width=16, seed=9).tolist() == expected


class TestProfileCounts:
    def test_full_profile(self):
        events = np.array([0, 1, 1, 2, 2, 2])
        assert profile_counts(events, None).tolist() == [1, 2, 3]

    def test_sampled_profile(self):
        events = np.array([0, 1, 1, 2, 2, 2])
        counts = profile_counts(events, np.array([0, 3, 5]))
        assert counts.tolist() == [1, 0, 2]

    def test_num_keys_padding(self):
        events = np.array([0, 1])
        assert profile_counts(events, None, num_keys=5).tolist() == [1, 1, 0, 0, 0]

    def test_empty_events(self):
        counts = profile_counts(np.array([], dtype=np.int64), None)
        assert counts.size == 0


class TestOverlapFromCounts:
    def test_matches_object_version(self):
        from repro.profiles import Profile, overlap_accuracy

        full = np.array([50, 50, 0])
        sampled = np.array([60, 40, 0])
        fast = overlap_from_counts(full, sampled)
        slow = overlap_accuracy(Profile.from_array(full),
                                Profile.from_array(sampled))
        assert fast == pytest.approx(slow)

    def test_length_mismatch_padded(self):
        assert overlap_from_counts(np.array([10]), np.array([5, 5])) == \
            pytest.approx(50.0)

    def test_empty_sampled(self):
        assert overlap_from_counts(np.array([1, 2]), np.array([0, 0])) == 0.0

    def test_empty_full_rejected(self):
        with pytest.raises(ValueError):
            overlap_from_counts(np.array([0]), np.array([1]))

    def test_perfect_sampling(self):
        full = np.array([100, 300, 600])
        assert overlap_from_counts(full, full // 100) == pytest.approx(100.0)
