"""Assembled program images."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instructions import WORD, Instruction, decode


@dataclass
class Program:
    """An assembled code image.

    ``words`` are the raw 32-bit instruction words laid out from
    ``base`` (a byte address, word aligned).  ``symbols`` maps label
    names to byte addresses.  ``source_map`` maps a word index back to
    the originating assembly line for diagnostics.
    """

    words: List[int]
    base: int = 0
    symbols: Dict[str, int] = field(default_factory=dict)
    source_map: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base % WORD:
            raise ValueError(f"base address {self.base:#x} is not word aligned")

    def __len__(self) -> int:
        return len(self.words)

    @property
    def size_bytes(self) -> int:
        return len(self.words) * WORD

    @property
    def end(self) -> int:
        """First byte address past the image."""
        return self.base + self.size_bytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def word_at(self, addr: int) -> int:
        """Raw instruction word at a byte address."""
        if not self.contains(addr):
            raise IndexError(f"address {addr:#x} outside program image")
        if addr % WORD:
            raise ValueError(f"misaligned instruction address {addr:#x}")
        return self.words[(addr - self.base) // WORD]

    def decode_at(self, addr: int) -> Instruction:
        """Decoded instruction at a byte address (may raise
        :class:`~repro.isa.instructions.InvalidOpcodeError`)."""
        return decode(self.word_at(addr), pc=addr)

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise KeyError(f"no such label: {label!r}") from None

    def source_for(self, addr: int) -> Optional[str]:
        """Assembly source line for the word at ``addr``, if recorded."""
        return self.source_map.get((addr - self.base) // WORD)
