"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro figure9 [--scale 0.05]
    python -m repro figure10 [--scale 0.05]
    python -m repro figure12 [--jvm-scale 3]
    python -m repro figure13 [--chars 4000]
    python -m repro figure14 [--chars 4000]
    python -m repro figure2  [--chars 4000]
    python -m repro sensitivity [--scale 0.02]
    python -m repro cost
    python -m repro scorecard  # PASS/FAIL every headline claim (~1 min)
    python -m repro all      # everything (several minutes)
"""

from __future__ import annotations

import argparse
import contextlib
import io
import pathlib
import sys
import time
from typing import List, Optional


def _figure9(args) -> None:
    from .experiments import figure9, format_accuracy_rows

    rows = figure9(scale=args.scale)
    print(format_accuracy_rows(
        rows, f"Figure 9: accuracy at 2^10 (scale {args.scale})"))


def _figure10(args) -> None:
    from .experiments import figure10, format_accuracy_rows

    rows = figure10(scale=args.scale)
    print(format_accuracy_rows(
        rows, f"Figure 10: accuracy at 2^13 (scale {args.scale})"))


def _figure12(args) -> None:
    from .experiments import figure12, format_fig12_rows

    print(format_fig12_rows(figure12(scale=args.jvm_scale)))


def _sweep(args):
    from .experiments import microbench_sweep

    return microbench_sweep(n_chars=args.chars)


def _figure13(args) -> None:
    from .experiments import format_figure13

    print(format_figure13(_sweep(args)))


def _figure14(args) -> None:
    from .experiments import format_figure14

    print(format_figure14(_sweep(args)))


def _figure2(args) -> None:
    from .analysis import decompose, format_decomposition

    sweep = _sweep(args)
    for kind in ("cbs", "brr"):
        print(format_decomposition(decompose(sweep, kind, "full-dup")))


def _sensitivity(args) -> None:
    from .experiments import (
        bit_policy_sensitivity,
        format_sensitivity_result,
        seed_noise_baseline,
        taps_sensitivity,
    )

    print(format_sensitivity_result(taps_sensitivity(scale=args.scale)))
    print(format_sensitivity_result(bit_policy_sensitivity(scale=args.scale)))
    noise = seed_noise_baseline(scale=args.scale)
    print(f"seed-variation baseline: mean={noise['mean']:.2f}% "
          f"std={noise['std']:.3f}%")


def _cost(args) -> None:
    from .experiments import format_cost_table

    print(format_cost_table())


def _scorecard(args) -> None:
    from .experiments import format_scorecard, run_scorecard

    print(format_scorecard(run_scorecard(quick=args.scale <= 0.02)))


COMMANDS = {
    "figure9": _figure9,
    "figure10": _figure10,
    "figure12": _figure12,
    "figure13": _figure13,
    "figure14": _figure14,
    "figure2": _figure2,
    "sensitivity": _sensitivity,
    "cost": _cost,
    "scorecard": _scorecard,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Branch-on-Random (CGO 2008) evaluation.",
    )
    parser.add_argument("command", choices=list(COMMANDS) + ["all"],
                        help="which figure/table to regenerate")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's invocation counts "
                             "for accuracy experiments (default 0.05)")
    parser.add_argument("--jvm-scale", type=float, default=3.0,
                        help="outer-loop multiplier for Figure 12")
    parser.add_argument("--chars", type=int, default=4000,
                        help="microbenchmark characters for Figures 13/14/2")
    parser.add_argument("--out", type=str, default=None,
                        help="directory to also write each figure's table "
                             "into (<out>/<command>.txt)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = list(COMMANDS) if args.command == "all" else [args.command]
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in commands:
        started = time.time()
        if out_dir is not None:
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                COMMANDS[name](args)
            text = buffer.getvalue()
            (out_dir / f"{name}.txt").write_text(text)
            sys.stdout.write(text)
        else:
            COMMANDS[name](args)
        print(f"[{name} finished in {time.time() - started:.1f}s]\n",
              file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - module smoke-tested via main()
    raise SystemExit(main())
