"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        args = parser.parse_args(["figure9", "--scale", "0.01"])
        assert args.command == "figure9"
        assert args.scale == 0.01

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["cost"])
        assert args.scale == 0.05
        assert args.jvm_scale == 3.0
        assert args.chars == 4000


class TestCommands:
    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "hardware budget" in out
        assert "HOLD" in out

    def test_figure9_small(self, capsys):
        assert main(["figure9", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "jython" in out and "average" in out

    def test_figure13_small(self, capsys):
        assert main(["figure13", "--chars", "600"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "brr" in out and "cbs" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--chars", "600"]) == 0
        out = capsys.readouterr().out
        assert "fixed (framework) cost floor" in out
