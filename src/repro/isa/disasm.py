"""Disassembler: decoded instructions and raw words back to text."""

from __future__ import annotations

from typing import Optional

from .instructions import (
    WORD,
    Format,
    Instruction,
    InvalidOpcodeError,
    decode,
)
from .program import Program
from ..core.condition import interval_of_field


def format_instruction(instr: Instruction, addr: Optional[int] = None) -> str:
    """Render one instruction as assembler text.

    When ``addr`` is given, PC-relative targets are rendered as
    absolute hexadecimal byte addresses; otherwise as ``.+N`` word
    offsets.
    """
    name = instr.op.name.lower()
    fmt = instr.format

    def target() -> str:
        if addr is None:
            return f".{instr.imm:+d}"
        return f"{addr + WORD + instr.imm * WORD:#x}"

    if fmt is Format.R:
        return f"{name} r{instr.rd}, r{instr.ra}, r{instr.rb}"
    if fmt is Format.I:
        return f"{name} r{instr.rd}, r{instr.ra}, {instr.imm}"
    if fmt is Format.LI:
        return f"{name} r{instr.rd}, {instr.imm}"
    if fmt is Format.MEM:
        return f"{name} r{instr.rd}, {instr.imm}(r{instr.ra})"
    if fmt is Format.BRANCH:
        return f"{name} r{instr.ra}, r{instr.rb}, {target()}"
    if fmt is Format.JUMP:
        return f"{name} {target()}"
    if fmt is Format.JR:
        return f"{name} r{instr.ra}"
    if fmt is Format.BRR:
        return f"{name} 1/{interval_of_field(instr.freq)}, {target()}"
    if fmt is Format.MARKER:
        return f"{name} {instr.imm}"
    return name


def disassemble_word(word: int, addr: Optional[int] = None) -> str:
    """Disassemble one raw word; unknown opcodes render as ``.word``."""
    try:
        return format_instruction(decode(word, pc=addr), addr)
    except InvalidOpcodeError:
        return f".word {word:#010x}"


def disassemble(program: Program) -> str:
    """Full listing of a program, one line per word, with labels."""
    by_addr = {}
    for label, label_addr in program.symbols.items():
        by_addr.setdefault(label_addr, []).append(label)
    lines = []
    for index, word in enumerate(program.words):
        addr = program.base + index * WORD
        for label in sorted(by_addr.get(addr, [])):
            lines.append(f"{label}:")
        lines.append(f"  {addr:#06x}:  {disassemble_word(word, addr)}")
    return "\n".join(lines)
