"""Control-flow-graph IR for instrumented code generation.

The Arnold-Ryder framework (Section 4.1/5.2) is a compile-time
transformation over the compiler's CFG.  This module provides that
CFG: basic blocks of straight-line assembly with explicit terminators,
instrumentation attachments on blocks, backedge identification, and
lowering to assembler text for the reproduction ISA.

Blocks carry two instrumentation-related attributes consumed by the
transforms in :mod:`repro.instrument.arnold_ryder`:

``site_id`` / ``site_lines``
    An instrumentation site anchored at the top of the block — e.g. a
    method-entry invocation counter or an edge-profile counter — as raw
    assembly lines.  The transforms decide where this code ends up
    (inline, out of line, or in the duplicated body) and under which
    sampling regime it runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Set, Tuple


class CfgError(Exception):
    """Malformed control-flow graph."""


@dataclass
class Terminator:
    """Block-ending control flow.

    ``kind`` is one of:

    - ``"fall"`` — fall through to ``target``;
    - ``"jump"`` — unconditional direct jump to ``target``;
    - ``"cond"`` — conditional branch ``op ra, rb`` to ``taken``,
      falling through to ``target``;
    - ``"brr"`` — branch-on-random at frequency ``freq`` (assembler
      frequency syntax) to ``taken``, falling through to ``target``;
    - ``"brra"`` — the 100%-taken branch-on-random to ``target``
      (footnote 4: an unconditional jump that stays out of the BTB);
    - ``"ret"`` — function return (``jr lr``);
    - ``"halt"`` — stop the machine.
    """

    kind: str
    target: Optional[str] = None
    op: Optional[str] = None
    ra: Optional[str] = None
    rb: Optional[str] = None
    taken: Optional[str] = None
    freq: Optional[str] = None

    KINDS = ("fall", "jump", "cond", "brr", "brra", "ret", "halt")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise CfgError(f"unknown terminator kind {self.kind!r}")
        if self.kind in ("fall", "jump", "brra") and not self.target:
            raise CfgError(f"{self.kind} terminator needs a target")
        if self.kind == "cond" and not (
            self.op and self.ra and self.rb and self.taken and self.target
        ):
            raise CfgError("cond terminator needs op, ra, rb, taken, target")
        if self.kind == "brr" and not (self.freq and self.taken and self.target):
            raise CfgError("brr terminator needs freq, taken, target")

    def successors(self) -> Tuple[str, ...]:
        if self.kind in ("fall", "jump", "brra"):
            return (self.target,)
        if self.kind in ("cond", "brr"):
            return (self.taken, self.target)
        return ()

    def retargeted(self, mapping: Dict[str, str]) -> "Terminator":
        """A copy with successor names rewritten through ``mapping``."""
        kwargs = {}
        if self.target is not None:
            kwargs["target"] = mapping.get(self.target, self.target)
        if self.taken is not None:
            kwargs["taken"] = mapping.get(self.taken, self.taken)
        return replace(self, **kwargs)


@dataclass
class Block:
    """One basic block: straight-line body plus a terminator."""

    name: str
    body: List[str] = field(default_factory=list)
    term: Terminator = field(default_factory=lambda: Terminator("halt"))
    #: Instrumentation site anchored at this block (None = no site).
    site_id: Optional[int] = None
    #: The site's profile-collection code (raw assembly lines).
    site_lines: List[str] = field(default_factory=list)
    #: Rarely executed block (sampled paths, duplicated bodies).  Cold
    #: blocks can be laid out away from the hot instruction stream so
    #: they do not dilute the I-cache working set.
    cold: bool = False

    def clone(self, name: Optional[str] = None) -> "Block":
        return Block(
            name=name or self.name,
            body=list(self.body),
            term=replace(self.term),
            site_id=self.site_id,
            site_lines=list(self.site_lines),
            cold=self.cold,
        )


class Cfg:
    """A function's control-flow graph with a fixed block layout."""

    def __init__(self, name: str, entry: str) -> None:
        self.name = name
        self.entry = entry
        self._blocks: Dict[str, Block] = {}
        self._order: List[str] = []

    # -- construction ---------------------------------------------------

    def add(self, block: Block) -> Block:
        if block.name in self._blocks:
            raise CfgError(f"duplicate block {block.name!r} in {self.name}")
        self._blocks[block.name] = block
        self._order.append(block.name)
        return block

    def block(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise CfgError(f"no block {name!r} in {self.name}") from None

    @property
    def order(self) -> List[str]:
        return list(self._order)

    def blocks(self) -> Iterable[Block]:
        for name in self._order:
            yield self._blocks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._order)

    # -- analysis ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants (all successors exist, entry
        exists, fallthrough layout is realisable)."""
        if self.entry not in self._blocks:
            raise CfgError(f"entry block {self.entry!r} missing")
        for block in self.blocks():
            for succ in block.term.successors():
                if succ not in self._blocks:
                    raise CfgError(
                        f"block {block.name!r} targets unknown block {succ!r}"
                    )

    def successors(self, name: str) -> Tuple[str, ...]:
        return self.block(name).term.successors()

    def dominators(self) -> Dict[str, Set[str]]:
        """Dominator sets for every block reachable from the entry.

        Iterative dataflow: ``dom(b) = {b} ∪ ⋂ dom(preds(b))``, with
        the entry dominated only by itself.  The graphs this library
        builds are small, so the simple fixed point is plenty fast.
        """
        self.validate()
        preds: Dict[str, List[str]] = {name: [] for name in self._order}
        for block in self.blocks():
            for succ in block.term.successors():
                preds[succ].append(block.name)
        # Restrict to blocks reachable from the entry.
        reachable: Set[str] = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            stack.extend(self.block(name).term.successors())
        dom: Dict[str, Set[str]] = {
            name: ({name} if name == self.entry else set(reachable))
            for name in reachable
        }
        changed = True
        while changed:
            changed = False
            for name in self._order:
                if name not in reachable or name == self.entry:
                    continue
                incoming = [dom[p] for p in preds[name] if p in reachable]
                new = set.intersection(*incoming) if incoming else set()
                new = new | {name}
                if new != dom[name]:
                    dom[name] = new
                    changed = True
        return dom

    def backedges(self) -> Set[Tuple[str, str]]:
        """True loop backedges: edges ``(u, v)`` where ``v`` dominates
        ``u`` — the points where Arnold-Ryder inserts sampling checks."""
        dom = self.dominators()
        edges = set()
        for block in self.blocks():
            if block.name not in dom:
                continue  # unreachable code has no loops worth checking
            for succ in block.term.successors():
                if succ in dom[block.name]:
                    edges.add((block.name, succ))
        return edges

    def instrumented_blocks(self) -> List[Block]:
        return [b for b in self.blocks() if b.site_id is not None]

    # -- lowering -----------------------------------------------------------

    def label(self, block_name: str) -> str:
        """The assembler label of a block."""
        return f"{self.name}__{block_name}"

    def lower(self) -> List[str]:
        """Emit assembler lines for the whole CFG (hot then cold).

        Any remaining ``site_lines`` are emitted inline at the top of
        their block (the "full instrumentation" interpretation); the
        sampling transforms rewrite the CFG so that by lowering time
        the instrumentation is where they want it.
        """
        hot, cold = self.lower_split()
        return hot + cold

    def lower_split(self) -> Tuple[List[str], List[str]]:
        """Emit (hot lines, cold lines) as two relocatable sections.

        Cold blocks are only ever entered by explicit branches and
        fall-throughs are resolved within each section, so callers may
        place the cold section anywhere (e.g. after all hot code,
        keeping duplicated bodies out of the I-cache working set).
        """
        self.validate()
        hot_order = [n for n in self._order if not self._blocks[n].cold]
        cold_order = [n for n in self._order if self._blocks[n].cold]
        return (self._lower_section(hot_order),
                self._lower_section(cold_order))

    def _lower_section(self, order: List[str]) -> List[str]:
        lines: List[str] = []
        for index, name in enumerate(order):
            block = self._blocks[name]
            lines.append(f"{self.label(name)}:")
            if block.site_lines:
                lines.extend(block.site_lines)
            lines.extend(block.body)
            term = block.term
            next_name = order[index + 1] if index + 1 < len(order) else None
            if term.kind == "halt":
                lines.append("halt")
            elif term.kind == "ret":
                lines.append("ret")
            elif term.kind == "jump":
                lines.append(f"jmp {self.label(term.target)}")
            elif term.kind == "fall":
                if term.target != next_name:
                    lines.append(f"jmp {self.label(term.target)}")
            elif term.kind == "cond":
                lines.append(
                    f"{term.op} {term.ra}, {term.rb}, {self.label(term.taken)}"
                )
                if term.target != next_name:
                    lines.append(f"jmp {self.label(term.target)}")
            elif term.kind == "brr":
                lines.append(f"brr {term.freq}, {self.label(term.taken)}")
                if term.target != next_name:
                    lines.append(f"jmp {self.label(term.target)}")
            elif term.kind == "brra":
                lines.append(f"brra {self.label(term.target)}")
        return lines

    # -- transformation support --------------------------------------------

    def map_blocks(self, rename) -> "Cfg":
        """A deep copy with every block (and successor reference)
        renamed through ``rename(name) -> new name``."""
        mapping = {name: rename(name) for name in self._order}
        copy = Cfg(self.name, mapping[self.entry])
        for block in self.blocks():
            clone = block.clone(mapping[block.name])
            clone.term = block.term.retargeted(mapping)
            copy.add(clone)
        return copy
