"""Deterministic fault injection: the engine's crash-test dummy.

The fault-tolerance machinery in :mod:`repro.engine.core` (retry with
backoff, pool rebuild, skip placeholders) is only trustworthy if it is
exercised, so the engine ships an injection seam that tests and the CI
smoke job drive:

* ``REPRO_FAULT_RATE=p`` makes a fraction *p* of window attempts fail.
  The decision is a pure function of ``(window key, attempt)`` — a
  sha256 hash mapped to [0, 1) and compared against *p* — so a given
  run configuration always faults the *same* windows on the *same*
  attempts, in serial and pool mode alike.  A retried attempt hashes
  differently, which is what lets ``failure_policy="retry"`` converge
  to byte-identical figure tables.
* ``REPRO_FAULT_MODE`` picks the failure shape:

  - ``exc`` (default) — raise :class:`InjectedWorkerFault` inside the
    attempt (a clean in-worker exception);
  - ``kill`` — ``os._exit(13)`` the pool worker, producing the
    ``BrokenProcessPool`` path (only honoured inside pool workers;
    serial attempts degrade to ``exc``);
  - ``hang`` — sleep ``REPRO_FAULT_HANG_S`` seconds (default 3600)
    then raise, exercising the ``REPRO_TIMEOUT`` path.

Injection happens at the very start of an attempt, before any
simulation or trace recording, so a faulted attempt has no side
effects beyond a possibly leftover temp file.
"""

from __future__ import annotations

import hashlib
import os
import time

FAULT_MODES = ("exc", "kill", "hang")


class InjectedWorkerFault(RuntimeError):
    """A deliberately injected, transient window failure."""


def fault_rate_from_env() -> float:
    raw = os.environ.get("REPRO_FAULT_RATE")
    if not raw:
        return 0.0
    try:
        return min(max(float(raw), 0.0), 0.999999)
    except ValueError:
        return 0.0


def fault_mode_from_env() -> str:
    mode = os.environ.get("REPRO_FAULT_MODE", "exc")
    return mode if mode in FAULT_MODES else "exc"


def fault_hang_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_FAULT_HANG_S", "3600"))
    except ValueError:
        return 3600.0


def should_inject(key: str, attempt: int, rate: float) -> bool:
    """Deterministic per-(window, attempt) fault decision."""
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return fraction < rate


def maybe_inject(key: str, attempt: int, rate: float,
                 mode: str = "exc", in_worker: bool = False) -> None:
    """Fault this attempt iff the deterministic decision says so."""
    if not should_inject(key, attempt, rate):
        return
    if mode == "kill" and in_worker:
        os._exit(13)
    if mode == "hang":
        time.sleep(fault_hang_seconds())
    raise InjectedWorkerFault(
        f"injected fault: window {key[:12]} attempt {attempt}")
