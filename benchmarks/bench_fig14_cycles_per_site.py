"""Figure 14: average added cycles per sampling site (Full-Duplication).

Paper results reproduced here:

* a 50% branch-on-random costs ~3.19 cycles per site (half the
  front-end flush plus two extra instructions in the stream);
* branch-on-random's per-site cost falls toward ~0.1 cycle as the
  interval grows;
* counter-based sampling's floor is far higher — 10-20x above
  branch-on-random for intervals above 64;
* unsampled full instrumentation costs ~4.3 cycles per site (the
  reference line).
"""


from _shared import run_once, shared_sweep, report

from repro.experiments import format_figure14


def test_figure14(benchmark):
    sweep = run_once(benchmark, shared_sweep)

    report(format_figure14(sweep))

    brr = {p.interval: p.cycles_per_site
           for p in sweep.series("brr", "full-dup", False)}
    cbs = {p.interval: p.cycles_per_site
           for p in sweep.series("cbs", "full-dup", False)}

    # 50% brr lands in the paper's few-cycle regime (3.19 on their
    # machine; our loop is shorter, so allow a band).
    assert 1.0 <= brr[2] <= 6.0
    # The asymptote approaches ~0.1 cycles per site.
    assert brr[1024] < 0.35
    # 10-20x gap in the interesting interval range.
    for interval in (128, 256, 512, 1024):
        ratio = cbs[interval] / max(1e-9, brr[interval])
        assert ratio > 5, f"interval {interval}: ratio {ratio:.1f}"
    # And the ratio at 1024 reaches the order-of-magnitude regime.
    assert cbs[1024] / max(1e-9, brr[1024]) >= 8

    # Full instrumentation reference: a handful of cycles per site.
    assert 0.5 <= sweep.full_instr_cycles_per_site <= 8.0

    # cbs' non-monotone small-interval behaviour also shows in the
    # per-site metric (a short-period pattern the predictor captures
    # is cheaper than the first one it cannot).
    assert min(cbs[2], cbs[4]) < cbs[8]
