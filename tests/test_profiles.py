"""Tests for profiles and the overlap-accuracy metric."""

import pytest
from hypothesis import given, strategies as st

from repro.profiles import Profile, overlap_accuracy


class TestProfile:
    def test_from_events(self):
        profile = Profile.from_events(["a", "b", "a", "c", "a"])
        assert profile.count("a") == 3
        assert profile.total == 5
        assert len(profile) == 3

    def test_from_array(self):
        profile = Profile.from_array([0, 5, 2, 0, 1])
        assert profile.count(1) == 5
        assert 0 not in profile
        assert profile.total == 8

    def test_add(self):
        profile = Profile()
        profile.add("m", 10)
        profile.add("m")
        assert profile.count("m") == 11

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Profile().add("m", -1)

    def test_negative_init_rejected(self):
        with pytest.raises(ValueError):
            Profile({"m": -2})

    def test_fractions(self):
        profile = Profile({"a": 3, "b": 1})
        assert profile.fraction("a") == 0.75
        assert profile.fractions() == {"a": 0.75, "b": 0.25}

    def test_empty_fraction(self):
        assert Profile().fraction("a") == 0.0
        assert Profile().fractions() == {}

    def test_top(self):
        profile = Profile({"a": 6, "b": 3, "c": 1})
        assert profile.top(2) == [("a", 0.6), ("b", 0.3)]

    def test_zero_counts_dropped(self):
        profile = Profile({"a": 0, "b": 2})
        assert "a" not in profile


class TestOverlapAccuracy:
    def test_identical_profiles_100(self):
        profile = Profile({"a": 10, "b": 30})
        assert overlap_accuracy(profile, profile) == pytest.approx(100.0)

    def test_scaled_profile_100(self):
        """Uniform 1-in-N sampling of a stationary mix is perfect."""
        full = Profile({"a": 100, "b": 300})
        sampled = Profile({"a": 1, "b": 3})
        assert overlap_accuracy(full, sampled) == pytest.approx(100.0)

    def test_paper_worked_example(self):
        """Section 4.1: a method that is 50% of the full profile but 60%
        of the sampled one contributes 50 points."""
        full = Profile({"m1": 50, "m2": 50})
        sampled = Profile({"m1": 60, "m2": 40})
        assert overlap_accuracy(full, sampled) == pytest.approx(90.0)

    def test_disjoint_profiles_zero(self):
        assert overlap_accuracy(Profile({"a": 5}), Profile({"b": 5})) == 0.0

    def test_missing_method_penalised(self):
        full = Profile({"a": 50, "b": 50})
        sampled = Profile({"a": 50})
        assert overlap_accuracy(full, sampled) == pytest.approx(50.0)

    def test_empty_sampled_is_zero(self):
        assert overlap_accuracy(Profile({"a": 1}), Profile()) == 0.0

    def test_empty_full_rejected(self):
        with pytest.raises(ValueError):
            overlap_accuracy(Profile(), Profile({"a": 1}))


@given(st.dictionaries(st.integers(0, 20), st.integers(1, 100),
                       min_size=1, max_size=10),
       st.dictionaries(st.integers(0, 20), st.integers(1, 100),
                       min_size=1, max_size=10))
def test_overlap_properties(full_counts, sampled_counts):
    """Overlap is within [0, 100] and symmetric."""
    full = Profile(full_counts)
    sampled = Profile(sampled_counts)
    acc = overlap_accuracy(full, sampled)
    assert 0.0 <= acc <= 100.0 + 1e-9
    assert acc == pytest.approx(overlap_accuracy(sampled, full))
