"""Event-level models of the sampling frameworks compared in Section 4.

Each sampler answers, per dynamically encountered instrumentation
site, "is a sample collected here?":

* :class:`SoftwareCounterSampler` — the Arnold-Ryder global software
  counter of Figure 1 (check for zero, profile + reset on zero,
  decrement);
* :class:`HardwareCounterSampler` — the paper's "hw count" baseline: a
  deterministic take-every-Nth triggered through the brr interface;
* :class:`BrrSampler` — branch-on-random: an LFSR-driven pseudo-random
  decision at the encoded frequency;
* :class:`FullSampler` — samples everything (the reference profile).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from ..core.brr import BranchOnRandomUnit, RandomSource
from ..core.condition import field_for_interval, interval_of_field
from ..profiles import Profile


class Sampler:
    """Per-site sampling decision source."""

    def should_sample(self) -> bool:
        raise NotImplementedError

    @property
    def expected_rate(self) -> float:
        """Long-run fraction of sites sampled."""
        raise NotImplementedError


class FullSampler(Sampler):
    """Samples every site (full instrumentation, no sampling)."""

    def should_sample(self) -> bool:
        return True

    @property
    def expected_rate(self) -> float:
        return 1.0


class SoftwareCounterSampler(Sampler):
    """Figure 1: ``if count == 0: do_profile(); count = reset`` then
    ``count -= 1``.

    With ``reset = interval`` a sample is collected exactly once every
    ``interval`` encounters.  ``phase`` sets the initial counter value
    (the Arnold-Ryder framework starts it at the sampling interval).
    """

    def __init__(self, interval: int, phase: Optional[int] = None) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.reset = interval
        if phase is None:
            phase = interval - 1
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self.count = phase % interval
        self.samples = 0
        self.encounters = 0

    def should_sample(self) -> bool:
        self.encounters += 1
        sampled = self.count == 0
        if sampled:
            self.samples += 1
            self.count = self.reset
        self.count -= 1
        return sampled

    @property
    def expected_rate(self) -> float:
        return 1.0 / self.interval


class HardwareCounterSampler(Sampler):
    """Deterministic take-every-Nth through the brr interface."""

    def __init__(self, interval: int, phase: int = 0) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self._count = (interval - 1 - phase) % interval
        self.samples = 0
        self.encounters = 0

    def should_sample(self) -> bool:
        self.encounters += 1
        sampled = self._count == 0
        self._count = self.interval - 1 if sampled else self._count - 1
        if sampled:
            self.samples += 1
        return sampled

    @property
    def expected_rate(self) -> float:
        return 1.0 / self.interval


class BrrSampler(Sampler):
    """Branch-on-random sampling at an encoded frequency field."""

    def __init__(
        self,
        interval: Optional[int] = None,
        field: Optional[int] = None,
        unit: Optional[RandomSource] = None,
    ) -> None:
        if (interval is None) == (field is None):
            raise ValueError("specify exactly one of interval or field")
        self.field = field_for_interval(interval) if interval is not None else field
        self.unit: RandomSource = unit if unit is not None else BranchOnRandomUnit()
        self.samples = 0
        self.encounters = 0

    def should_sample(self) -> bool:
        self.encounters += 1
        sampled = self.unit.resolve(self.field)
        if sampled:
            self.samples += 1
        return sampled

    @property
    def expected_rate(self) -> float:
        return 1.0 / interval_of_field(self.field)


def collect_profile(events: Iterable[Hashable], sampler: Sampler) -> Profile:
    """One pass over an event stream, recording the sampled subset."""
    profile = Profile()
    add = profile.add
    should = sampler.should_sample
    for event in events:
        if should():
            add(event)
    return profile
