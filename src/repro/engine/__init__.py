"""Shared experiment-execution subsystem (see ``docs/engine.md``).

Every figure reproduction decomposes into independent, deterministic
simulation windows.  This package turns that observation into
infrastructure: declarative :class:`WindowSpec`s, a content-addressed
on-disk :class:`ResultCache`, a record-once / replay-many
:class:`TraceStore` keyed by each window's functional projection
(``docs/trace_format.md``), a fault-tolerant process-pool executor
(timeouts, bounded retry, pool rebuild, ``raise``/``retry``/``skip``
failure policies — all in one :class:`EngineConfig`) with a serial
deterministic fallback, structured JSONL run artifacts, and a resume
path that re-executes only the windows an interrupted run left
uncached.

All of that on-disk state is checksummed end to end
(``docs/integrity.md``): traces and cache entries verify on read and
quarantine + self-heal under the default ``repair`` policy, ledger
lines carry per-line CRCs, ``repro doctor`` (:func:`run_doctor`)
audits everything, and the ``REPRO_VALIDATE`` watchdog cross-checks
the fast timing kernel against the golden model at runtime.
"""

from .artifacts import (
    PLAN_TYPE,
    RUN_META_TYPE,
    VALIDATION_TYPE,
    RunRecorder,
    WindowRecord,
    completed_keys,
    read_run_log,
    read_run_log_checked,
)
from .cache import ResultCache, default_cache_dir
from .config import FAILURE_POLICIES, EngineConfig
from .core import (
    ExperimentEngine,
    PlanRun,
    WindowFailure,
    WindowTimeout,
    default_jobs,
    get_engine,
    is_failure,
    run_population,
    run_windows,
    set_engine,
)
from .faults import InjectedWorkerFault, corrupt_file, should_inject
from .integrity import (
    INTEGRITY_POLICIES,
    VALIDATE_POLICIES,
    IntegrityCounters,
    IntegrityError,
    LedgerReport,
    ValidationDivergence,
    ValidationSettings,
    format_doctor,
    quarantined_entries,
    run_doctor,
    scan_ledger,
    validation_override,
)
from .spec import SCHEMA_VERSION, WindowSpec
from .tracestore import (
    DEFAULT_TRACE_HANDLES,
    TIMING_ONLY_PARAMS,
    TRACE_STORE_VERSION,
    TraceStore,
    active_store,
    default_trace_dir,
    functional_key,
    trace_enabled_by_env,
    trace_handles_from_env,
)

__all__ = [
    "SCHEMA_VERSION",
    "WindowSpec",
    "ResultCache",
    "default_cache_dir",
    "PLAN_TYPE",
    "RUN_META_TYPE",
    "VALIDATION_TYPE",
    "RunRecorder",
    "WindowRecord",
    "completed_keys",
    "read_run_log",
    "read_run_log_checked",
    "EngineConfig",
    "FAILURE_POLICIES",
    "INTEGRITY_POLICIES",
    "VALIDATE_POLICIES",
    "IntegrityCounters",
    "IntegrityError",
    "LedgerReport",
    "ValidationDivergence",
    "ValidationSettings",
    "corrupt_file",
    "format_doctor",
    "quarantined_entries",
    "run_doctor",
    "scan_ledger",
    "validation_override",
    "ExperimentEngine",
    "PlanRun",
    "WindowFailure",
    "WindowTimeout",
    "InjectedWorkerFault",
    "should_inject",
    "default_jobs",
    "get_engine",
    "is_failure",
    "run_population",
    "run_windows",
    "set_engine",
    "DEFAULT_TRACE_HANDLES",
    "TIMING_ONLY_PARAMS",
    "TRACE_STORE_VERSION",
    "TraceStore",
    "active_store",
    "default_trace_dir",
    "functional_key",
    "trace_enabled_by_env",
    "trace_handles_from_env",
]
