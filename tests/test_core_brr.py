"""Tests for the branch-on-random unit, decoder bank and hw counter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brr import (
    BranchOnRandomUnit,
    DecoderBank,
    HardwareCounterUnit,
    measured_probability,
)
from repro.core.lfsr import Lfsr


class TestBranchOnRandomUnit:
    def test_default_is_recommended_width(self):
        unit = BranchOnRandomUnit()
        assert unit.lfsr.width == 20

    def test_resolve_clocks_lfsr(self):
        unit = BranchOnRandomUnit()
        before = unit.lfsr.updates
        unit.resolve(0)
        assert unit.lfsr.updates == before + 1

    def test_counts_resolutions_and_taken(self):
        unit = BranchOnRandomUnit()
        for _ in range(100):
            unit.resolve(0)
        assert unit.resolved == 100
        assert 20 <= unit.taken <= 80  # ~50%

    def test_measured_probability_50pct(self):
        unit = BranchOnRandomUnit()
        p = measured_probability(unit, 0, 4096)
        assert abs(p - 0.5) < 0.03

    def test_measured_probability_helper_validates(self):
        with pytest.raises(ValueError):
            measured_probability(BranchOnRandomUnit(), 0, 0)

    def test_narrow_lfsr_with_speculation_rejected(self):
        lfsr = Lfsr(20, history_bits=2)
        with pytest.raises(ValueError):
            BranchOnRandomUnit(lfsr, speculative_depth=8)

    def test_squash_restores_sequence(self):
        """Section 3.4: checkpointed hardware replays the same outcomes
        after a squash."""
        unit = BranchOnRandomUnit(speculative_depth=16)
        reference = BranchOnRandomUnit(
            Lfsr(20, seed=unit.lfsr.state, history_bits=0)
        )
        expected = [reference.resolve(2) for _ in range(8)]
        speculated = [unit.resolve(2) for _ in range(8)]
        assert speculated == expected
        unit.squash()  # full squash: all 8 undone
        replayed = [unit.resolve(2) for _ in range(8)]
        assert replayed == expected

    def test_partial_squash(self):
        unit = BranchOnRandomUnit(speculative_depth=16)
        outcomes = [unit.resolve(1) for _ in range(6)]
        unit.squash(2)
        assert unit.in_flight == 4
        assert [unit.resolve(1) for _ in range(2)] == outcomes[4:]

    def test_retire_reduces_in_flight(self):
        unit = BranchOnRandomUnit(speculative_depth=8)
        for _ in range(5):
            unit.resolve(0)
        unit.retire(3)
        assert unit.in_flight == 2
        with pytest.raises(ValueError):
            unit.retire(3)

    def test_squash_too_many_rejected(self):
        unit = BranchOnRandomUnit(speculative_depth=8)
        unit.resolve(0)
        with pytest.raises(ValueError):
            unit.squash(2)

    def test_squash_noop_without_speculation(self):
        unit = BranchOnRandomUnit()
        unit.resolve(0)
        before = unit.lfsr.state
        unit.squash()  # the paper's baseline: lost transitions tolerated
        assert unit.lfsr.state == before

    def test_context_save_restore(self):
        unit = BranchOnRandomUnit()
        saved = unit.save_context()
        seq_a = [unit.resolve(3) for _ in range(32)]
        unit.restore_context(saved)
        seq_b = [unit.resolve(3) for _ in range(32)]
        assert seq_a == seq_b

    def test_random_bits(self):
        unit = BranchOnRandomUnit()
        value = unit.random_bits(16)
        assert 0 <= value < (1 << 16)
        # 16 LFSR steps consumed.
        assert unit.lfsr.updates == 16


class TestHardwareCounterUnit:
    def test_takes_every_nth(self):
        unit = HardwareCounterUnit()
        outcomes = [unit.resolve(1) for _ in range(12)]  # interval 4
        assert outcomes == [False, False, False, True] * 3

    def test_phase_shifts_first_sample(self):
        unit = HardwareCounterUnit(phase=3)
        outcomes = [unit.resolve(1) for _ in range(8)]
        assert outcomes == [True, False, False, False] * 2

    def test_negative_phase_rejected(self):
        with pytest.raises(ValueError):
            HardwareCounterUnit(phase=-1)

    def test_fields_independent(self):
        unit = HardwareCounterUnit()
        a = [unit.resolve(0) for _ in range(4)]
        b = [unit.resolve(1) for _ in range(4)]
        assert a == [False, True, False, True]
        assert b == [False, False, False, True]

    def test_exact_long_run_frequency(self):
        unit = HardwareCounterUnit()
        taken = sum(unit.resolve(2) for _ in range(8 * 100))
        assert taken == 100

    def test_statistics_tracked(self):
        unit = HardwareCounterUnit()
        for _ in range(16):
            unit.resolve(0)
        assert unit.resolved == 16
        assert unit.taken == 8


class TestDecoderBank:
    def test_replicated_one_cycle(self):
        bank = DecoderBank(decode_width=4, replicated=True)
        outcomes, cycles = bank.resolve_packet([0, 0, 0, 0])
        assert len(outcomes) == 4
        assert cycles == 1

    def test_replicated_units_decorrelated(self):
        bank = DecoderBank(decode_width=4, replicated=True)
        states = {unit.lfsr.state for unit in bank.units}
        assert len(states) == 4

    def test_shared_packet_split(self):
        bank = DecoderBank(decode_width=4, replicated=False)
        outcomes, cycles = bank.resolve_packet([0, 0, 0])
        assert len(outcomes) == 3
        assert cycles == 3  # footnote 3: split, decoded over cycles
        assert bank.packet_splits == 2

    def test_shared_single_brr_no_split(self):
        bank = DecoderBank(decode_width=4, replicated=False)
        __, cycles = bank.resolve_packet([5])
        assert cycles == 1
        assert bank.packet_splits == 0

    def test_oversized_packet_rejected(self):
        bank = DecoderBank(decode_width=2)
        with pytest.raises(ValueError):
            bank.resolve_packet([0, 0, 0])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            DecoderBank(decode_width=0)

    def test_explicit_seeds(self):
        bank = DecoderBank(decode_width=2, seeds=[7, 9])
        assert [u.lfsr.state for u in bank.units] == [7, 9]

    def test_seed_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DecoderBank(decode_width=2, seeds=[7])

    def test_empty_packet(self):
        bank = DecoderBank(decode_width=4, replicated=False)
        outcomes, cycles = bank.resolve_packet([])
        assert outcomes == []
        assert cycles == 1


@settings(max_examples=25, deadline=None)
@given(
    field=st.integers(min_value=0, max_value=4),
    prefix=st.integers(min_value=0, max_value=200),
)
def test_hw_counter_interval_exact(field, prefix):
    """Every window of `interval` resolutions contains exactly one taken."""
    unit = HardwareCounterUnit()
    interval = 1 << (field + 1)
    for _ in range(prefix):
        unit.resolve(field)
    window = [unit.resolve(field) for _ in range(interval)]
    assert sum(window) == 1
