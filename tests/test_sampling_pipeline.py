"""End-to-end behaviour of the sampling-aware experiment pipeline.

The load-bearing guarantees of the plan/execute/estimate refactor:

* exhaustive output (``plan=None`` and ``fraction:1.0``) is
  byte-identical to the pre-sampling pipeline's figures;
* a non-exhaustive plan runs exactly the planned window subset, every
  sampled value equals its exhaustive counterpart, and the report
  carries plan/CI telemetry all the way into the JSONL ledger and the
  ``--json`` documents;
* the same plan replays the same subset, which is what makes sampled
  runs resumable.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.engine import (
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    RunRecorder,
    read_run_log_checked,
    run_population,
    set_engine,
)
from repro.serve.service import RequestError, validate_request
from repro.stats import SamplingPlan


@pytest.fixture
def engine(tmp_path):
    eng = ExperimentEngine(config=EngineConfig(jobs=1),
                           cache=ResultCache(root=tmp_path / "cache"),
                           recorder=RunRecorder())
    set_engine(eng)
    yield eng
    set_engine(None)


class TestByteIdentity:
    def test_figure12_fraction_one_is_exhaustive(self, engine):
        from repro.experiments import figure12_report, format_fig12_rows

        plain = figure12_report(scale=0.05, engine=engine)
        planned = figure12_report(
            scale=0.05, engine=engine,
            plan=SamplingPlan(mode="fraction", fraction=1.0, seed=9))
        assert plain.sampling is None and planned.sampling is None
        assert format_fig12_rows(plain.rows) == format_fig12_rows(
            planned.rows)

    def test_figure13_fraction_one_is_exhaustive(self, engine):
        from repro.experiments import format_figure13, microbench_sweep

        plain = microbench_sweep(n_chars=300, intervals=(8, 64),
                                 engine=engine)
        planned = microbench_sweep(
            n_chars=300, intervals=(8, 64), engine=engine,
            plan=SamplingPlan(mode="fraction", fraction=1.0))
        assert plain.sampling is None and planned.sampling is None
        assert format_figure13(plain) == format_figure13(planned)
        assert plain.to_dict() == planned.to_dict()
        assert "sampling" not in plain.to_dict()

    def test_default_runs_write_no_plan_telemetry(self, engine):
        from repro.experiments import microbench_sweep

        microbench_sweep(n_chars=300, intervals=(8,), engine=engine)
        assert engine.summary()["plans"] == []


class TestSampledRuns:
    def test_figure13_sampled_points_match_exhaustive(self, engine):
        from repro.experiments import microbench_sweep

        intervals = (8, 64, 512)
        exhaustive = microbench_sweep(n_chars=300, intervals=intervals,
                                      engine=engine)
        plan = SamplingPlan(mode="fraction", fraction=0.5, seed=0)
        sampled = microbench_sweep(n_chars=300, intervals=intervals,
                                   engine=engine, plan=plan)
        summary = sampled.sampling
        assert summary is not None
        assert summary.windows_run < summary.windows_population
        exact = {(p.kind, p.duplication, p.with_payload, p.interval):
                 p.overhead for p in exhaustive.points}
        assert sampled.points, "plan selected no interval points"
        for point in sampled.points:
            key = (point.kind, point.duplication, point.with_payload,
                   point.interval)
            assert point.overhead == exact[key]
        # Fixed seed, verified empirically: every per-curve estimate
        # covers the exhaustive curve mean.
        for name, estimate in summary.estimates.items():
            kind, duplication, tail = name.split("/")
            series = exhaustive.series(kind, duplication,
                                       tail.startswith("inst"))
            true_mean = sum(p.overhead for p in series) / len(series)
            assert estimate.covers(true_mean), name

    def test_figure12_sampled_report(self, engine):
        from repro.experiments import figure12_report

        plan = SamplingPlan(mode="budget", budget=2, seed=0)
        report = figure12_report(scale=0.05, engine=engine, plan=plan)
        assert report.sampling is not None
        assert report.sampling.cells_run == 2
        assert report.sampling.windows_run == 6  # 3 variants per cell
        assert report.rows[-1].benchmark == "average"
        assert len(report.rows) == 3  # 2 sampled benchmarks + average
        assert "cbs-brr paired delta %" in report.sampling.estimates

    def test_same_plan_selects_same_cells_and_ledger(self, engine,
                                                     tmp_path):
        from repro.experiments import accuracy_population

        population = accuracy_population(1 << 10, scale=0.002)
        plan = SamplingPlan(mode="fraction", fraction=0.5, seed=4)
        first = run_population(population, plan=plan, engine=engine)
        second = run_population(population, plan=plan, engine=engine)
        assert [c.id for c in first.cells] == [c.id for c in second.cells]

    def test_plan_telemetry_reaches_summary(self, engine):
        from repro.experiments import figure12_report

        figure12_report(scale=0.05, engine=engine,
                        plan=SamplingPlan(mode="budget", budget=2, seed=0))
        plans = engine.summary()["plans"]
        assert len(plans) == 1
        record = plans[0]
        assert record["plan"]["mode"] == "budget"
        assert record["cells_run"] == 2
        assert not record["complete"]
        from repro.jvm.benchmarks import FIGURE12_BENCHMARKS

        assert set(record["strata"]) == set(FIGURE12_BENCHMARKS)
        assert sum(s["cells_run"] for s in record["strata"].values()) == 2

    def test_adaptive_plan_runs_exact_budget(self, engine):
        from repro.experiments import accuracy_population

        population = accuracy_population(1 << 10, scale=0.002,
                                         seeds=(0, 1))
        plan = SamplingPlan(mode="adaptive", budget=6, seed=0)
        run = run_population(population, plan=plan, engine=engine)
        assert run.cells_run == 6
        assert run.cells_population == population.size


class TestCliAndResume:
    def test_cli_sampled_json_and_resume(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        cache_dir = tmp_path / "cache"
        argv = ["figure13", "--scale", "300", "--sample", "fraction:0.5",
                "--seed", "0", "--json", "--cache-dir", str(cache_dir),
                "--log-jsonl", str(log)]
        assert main(argv) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["data"]["sampling"]["plan"]["mode"] == "fraction"
        plans = document["engine"]["plans"]
        assert len(plans) == 1
        assert plans[0]["windows_run"] < plans[0]["windows_population"]

        meta, records, report = read_run_log_checked(log)
        assert meta is not None and report.corrupt == 0
        assert all(r.get("cache") in ("hit", "miss") for r in records)

        # Drop one cached window; resume re-executes only that one and
        # replays the identical planned subset.
        victims = list(pathlib.Path(cache_dir).rglob("*.json"))
        victims[0].unlink()
        assert main(["resume", str(log)]) == 0
        err = capsys.readouterr().err
        assert "1 executed" in err

    def test_cli_rejects_sample_on_unsupported_command(self, capsys):
        with pytest.raises(SystemExit):
            main(["cost", "--sample", "fraction:0.5"])
        with pytest.raises(SystemExit):
            main(["all", "--sample", "fraction:0.5"])

    def test_cli_rejects_bad_plan_early(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure13", "--sample", "fraction:2suffix"])
        with pytest.raises(SystemExit):
            main(["figure13", "--sample", "nonsense"])

    def test_cli_rejects_seed_on_unsupported_command(self):
        with pytest.raises(SystemExit):
            main(["cost", "--seed", "3"])


class TestServeKnobs:
    def test_sample_param_canonicalises_for_coalescing(self):
        a = validate_request("figure13", {"sample": "fraction:0.250"})
        b = validate_request("figure13", {"sample": "fraction:0.25"})
        assert a == b == {"sample": "fraction:0.25"}

    def test_seed_param_coerces(self):
        assert validate_request("figure12", {"seed": "3"}) == {"seed": 3}

    def test_bad_plan_rejected(self):
        with pytest.raises(RequestError):
            validate_request("figure13", {"sample": "nonsense"})

    def test_sample_not_allowed_on_figure2(self):
        with pytest.raises(RequestError):
            validate_request("figure2", {"sample": "fraction:0.5"})
