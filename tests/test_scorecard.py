"""Tests for the reproduction scorecard (fast claims only)."""

import pytest

from repro.experiments.scorecard import (
    ClaimResult,
    _check_figure6,
    _check_frequency_encoding,
    _check_hardware_cost,
    _check_sampled_estimation,
    _check_trap_equivalence,
    format_scorecard,
)


class TestFastClaims:
    def test_figure6(self):
        passed, detail = _check_figure6()
        assert passed
        assert "Figure 6" in detail or "sequence" in detail

    def test_frequency(self):
        passed, detail = _check_frequency_encoding()
        assert passed
        assert "measured" in detail

    def test_cost(self):
        passed, __ = _check_hardware_cost()
        assert passed

    def test_trap(self):
        passed, detail = _check_trap_equivalence()
        assert passed
        assert "==" in detail

    def test_sampled_estimation(self):
        passed, detail = _check_sampled_estimation(n_chars=800)
        assert passed, detail
        assert "sampled points exact" in detail


class TestFormatting:
    def test_format(self):
        results = [
            ClaimResult("claim A", True, "fine", 0.1),
            ClaimResult("claim B", False, "broken", 2.0),
        ]
        text = format_scorecard(results)
        assert "[PASS] claim A" in text
        assert "[FAIL] claim B" in text
        assert "1/2 claims reproduced" in text

    def test_crash_counts_as_failure(self):
        from repro.experiments.scorecard import run_scorecard
        # Not running the slow full scorecard here; just check the
        # crash-handling shape via a monkeypatched checks list is
        # unnecessary — exercised implicitly by CLI usage.
        assert callable(run_scorecard)
