"""Tests for the mini-JVM model, compiler and benchmarks."""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.jvm import (
    FIGURE12_BENCHMARKS,
    MEASURE_BEGIN,
    MEASURE_END,
    Call,
    JvmError,
    JvmProgram,
    Loop,
    Marker,
    MethodSpec,
    Work,
    compile_program,
)
from repro.sim.machine import Machine


def simple_program(outer=4):
    return JvmProgram({
        "main": MethodSpec("main", [
            Marker(MEASURE_BEGIN),
            Loop(outer, [Call("leaf"), Call("leaf2")]),
            Marker(MEASURE_END),
        ]),
        "leaf": MethodSpec("leaf", [Work(5)]),
        "leaf2": MethodSpec("leaf2", [Work(3), Loop(2, [Work(2)])]),
    })


def run(compiled, unit=None, max_steps=3_000_000):
    machine = Machine(compiled.program, brr_unit=unit)
    machine.run(max_steps=max_steps)
    return machine


class TestModel:
    def test_missing_entry(self):
        with pytest.raises(JvmError):
            JvmProgram({"f": MethodSpec("f")}, entry="main")

    def test_unknown_callee(self):
        with pytest.raises(JvmError):
            JvmProgram({"main": MethodSpec("main", [Call("ghost")])})

    def test_recursion_rejected(self):
        with pytest.raises(JvmError):
            JvmProgram({
                "main": MethodSpec("main", [Call("a")]),
                "a": MethodSpec("a", [Call("main")]),
            })

    def test_deep_loops_rejected(self):
        with pytest.raises(JvmError):
            JvmProgram({"main": MethodSpec("main", [
                Loop(2, [Loop(2, [Loop(2, [Work(1)])])]),
            ])})

    def test_bad_loop_count(self):
        with pytest.raises(JvmError):
            Loop(0, [])

    def test_negative_work(self):
        with pytest.raises(JvmError):
            Work(-1)

    def test_static_invocations(self):
        program = simple_program(outer=4)
        counts = program.static_invocations()
        assert counts == {"main": 1, "leaf": 4, "leaf2": 4}

    def test_method_ids_stable(self):
        ids = simple_program().method_ids()
        assert ids == {"main": 0, "leaf": 1, "leaf2": 2}


class TestCompiler:
    def test_full_instrumentation_profile_exact(self):
        compiled = compile_program(simple_program(6), variant="full")
        machine = run(compiled)
        assert compiled.read_profile(machine) == {
            "main": 1, "leaf": 6, "leaf2": 6,
        }

    def test_baseline_counts_nothing(self):
        compiled = compile_program(simple_program(), variant="none")
        machine = run(compiled)
        assert all(v == 0 for v in compiled.read_profile(machine).values())

    def test_markers_fire_once(self):
        compiled = compile_program(simple_program(), variant="none")
        machine = run(compiled)
        assert machine.marker_counts[MEASURE_BEGIN] == 1
        assert machine.marker_counts[MEASURE_END] == 1

    @pytest.mark.parametrize("kind", ["cbs", "brr"])
    @pytest.mark.parametrize("variant", ["no-dup", "full-dup"])
    def test_sampled_variants_run_to_completion(self, kind, variant):
        compiled = compile_program(simple_program(8), variant=variant,
                                   kind=kind, interval=4)
        unit = HardwareCounterUnit() if kind == "brr" else None
        machine = run(compiled, unit=unit)
        assert machine.halted

    def test_cbs_samples_at_interval(self):
        # 8 outer iterations x 2 leaf calls + main = 17 region entries
        # in no-dup; interval 4 -> 4 samples.
        compiled = compile_program(simple_program(8), variant="no-dup",
                                   kind="cbs", interval=4)
        machine = run(compiled)
        total = sum(compiled.read_profile(machine).values())
        assert total == 4

    def test_brr_lfsr_profile_proportions(self):
        program = simple_program(128)
        compiled = compile_program(program, variant="no-dup", kind="brr",
                                   interval=4)
        machine = run(compiled, unit=BranchOnRandomUnit())
        profile = compiled.read_profile(machine)
        # leaf and leaf2 are invoked equally; samples should be close.
        assert profile["leaf"] + profile["leaf2"] > 20
        ratio = profile["leaf"] / max(1, profile["leaf2"])
        assert 0.4 < ratio < 2.6

    def test_sampled_needs_kind(self):
        with pytest.raises(JvmError):
            compile_program(simple_program(), variant="no-dup")

    def test_work_registers_preserved_across_calls(self):
        """Loop counters survive callee clobbering (the saved-register
        ABI): the loop runs exactly `outer` times."""
        compiled = compile_program(simple_program(9), variant="full")
        machine = run(compiled)
        assert compiled.read_profile(machine)["leaf"] == 9


class TestBenchmarks:
    @pytest.mark.parametrize("name", sorted(FIGURE12_BENCHMARKS))
    def test_profile_matches_static_counts(self, name):
        jvm = FIGURE12_BENCHMARKS[name](0.3)
        compiled = compile_program(jvm, variant="full")
        machine = run(compiled, max_steps=8_000_000)
        assert compiled.read_profile(machine) == jvm.static_invocations()

    def test_jython_has_alternating_leaves(self):
        jvm = FIGURE12_BENCHMARKS["jython"](0.3)
        assert "jython_opA" in jvm.methods
        assert "jython_opB" in jvm.methods

    def test_code_footprint_exceeds_l1i(self):
        """The working-set property the Figure 12 model relies on."""
        for name in ("bloat", "luindex"):
            jvm = FIGURE12_BENCHMARKS[name](1.0)
            compiled = compile_program(jvm, variant="none")
            assert compiled.program.size_bytes > 20 << 10

    def test_scale_changes_outer_iterations(self):
        small = FIGURE12_BENCHMARKS["fop"](0.3).static_invocations()
        large = FIGURE12_BENCHMARKS["fop"](3.0).static_invocations()
        assert sum(large.values()) > sum(small.values())

    def test_variant_label(self):
        compiled = compile_program(simple_program(), variant="full-dup",
                                   kind="brr")
        assert compiled.variant == "brr+full-dup"
        assert compiled.interval == 1024
