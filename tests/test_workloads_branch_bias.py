"""Tests for branch-bias reconstruction from the edge profile."""

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.workloads.microbench import Microbench, build_microbench
from repro.workloads.text import class_counts


class TestBranchBiases:
    def test_from_full_profile_exact(self):
        bench = build_microbench(1500, variant="full", seed=8)
        machine = bench.make_machine()
        machine.run(max_steps=2_000_000)
        __, counts = bench.read_results(machine)
        biases = Microbench.branch_biases(counts)
        lower, upper, other = class_counts(bench.text)
        assert biases["head_taken_lower"] == pytest.approx(
            lower / (lower + upper + other))
        assert biases["mid_taken_upper"] == pytest.approx(
            upper / (upper + other))

    def test_sampled_biases_track_full(self):
        """The point of sampling: a 1/8 brr edge profile reconstructs
        the same biases within sampling noise."""
        n = 6000
        full_bench = build_microbench(n, variant="full", seed=8)
        machine = full_bench.make_machine()
        machine.run(max_steps=4_000_000)
        __, full_counts = full_bench.read_results(machine)
        full_biases = Microbench.branch_biases(full_counts)

        sampled_bench = build_microbench(n, variant="no-dup", kind="brr",
                                         interval=8, seed=8)
        machine = sampled_bench.make_machine(
            brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0x777)))
        machine.run(max_steps=4_000_000)
        __, sampled_counts = sampled_bench.read_results(machine)
        sampled_biases = Microbench.branch_biases(sampled_counts)

        for key in full_biases:
            assert sampled_biases[key] == pytest.approx(
                full_biases[key], abs=0.06), key

    def test_sparse_profile_rejected(self):
        with pytest.raises(ValueError):
            Microbench.branch_biases([0, 0, 0, 0])
        with pytest.raises(ValueError):
            Microbench.branch_biases([1, 1, 0, 0])
