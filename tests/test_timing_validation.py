"""Analytic validation kernels for the timing model.

Each kernel's cycle count is predictable from first principles; the
model must land inside tight bounds.  These pin the quantitative
behaviour the figures depend on (fetch bandwidth, dependence height,
load-to-use latency, misprediction penalties, commit bandwidth).
"""

import pytest

from repro.isa.asm import assemble
from repro.timing.config import TimingConfig
from repro.timing.runner import time_program


def cycles_of(source, **kwargs):
    return time_program(assemble(source), **kwargs)


def loop(body_lines, iterations, prologue=""):
    body = "\n".join(body_lines)
    return f"""
        {prologue}
        li r9, {iterations}
    loop:
        {body}
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """


ITER = 400


class TestFetchBound:
    def test_independent_ops_cycles_bounded_by_fetch(self):
        """12 independent ops + 2 loop ops per iteration, fetch 3-wide,
        one taken branch per iteration: at least ceil(14/3) = 5 cycles
        and not much more than 5 + 1 (break) per iteration."""
        body = [f"li r{1 + (i % 7)}, {i}" for i in range(12)]
        result = cycles_of(loop(body, ITER))
        per_iter = result.cycles / ITER
        assert 5.0 <= per_iter <= 6.6

    def test_wider_fetch_speeds_up(self):
        body = [f"li r{1 + (i % 7)}, {i}" for i in range(12)]
        narrow = cycles_of(loop(body, ITER))
        wide = cycles_of(loop(body, ITER),
                         config=TimingConfig().with_overrides(fetch_width=6))
        assert wide.cycles < narrow.cycles * 0.75


class TestDependenceBound:
    def test_serial_chain_one_per_cycle(self):
        """A 10-deep dependent chain costs >= 10 cycles per iteration
        regardless of width."""
        body = ["addi r1, r1, 1"] * 10
        result = cycles_of(loop(body, ITER))
        per_iter = result.cycles / ITER
        assert 10.0 <= per_iter <= 12.5

    def test_mul_chain_three_per_link(self):
        body = ["mul r1, r1, r2"] * 6
        result = cycles_of(loop(body, ITER, prologue="li r2, 1\nli r1, 1"))
        per_iter = result.cycles / ITER
        assert 18.0 <= per_iter <= 21.0


class TestLoadLatency:
    def test_pointer_chase_pays_load_to_use(self):
        """A dependent load chain over one hot line advances one link
        per cycle: the configured L1 hit latency is 1 and forwarding
        is full, so load-to-use is a single cycle (documented model
        approximation)."""
        source = loop(
            ["lw r1, 0(r1)"] * 6,
            ITER,
            prologue="li r1, 0x8000\nsw r1, 0(r1)",  # self-loop pointer
        )
        result = cycles_of(source)
        per_iter = result.cycles / ITER
        assert 5.8 <= per_iter <= 9.0
        # And the chain is strictly slower than the same number of
        # independent loads.
        independent = cycles_of(loop(
            [f"lw r{1 + i}, {4 * i}(r8)" for i in range(6)],
            ITER, prologue="li r8, 0x8000",
        ))
        assert independent.cycles < result.cycles * 0.95

    def test_l2_chase_pays_l2_latency(self):
        """The same chase with an L1 too small to hold the line set
        pays the 1 + 8-cycle L2 path per link."""
        # Two lines ping-ponging in a direct-mapped-ish tiny L1 would
        # need eviction; simpler: alternate two far addresses mapping
        # to the same set of a 1-way L1.
        config = TimingConfig().with_overrides(l1d_size=4096, l1d_assoc=1)
        setup = """
            li r1, 0x8000
            li r2, 0x9000
            sw r2, 0(r1)
            sw r1, 0(r2)
        """
        source = loop(["lw r1, 0(r1)"] * 4, ITER, prologue=setup)
        result = cycles_of(source, config=config)
        per_iter = result.cycles / ITER
        # 4 links x ~(1 issue + 1 + 8 L2) = ~40 cycles per iteration.
        assert 32.0 <= per_iter <= 48.0
        assert result.stats.dcache_misses > ITER * 3


class TestBranchPenalties:
    def test_mispredict_costs_backend_penalty(self):
        """Alternating-direction branch before training: each
        mispredict inserts >= 11 - (normal flow) cycles."""
        source = loop(
            [
                "andi r2, r9, 1",
                "beq r2, r0, skip",
                "addi r3, r3, 1",
                "skip:",
            ],
            ITER,
        )
        result = cycles_of(source)
        # gshare learns the alternation eventually; count actual
        # mispredicts and check the per-mispredict cost.
        mispredicts = result.stats.cond_mispredicts
        baseline_per_iter = 3.0  # ~7 instrs / fetch 3 + break
        excess = result.cycles - baseline_per_iter * ITER
        if mispredicts > 20:
            per_miss = excess / mispredicts
            assert per_miss >= 8.0

    def test_taken_brr_costs_frontend_not_backend(self):
        from repro.core.brr import HardwareCounterUnit

        always = loop(["brr 0, hit", "hit:"], ITER)  # taken every 2nd
        result = cycles_of(always, brr_unit=HardwareCounterUnit())
        config = TimingConfig()
        taken = result.stats.brr_taken
        assert taken == pytest.approx(ITER / 2, abs=2)
        # Total cost far below what backend penalties would charge.
        assert result.cycles < ITER * 2 + taken * config.backend_penalty


class TestCommitBound:
    def test_commit_width_binds_when_fetch_is_wide(self):
        """With fetch 8-wide and independent ops, 4-wide commit caps
        throughput at 4 IPC."""
        body = [f"li r{1 + (i % 7)}, {i}" for i in range(16)]
        config = TimingConfig().with_overrides(fetch_width=8)
        result = cycles_of(loop(body, ITER), config=config)
        assert result.stats.ipc <= 4.05
        assert result.stats.ipc >= 3.0
