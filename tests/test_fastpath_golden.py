"""Golden equivalence: the batched fastpath kernel vs the lock-step
reference, on every window the scorecard grades.

The fast path (:mod:`repro.timing.fastpath`) is a pure speed change —
its contract is that every :class:`~repro.timing.pipeline.TimingStats`
is byte-identical to the per-record golden loop.  These tests pin that
for all 15 Figure-12 cells and 4 Figure-13 combos, pin the
``REPRO_FAST`` opt-out knob and the engine's path/throughput
telemetry, and check the columnar trace decoder against the record
iterator it replaces.
"""

import json

import pytest

from repro.engine import (
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    RunRecorder,
    TraceStore,
)
from repro.engine.windows import MATERIALS
from repro.experiments.bench_timing import scorecard_bench_specs
from repro.experiments.fig13 import microbench_window_spec
from repro.timing.config import TimingConfig
from repro.timing.fastpath import (
    fastpath_enabled,
    fastpath_override,
    set_fastpath_override,
)
from repro.timing.runner import (
    consume_replay_info,
    record_window,
    replay_window,
    replay_window_batch,
)

SCORECARD = scorecard_bench_specs()

#: Both fast kernels must meet the same byte-identity contract; the
#: vector kernel may delegate windows outside its envelope to the loop
#: kernel, which keeps equivalence trivially.
KERNELS = ("loop", "vector")


def _record(spec):
    materials = MATERIALS[spec.kind](spec.params_dict())
    trace = record_window(materials["program"], materials["end"],
                          brr_unit=materials["brr_unit"],
                          setup=materials["setup"])
    return materials, trace


def _config(spec):
    config = spec.params_dict().get("config")
    return None if config is None else TimingConfig.from_dict(config)


class TestScorecardEquivalence:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("spec", SCORECARD,
                             ids=[spec.label() for spec in SCORECARD])
    def test_fastpath_byte_identical(self, spec, kernel):
        materials, trace = _record(spec)
        golden = replay_window(trace, materials["begin"], materials["end"],
                               config=_config(spec),
                               fast_forward=materials["fast_forward"],
                               program=materials["program"], fast="off")
        assert consume_replay_info()["timing_path"] == "golden"
        fast = replay_window(trace, materials["begin"], materials["end"],
                             config=_config(spec),
                             fast_forward=materials["fast_forward"],
                             program=materials["program"], fast=kernel)
        info = consume_replay_info()
        assert info["timing_path"] == "fast"
        assert info["replay_records_per_s"] > 0
        assert fast.stats == golden.stats
        assert fast.total_steps == golden.total_steps


class TestBatchedReplay:
    """One kernel invocation replaying several TimingConfigs of the
    same functional trace == N sequential replays, byte for byte."""

    CONFIGS = [TimingConfig(), TimingConfig(rob_entries=16),
               TimingConfig(issue_width=2, phys_regs=40)]

    def _spec(self):
        return microbench_window_spec(500, "full-dup", seed=1, kind="cbs",
                                      interval=64)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batch_matches_sequential(self, kernel):
        spec = self._spec()
        materials, trace = _record(spec)
        windows = [{"begin": materials["begin"], "end": materials["end"],
                    "config": config,
                    "fast_forward": materials["fast_forward"]}
                   for config in self.CONFIGS]
        batched = replay_window_batch(trace, windows,
                                      program=materials["program"],
                                      fast=kernel)
        info = consume_replay_info()
        assert info["batch_windows"] == len(self.CONFIGS)
        assert info["timing_path"] == "fast"
        for window, result in zip(windows, batched):
            golden = replay_window(trace, window["begin"], window["end"],
                                   config=window["config"],
                                   fast_forward=window["fast_forward"],
                                   program=materials["program"], fast="off")
            assert result.stats == golden.stats
            assert result.total_steps == golden.total_steps

    def test_batch_distinguishes_configs(self):
        # Guard against a batch accidentally replaying one config N
        # times: the shrunken-ROB member must report more cycles.
        spec = self._spec()
        materials, trace = _record(spec)
        windows = [{"begin": materials["begin"], "end": materials["end"],
                    "config": config,
                    "fast_forward": materials["fast_forward"]}
                   for config in self.CONFIGS]
        results = replay_window_batch(trace, windows,
                                      program=materials["program"],
                                      fast="vector")
        assert results[1].stats.cycles > results[0].stats.cycles


class TestFastpathKnob:
    def test_env_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        set_fastpath_override(None)
        assert fastpath_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("0", False), ("false", False), ("no", False), ("1", True),
        ("vector", True), ("loop", True), ("off", False),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_FAST", value)
        set_fastpath_override(None)
        assert fastpath_enabled() is expected

    @pytest.mark.parametrize("value,mode", [
        ("1", "vector"), ("vector", "vector"), ("loop", "loop"),
        ("0", "off"), ("off", "off"),
    ])
    def test_env_selects_kernel_mode(self, monkeypatch, value, mode):
        from repro.timing.fastpath import fastpath_mode

        monkeypatch.setenv("REPRO_FAST", value)
        set_fastpath_override(None)
        assert fastpath_mode() == mode

    def test_bad_mode_name_rejected(self):
        from repro.timing.fastpath import normalize_fast_mode

        with pytest.raises(ValueError):
            normalize_fast_mode("warp")

    def test_override_wins_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        set_fastpath_override(None)
        with fastpath_override(False):
            assert not fastpath_enabled()
            with fastpath_override(True):
                assert fastpath_enabled()
            assert not fastpath_enabled()
        assert fastpath_enabled()

    def test_replay_honours_env(self, monkeypatch):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="brr",
                                      interval=256)
        materials, trace = _record(spec)
        monkeypatch.setenv("REPRO_FAST", "0")
        set_fastpath_override(None)
        try:
            replay_window(trace, materials["begin"], materials["end"],
                          program=materials["program"])
            assert consume_replay_info()["timing_path"] == "golden"
        finally:
            set_fastpath_override(None)


class TestEngineTelemetry:
    def _engine(self, tmp_path, name, fast):
        return ExperimentEngine(
            config=EngineConfig(jobs=1, fast=fast),
            cache=ResultCache(tmp_path / f"cache-{name}", enabled=False),
            recorder=RunRecorder(tmp_path / f"{name}.jsonl"),
            trace_store=TraceStore(tmp_path / f"traces-{name}", enabled=True),
        )

    def test_jsonl_logs_path_and_throughput(self, tmp_path):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="cbs",
                                      interval=256)
        fast_engine = self._engine(tmp_path, "fast", fast=True)
        golden_engine = self._engine(tmp_path, "golden", fast=False)
        fast_payload = fast_engine.run([spec])[0]
        golden_payload = golden_engine.run([spec])[0]
        assert json.dumps(fast_payload, sort_keys=True) \
            == json.dumps(golden_payload, sort_keys=True)

        fast_line = json.loads((tmp_path / "fast.jsonl").read_text())
        golden_line = json.loads((tmp_path / "golden.jsonl").read_text())
        assert fast_line["timing_path"] == "fast"
        assert golden_line["timing_path"] == "golden"
        assert fast_line["replay_records_per_s"] > 0
        assert fast_engine.summary()["fastpath_windows"] == 1
        assert golden_engine.summary()["goldenpath_windows"] == 1

    def test_trace_handle_cache_shares_decoded_columns(self, tmp_path):
        from repro.engine.tracestore import functional_key

        spec = microbench_window_spec(300, "full-dup", seed=0, kind="brr",
                                      interval=256)
        engine = self._engine(tmp_path, "handles", fast=True)
        engine.run([spec])
        key = functional_key(spec.kind, spec.params_dict())
        first = engine.trace_store.load(key)
        second = engine.trace_store.load(key)
        assert first is second  # same handle -> columns decoded once


class TestColumnarDecoder:
    def test_columns_match_records(self):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="brr",
                                      interval=256)
        _, trace = _record(spec)
        cols = trace.columns()
        records = list(trace.records())
        assert len(cols) == cols.n_records == len(records)
        assert not cols.has_trapped
        for i, record in enumerate(records):
            assert cols.pc[i] == record.pc
            assert cols.next_pc[i] == record.next_pc
            assert cols.taken[i] == int(record.taken)
            assert cols.instrs[cols.word_id[i]] == record.instr
            expected_mem = -1 if record.mem_addr is None else record.mem_addr
            assert cols.mem_addr[i] == expected_mem

    def test_columns_memoised(self):
        spec = microbench_window_spec(300, "no-dup", seed=0, kind="cbs",
                                      interval=256)
        _, trace = _record(spec)
        assert trace.columns() is trace.columns()

    def test_columns_rejects_garbage(self):
        from repro.sim.trace_io import RecordedTrace, TraceFormatError

        with pytest.raises(TraceFormatError):
            RecordedTrace(b"BRTRgarbage-that-is-not-a-trace").columns()
