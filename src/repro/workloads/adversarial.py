"""Adversarial, predictor-aware program generation.

The paper's central mechanism is predictor pollution: ``brr`` branches
are architecturally random, so a conditional-branch predictor never
learns them, while counter-based sampling exposes its check branches
to the predictor.  SNIPPETS-style microkernels make the threshold
visible with a *randomness density* knob — of every ``stride``
branch slots, a ``density`` fraction carries fresh random outcomes
and the rest are perfectly predictable.  This module generalises
``tests/test_fastpath_fuzz.py`` into a first-class workload family
around exactly that knob, emitting valid :mod:`repro.isa` programs
with the standard marker protocol:

* ``marker 1`` — prologue done, warm-up section begins;
* ``marker 2`` — measured region begins (timing windows replay
  ``begin=(2, 1)``);
* ``marker 3`` — measured region ends (``end=(3, 1)``); the program
  then stores its checksum and halts.

Schemes
-------

``"cbs"``
    Every randomness slot is a *conditional* branch steered by a byte
    read from an entropy pool in memory.  Each loop iteration consumes
    a fresh group of ``stride`` pool bytes of which ``round(density *
    stride)`` are random coin flips and the rest are zero, so the
    predictable slots train perfectly while the random slots are
    unlearnable — counter-based sampling's pollution, dialled by
    ``density``.
``"brr"``
    The structurally matched control: the same slot grid, but the
    random slots are ``brr`` instructions (randomness stays inside the
    branch-on-random unit) and the predictable slots remain never-taken
    conditionals.  Conditional-branch accuracy should stay flat in
    ``density``.
``"mixed"``
    The differential-fuzzing program shape: seeded random blocks over
    every branch class the timing model distinguishes (conditionals,
    ``brr``/``brra``, calls, returns, indirect jumps, loops,
    load/store mixes) plus pool-branch and history-stressor groups.

Register conventions (shared by every generated block, so any subset
of blocks still assembles and halts — which is what makes the
divergence shrinker a simple block-subset search):

* ``r1`` data-buffer base, ``r2`` pool index, ``r3`` checksum,
  ``r14`` pool base — never scratch;
* ``r6``/``r7``/``r8`` measured-loop counters — never scratch;
* ``r4``, ``r5``, ``r10``-``r13`` block scratch (helpers additionally
  clobber ``r9`` and ``lr``).

The checksum accumulates only pool bytes and branch decisions — never
code addresses — so it is invariant across the native and the two-word
trap ``brr`` encodings and serves as the cross-encoding functional
oracle (see :meth:`AdversarialProgram.run_functional`).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.brr import BranchOnRandomUnit
from ..core.lfsr import Lfsr
from ..isa.asm import assemble
from ..isa.program import Program
from ..sim.machine import Machine

#: Memory layout: scratch buffer, checksum word, entropy pool.
DATA_BASE = 0x20000
CHECKSUM_ADDR = 0x11000
POOL_BASE = 0x30000

#: Offset (from ``r1``) of the link-register spill slots used by the
#: RAS-pressure call chain; random load/store blocks stay below it.
LR_SAVE_OFFSET = 0x1000

#: Marker protocol.
START_MARKER = 1
MEASURE_MARKER = 2
END_MARKER = 3

#: Registers random blocks may clobber.
_SCRATCH = (4, 5, 10, 11, 12, 13)

#: Loop-nest counter registers, outermost first.
_LOOP_REGS = (6, 7, 8)

SCHEMES = ("cbs", "brr", "mixed")


@dataclass(frozen=True)
class AdversarialSpec:
    """Shape parameters of one generated adversarial program."""

    scheme: str = "mixed"
    #: Fraction (0..1) of randomness slots that are truly random.
    density: float = 0.5
    #: Randomness slots per measured-loop iteration; the density knob
    #: applies within each group of ``stride`` slots.
    stride: int = 8
    #: Entropy-pool length in bytes; ``None`` sizes the pool so the
    #: cbs/brr schemes never re-read a byte (no learnable repetition).
    pool_bits: Optional[int] = None
    #: Iteration counts of the measured loop nest, outermost first.
    loop_shape: Tuple[int, ...] = (1,)
    #: Extra alternating (taken/not-taken) branches per iteration,
    #: diluting the global history the predictor sees between slots.
    history_stress: int = 0
    #: Depth of the ``jal`` chain exercised each iteration (RAS
    #: pressure); 0 emits no chain.
    call_depth: int = 0
    #: ``brr`` interval denominators cycled through by brr slots.
    brr_mix: Tuple[int, ...] = (2,)
    #: Random body/warm-up block counts (``mixed`` scheme only).
    blocks: int = 24
    warm_blocks: int = 4
    #: Warm-up passes over the slot grid (cbs/brr schemes).
    warm_groups: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, "
                             f"got {self.scheme!r}")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError("density must be within [0, 1]")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if not 1 <= len(self.loop_shape) <= len(_LOOP_REGS):
            raise ValueError(
                f"loop_shape depth must be 1..{len(_LOOP_REGS)}")
        if any(count < 1 for count in self.loop_shape):
            raise ValueError("loop_shape counts must be >= 1")
        if self.pool_bits is not None and (
                self.pool_bits < 1 or self.pool_bits & (self.pool_bits - 1)):
            raise ValueError("pool_bits must be a power of two")
        if not self.brr_mix or any(n < 2 for n in self.brr_mix):
            raise ValueError("brr_mix intervals must be >= 2")
        if self.history_stress < 0 or self.call_depth < 0:
            raise ValueError("stressor knobs must be non-negative")
        object.__setattr__(self, "loop_shape", tuple(self.loop_shape))
        object.__setattr__(self, "brr_mix", tuple(self.brr_mix))

    @property
    def random_slots(self) -> int:
        """Random slots per group: ``round(density * stride)``."""
        return min(self.stride, max(0, round(self.density * self.stride)))

    @property
    def iterations(self) -> int:
        """Measured-loop body executions."""
        total = 1
        for count in self.loop_shape:
            total *= count
        return total

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["loop_shape"] = list(self.loop_shape)
        data["brr_mix"] = list(self.brr_mix)
        return data


@dataclass
class FunctionalOutcome:
    """The encoding-independent projection of one functional run."""

    checksum: int
    markers: Dict[int, int]
    brr_resolved: int
    brr_taken: int
    steps: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checksum": self.checksum,
            "markers": {str(k): v for k, v in sorted(self.markers.items())},
            "brr_resolved": self.brr_resolved,
            "brr_taken": self.brr_taken,
        }


def _next_pow2(value: int) -> int:
    size = 1
    while size < value:
        size <<= 1
    return size


def _pool_block(n: int, mask: int) -> List[str]:
    """One randomness slot: a conditional steered by a pool byte."""
    return [
        "add r5, r14, r2",
        "lb r5, 0(r5)",
        "addi r2, r2, 1",
        f"andi r2, r2, {mask}",
        f"bne r5, r0, ptk{n}",
        "addi r3, r3, 1",
        f"ptk{n}:",
        "xor r3, r3, r5",
    ]


def _brr_block(n: int, interval: int) -> List[str]:
    """One randomness slot carried by ``brr`` instead of a conditional."""
    return [
        f"brr 1/{interval}, btk{n}",
        "addi r3, r3, 1",
        f"btk{n}:",
    ]


def _history_block(n: int) -> List[str]:
    """A strictly alternating branch: trivially predictable with any
    local/global state, but it occupies global-history bits."""
    return [
        "addi r10, r10, 1",
        "andi r11, r10, 1",
        f"bne r11, r0, hs{n}",
        "xor r4, r4, r11",
        f"hs{n}:",
    ]


def _mixed_block(rng: random.Random, n: int, mask: int,
                 spec: AdversarialSpec) -> List[str]:
    """One random work block (fuzz-program shape, safe register set)."""
    kind = rng.choice(
        ["arith", "load", "store", "cond", "loop", "call", "indirect",
         "brr", "brra", "jmp", "pool", "hist"])
    a = rng.choice(_SCRATCH)
    b = rng.choice(_SCRATCH)
    off = 4 * rng.randrange(0, 128)
    lines: List[str] = []
    if kind == "arith":
        lines.append(rng.choice([
            f"addi r{a}, r{b}, {rng.randrange(-64, 64)}",
            f"add r{a}, r{b}, r{rng.choice(_SCRATCH)}",
            f"mul r{a}, r{b}, r{rng.choice(_SCRATCH)}",
            f"xor r{a}, r{a}, r{b}",
        ]))
    elif kind == "load":
        lines.append(rng.choice([f"lw r{a}, {off}(r1)",
                                 f"lb r{a}, {off}(r1)"]))
    elif kind == "store":
        lines.append(rng.choice([f"sw r{a}, {off}(r1)",
                                 f"sb r{a}, {off}(r1)"]))
    elif kind == "cond":
        op = rng.choice(["beq", "bne", "blt", "bge"])
        lines.append("addi r10, r10, 1")
        lines.append(f"andi r11, r10, {rng.choice([1, 3, 7])}")
        lines.append(f"{op} r11, r{rng.choice([0, b])}, skip{n}")
        lines.append(f"addi r{a}, r{a}, 1")
        lines.append(f"skip{n}:")
    elif kind == "loop":
        # r12 is this block's loop counter, so the body must draw its
        # scratch from the remaining registers or it clobbers the
        # counter and never terminates.
        count = rng.randrange(2, 9)
        safe = [reg for reg in _SCRATCH if reg != 12]
        lines.append(f"li r12, {count}")
        lines.append(f"loop{n}:")
        lines.append(f"addi r{rng.choice(safe)}, r{rng.choice(safe)}, "
                     f"{rng.randrange(1, 5)}")
        if rng.random() < 0.4:
            lines.append(f"lw r{rng.choice(safe)}, {off}(r1)")
        lines.append("addi r12, r12, -1")
        lines.append(f"bne r12, r0, loop{n}")
    elif kind == "call":
        if spec.call_depth and rng.random() < 0.5:
            lines.append("jal depth0")
        else:
            lines.append(f"jal helper{rng.randrange(3)}")
    elif kind == "indirect":
        lines.append("jal trampoline")
    elif kind == "brr":
        interval = rng.choice(spec.brr_mix)
        lines.extend(_brr_block(n, interval))
    elif kind == "brra":
        lines.append(f"brra always{n}")
        lines.append(f"always{n}:")
        lines.append(f"addi r{a}, r{a}, 3")
    elif kind == "jmp":
        lines.append(f"jmp ahead{n}")
        lines.append(f"ahead{n}:")
    elif kind == "pool":
        lines.extend(_pool_block(n, mask))
    else:  # hist
        lines.extend(_history_block(n))
    return lines


def _helpers(spec: AdversarialSpec) -> List[str]:
    """Call targets: plain/memory/nested returns, a BTB-steered
    indirect exit, and the depth-``call_depth`` RAS-pressure chain."""
    lines = [
        "helper0:",
        "addi r4, r4, 3",
        "ret",
        "helper1:",
        f"lw r5, {LR_SAVE_OFFSET - 8}(r1)",
        f"sw r5, {LR_SAVE_OFFSET - 4}(r1)",
        "ret",
        "helper2:",
        "addi r13, lr, 0",
        "jal helper0",
        "addi lr, r13, 0",
        "ret",
        "trampoline:",
        "addi r9, lr, 0",
        "addi r4, r4, 1",
        "jr r9",
    ]
    for level in range(spec.call_depth):
        slot = LR_SAVE_OFFSET + 4 * level
        lines.append(f"depth{level}:")
        if level + 1 < spec.call_depth:
            lines += [
                f"sw lr, {slot}(r1)",
                f"jal depth{level + 1}",
                f"lw lr, {slot}(r1)",
            ]
        else:
            lines.append("addi r4, r4, 1")
        lines.append("ret")
    return lines


@dataclass
class AdversarialProgram:
    """One generated program, kept in shrinkable block form.

    ``warm_blocks`` run once between markers 1 and 2; ``body_blocks``
    run inside the measured loop nest between markers 2 and 3.  Every
    block is label-self-contained, so :meth:`replace` with any subset
    still assembles — the contract the divergence shrinker relies on.
    """

    spec: AdversarialSpec
    warm_blocks: List[List[str]]
    body_blocks: List[List[str]]
    pool: bytes
    _programs: Dict[str, Program] = field(default_factory=dict, repr=False)

    def source(self) -> str:
        lines = [
            f"li r1, {DATA_BASE}",
            f"li r14, {POOL_BASE}",
            "li r2, 0",
            "li r3, 0",
            f"marker {START_MARKER}",
        ]
        for block in self.warm_blocks:
            lines.extend(block)
        lines.append(f"marker {MEASURE_MARKER}")
        shape = self.spec.loop_shape
        for depth, count in enumerate(shape):
            lines.append(f"li r{_LOOP_REGS[depth]}, {count}")
            lines.append(f"body{depth}:")
        for block in self.body_blocks:
            lines.extend(block)
        for depth in reversed(range(len(shape))):
            reg = _LOOP_REGS[depth]
            lines.append(f"addi r{reg}, r{reg}, -1")
            lines.append(f"bne r{reg}, r0, body{depth}")
        lines += [
            f"marker {END_MARKER}",
            f"li r5, {CHECKSUM_ADDR}",
            "sw r3, 0(r5)",
            "halt",
        ]
        lines.extend(_helpers(self.spec))
        return "\n".join(lines)

    def program(self, brr_mode: str = "native") -> Program:
        cached = self._programs.get(brr_mode)
        if cached is None:
            cached = assemble(self.source(), brr_mode=brr_mode)
            self._programs[brr_mode] = cached
        return cached

    def setup(self, machine: Machine) -> None:
        """Memory-setup callback for the timing runner."""
        machine.memory.write_bytes(POOL_BASE, self.pool)

    @property
    def uses_brr(self) -> bool:
        return any("brr" in line for block in
                   self.warm_blocks + self.body_blocks for line in block)

    def brr_unit(self, lfsr_seed: Optional[int] = None) -> BranchOnRandomUnit:
        """A fresh, deterministically seeded branch-on-random unit."""
        seed = self.spec.seed if lfsr_seed is None else lfsr_seed
        return BranchOnRandomUnit(
            Lfsr(20, seed=(0xACE1 + seed * 7919) & 0xFFFFF or 1))

    def replace(self,
                warm_blocks: Optional[List[List[str]]] = None,
                body_blocks: Optional[List[List[str]]] = None,
                ) -> "AdversarialProgram":
        """A copy with some blocks removed/replaced (shrinker step)."""
        return AdversarialProgram(
            spec=self.spec,
            warm_blocks=(self.warm_blocks if warm_blocks is None
                         else list(warm_blocks)),
            body_blocks=(self.body_blocks if body_blocks is None
                         else list(body_blocks)),
            pool=self.pool,
        )

    def functional_key(self) -> Dict[str, Any]:
        return {"family": "adversarial", "knobs": self.spec.to_dict()}

    def run_functional(self, brr_mode: str = "native",
                       lfsr_seed: Optional[int] = None,
                       max_steps: int = 2_000_000) -> FunctionalOutcome:
        """Run to halt under either ``brr`` encoding and project out
        the encoding-independent outcome (checksum, marker counts,
        branch-on-random resolutions) — the trap-vs-native oracle."""
        unit = self.brr_unit(lfsr_seed)
        if brr_mode == "native":
            machine = Machine(self.program("native"), brr_unit=unit)
        elif brr_mode == "trap":
            from ..sim.trap import BrrTrapEmulator

            emulator = BrrTrapEmulator(unit)
            machine = Machine(self.program("trap"))
            emulator.install(machine)
        else:
            raise ValueError(f"unknown brr_mode {brr_mode!r}")
        self.setup(machine)
        steps = 0
        while not machine.halted and steps < max_steps:
            machine.step()
            steps += 1
        if not machine.halted:
            raise RuntimeError(f"program did not halt in {max_steps} steps")
        return FunctionalOutcome(
            checksum=machine.memory.load_word(CHECKSUM_ADDR),
            markers=dict(machine.marker_counts),
            brr_resolved=unit.resolved,
            brr_taken=unit.taken,
            steps=steps,
        )


def _slot_grid_blocks(spec: AdversarialSpec, mask: int,
                      label: int) -> Tuple[List[List[str]], int, int]:
    """One pass over the slot grid (cbs/brr schemes): the per-iteration
    blocks, the next free label id, and the pool bytes consumed."""
    blocks: List[List[str]] = []
    consumed = 0
    for slot in range(spec.stride):
        is_random = slot < spec.random_slots
        if spec.scheme == "brr" and is_random:
            interval = spec.brr_mix[slot % len(spec.brr_mix)]
            blocks.append(_brr_block(label, interval))
        else:
            blocks.append(_pool_block(label, mask))
            consumed += 1
        label += 1
    for _ in range(spec.history_stress):
        blocks.append(_history_block(label))
        label += 1
    if spec.call_depth:
        blocks.append(["jal depth0"])
    return blocks, label, consumed


def _grid_pool(spec: AdversarialSpec, per_iter: int,
               rng: random.Random) -> bytes:
    """Entropy pool for the slot grid: per iteration, the first
    ``random_slots`` conditional slots flip coins, the rest read 0."""
    iterations = spec.warm_groups + spec.iterations
    needed = max(1, per_iter * iterations)
    size = spec.pool_bits or _next_pow2(max(64, needed))
    pool = bytearray(size)
    position = 0
    cond_random = (spec.random_slots if spec.scheme == "cbs" else 0)
    for _ in range(iterations):
        for slot in range(per_iter):
            if position >= size:
                break
            if slot < cond_random:
                pool[position] = rng.getrandbits(1)
            position += 1
    return bytes(pool)


def build_adversarial(spec: Optional[AdversarialSpec] = None,
                      **knobs: Any) -> AdversarialProgram:
    """Generate one program from a spec (or spec knobs).

    Deterministic: equal specs produce byte-identical programs and
    pools, across processes (see ``tests/test_workloads_adversarial``).
    """
    if spec is None:
        spec = AdversarialSpec(**knobs)
    elif knobs:
        spec = dataclasses.replace(spec, **knobs)
    block_rng = random.Random(f"{spec.seed}:blocks")
    pool_rng = random.Random(f"{spec.seed}:pool")
    label = 0
    if spec.scheme == "mixed":
        size = spec.pool_bits or 256
        pool = bytearray(size)
        for position in range(size):
            if pool_rng.random() < spec.density:
                pool[position] = pool_rng.getrandbits(1)
        mask = size - 1
        warm: List[List[str]] = []
        for _ in range(spec.warm_blocks):
            warm.append(_mixed_block(block_rng, label, mask, spec))
            label += 1
        body: List[List[str]] = []
        for _ in range(spec.blocks):
            body.append(_mixed_block(block_rng, label, mask, spec))
            label += 1
        return AdversarialProgram(spec=spec, warm_blocks=warm,
                                  body_blocks=body, pool=bytes(pool))

    # cbs / brr: the deterministic slot grid; entropy lives in the
    # pool (cbs) or the LFSR (brr), never in the code shape.
    per_iter = spec.stride - (spec.random_slots
                              if spec.scheme == "brr" else 0)
    iterations = spec.warm_groups + spec.iterations
    size = spec.pool_bits or _next_pow2(max(64, per_iter * iterations))
    mask = size - 1
    warm = []
    for _ in range(spec.warm_groups):
        blocks, label, _ = _slot_grid_blocks(spec, mask, label)
        warm.extend(blocks)
    body, label, _ = _slot_grid_blocks(spec, mask, label)
    pool = _grid_pool(spec, per_iter, pool_rng)
    return AdversarialProgram(spec=spec, warm_blocks=warm,
                              body_blocks=body, pool=pool)
