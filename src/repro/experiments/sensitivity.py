"""Section 4.2 sensitivity analyses.

Two LFSR design choices are varied and compared against the noise
baseline of seed variation:

1. **Tap selection** — four 32-bit configurations, two with four taps
   at (32, 31, 30, 10) and (32, 19, 18, 13) and two with six taps at
   (32, 31, 30, 29, 28, 22) and (32, 22, 16, 15, 12, 11).  The paper
   "found variation in the profile quality below the level of
   significance".
2. **AND-input selection** — contiguous vs. varied-spacing bit
   selection for the probability AND tree.

Significance is assessed exactly as the paper describes: the variation
across configurations is compared with the distribution of results
achieved from initialising the LFSR with different values (seeds),
using a one-way ANOVA across configuration groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from scipy import stats as scipy_stats

from ..core.taps import PAPER_SENSITIVITY_TAPS_32
from ..engine import ExperimentEngine, run_windows
from ..workloads.dacapo import spec_by_name
from .accuracy import accuracy_window_spec


@dataclass
class SensitivityResult:
    """Accuracy samples per configuration plus the significance test."""

    label: str
    groups: Dict[str, List[float]]
    f_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Variation beyond the seed-noise level at alpha = 0.05."""
        return self.p_value < 0.05

    def group_means(self) -> Dict[str, float]:
        return {name: sum(vals) / len(vals)
                for name, vals in self.groups.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "groups": self.groups,
            "f_statistic": self.f_statistic,
            "p_value": self.p_value,
            "significant": self.significant,
        }


def _anova(groups: Dict[str, List[float]]) -> Tuple[float, float]:
    samples = [vals for vals in groups.values() if len(vals) > 1]
    if len(samples) < 2:
        raise ValueError("need at least two groups of two samples")
    f_stat, p_value = scipy_stats.f_oneway(*samples)
    return float(f_stat), float(p_value)


def _grouped_accuracies(
    labelled_specs: Sequence[Tuple[str, "object"]],
    engine: Optional[ExperimentEngine],
) -> Dict[str, List[float]]:
    """Fan every (group, seed) cell out through the engine at once."""
    payloads = run_windows([spec for _label, spec in labelled_specs],
                           engine=engine)
    groups: Dict[str, List[float]] = {}
    for (label, _spec), payload in zip(labelled_specs, payloads):
        groups.setdefault(label, []).append(
            payload["schemes"]["random"]["accuracy"])
    return groups


def taps_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    taps_sets: Sequence[Tuple[int, ...]] = PAPER_SENSITIVITY_TAPS_32,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Profile accuracy across the four 32-bit tap configurations."""
    spec = spec_by_name(benchmark)
    labelled = [
        (",".join(str(t) for t in taps),
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=32, taps=taps))
        for taps in taps_sets
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"taps sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def bit_policy_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    lfsr_width: int = 20,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Contiguous vs. spaced AND-input selection."""
    spec = spec_by_name(benchmark)
    labelled = [
        (policy,
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=lfsr_width, policy=policy))
        for policy in ("contiguous", "spaced")
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"AND-input sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def width_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    widths: Sequence[int] = (16, 20, 24, 32),
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Profile accuracy across LFSR register widths.

    The paper fixes 16 bits as the minimum and recommends 20; this
    companion analysis confirms the choice is free: width (beyond the
    16-bit minimum) does not measurably change profile quality, so it
    can be selected purely for AND-input spacing and hardware budget.
    """
    spec = spec_by_name(benchmark)
    labelled = [
        (f"{width}-bit",
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=width))
        for width in widths
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"LFSR-width sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def seed_noise_baseline(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = tuple(range(8)),
    scale: float = 0.02,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """The seed-variation distribution everything is compared against."""
    spec = spec_by_name(benchmark)
    payloads = run_windows([
        accuracy_window_spec(spec, interval, ("random",), scale, seed)
        for seed in seeds
    ], engine=engine)
    accuracies = [p["schemes"]["random"]["accuracy"] for p in payloads]
    mean = sum(accuracies) / len(accuracies)
    variance = sum((a - mean) ** 2 for a in accuracies) / (len(accuracies) - 1)
    return {
        "mean": mean,
        "std": variance ** 0.5,
        "min": min(accuracies),
        "max": max(accuracies),
    }


def format_result(result: SensitivityResult) -> str:
    lines = [result.label]
    for name, mean in result.group_means().items():
        lines.append(f"  {name:<24} mean accuracy {mean:6.2f}%")
    verdict = ("SIGNIFICANT (unexpected!)" if result.significant
               else "not significant (matches the paper)")
    lines.append(
        f"  ANOVA F={result.f_statistic:.3f} p={result.p_value:.3f} "
        f"-> {verdict}"
    )
    return "\n".join(lines)
