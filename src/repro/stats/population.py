"""Window populations: the declarative form of a figure's window space.

Before the sampling pipeline, every experiment hand-rolled its own
nested ``for benchmark ... for variant ...`` spec loop.  A
:class:`WindowPopulation` replaces those loops with data: an ordered
tuple of :class:`Cell`\\ s, where each cell is the *unit of sampling*
— the smallest group of :class:`~repro.engine.spec.WindowSpec`\\ s that
must execute together for the figure's reduction to make sense (e.g.
Figure 12 pairs each benchmark's ``none``/``cbs``/``brr`` windows in
one cell so overhead deltas stay matched).

Cells carry:

* ``id`` — unique within the population; the deterministic sampling
  rank of :class:`~repro.stats.plan.SamplingPlan` hashes it, so a
  plan's selection is stable across runs, processes and resumes;
* ``stratum`` — the grouping estimators stratify by (benchmark for the
  accuracy figures, curve for the Figure 13 sweep).  Plans allocate
  their budget proportionally across strata;
* ``mandatory`` — cells every plan must run regardless of budget
  (Figure 13's baseline windows: nothing can be normalised without
  them);
* ``tags`` — reduction metadata (interval, scheme, seed, ...) so
  consumers never parse cell ids.

``WindowPopulation.enumerate()`` answers the cells in declaration
order and ``specs()`` flattens them to the exact spec sequence the
pre-sampling exhaustive loops produced — which is what keeps
``fraction=1.0`` byte-identical to the old pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..engine.spec import WindowSpec


@dataclass(frozen=True)
class Cell:
    """The unit of sampling: specs that execute (and reduce) together."""

    id: str
    stratum: str
    specs: Tuple[WindowSpec, ...]
    mandatory: bool = False
    #: Reduction metadata as (name, value) pairs; see :meth:`tag`.
    tags: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("cell id must be non-empty")
        if not self.specs:
            raise ValueError(f"cell {self.id!r} declares no specs")

    def tag(self, name: str, default: Any = None) -> Any:
        """The value of tag ``name`` (or ``default``)."""
        for key, value in self.tags:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class WindowPopulation:
    """An ordered, enumerable-or-samplable window space."""

    name: str
    cells: Tuple[Cell, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        seen = set()
        for cell in self.cells:
            if cell.id in seen:
                raise ValueError(
                    f"population {self.name!r} has duplicate cell id "
                    f"{cell.id!r}")
            seen.add(cell.id)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of cells (the sampling-unit count)."""
        return len(self.cells)

    @property
    def n_windows(self) -> int:
        """Total window count across every cell."""
        return sum(len(cell.specs) for cell in self.cells)

    def enumerate(self) -> List[Cell]:
        """Every cell, in declaration order (the exhaustive plan)."""
        return list(self.cells)

    def specs(self) -> List[WindowSpec]:
        """Every window spec, flattened in declaration order — exactly
        the sequence the pre-population exhaustive loops produced."""
        return [spec for cell in self.cells for spec in cell.specs]

    def strata(self) -> Dict[str, List[Cell]]:
        """Cells grouped by stratum, preserving declaration order of
        both the strata and the cells within each."""
        grouped: Dict[str, List[Cell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.stratum, []).append(cell)
        return grouped

    def cell(self, cell_id: str) -> Cell:
        for candidate in self.cells:
            if candidate.id == cell_id:
                return candidate
        raise KeyError(f"population {self.name!r} has no cell {cell_id!r}")
