"""Functional simulation: memory, the architectural machine, traces,
and the SIGILL-style branch-on-random trap emulation."""

from .machine import Halted, Machine, MachineError
from .memory import Memory, MemoryError_
from .trace import TraceRecord
from .threads import ContextScheduler, ThreadContext
from .trap import BrrTrapEmulator

__all__ = [
    "Halted",
    "Machine",
    "MachineError",
    "Memory",
    "MemoryError_",
    "TraceRecord",
    "ContextScheduler",
    "ThreadContext",
    "BrrTrapEmulator",
]
