"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments.scorecard import ClaimResult, scorecard_failed


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        args = parser.parse_args(["figure9", "--scale", "0.01"])
        assert args.command == "figure9"
        assert args.scale == 0.01

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["cost"])
        # --scale is resolved per command; unset flags stay None so the
        # handlers can tell "default" from "explicit".
        assert args.scale is None
        assert args.jvm_scale is None
        assert args.chars is None
        assert args.jobs is None
        assert args.json is False
        assert args.log_jsonl is None
        assert args.timeout is None
        assert args.retries is None
        assert args.failure_policy is None
        assert args.resume_from is None

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["scorecard", "--jobs", "4", "--json",
             "--log-jsonl", "w.jsonl", "--no-cache",
             "--timeout", "30", "--retries", "5",
             "--failure-policy", "skip"])
        assert args.jobs == 4
        assert args.json is True
        assert args.log_jsonl == "w.jsonl"
        assert args.no_cache is True
        assert args.timeout == 30.0
        assert args.retries == 5
        assert args.failure_policy == "skip"

    def test_bad_failure_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cost", "--failure-policy", "yolo"])


class TestCommands:
    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "hardware budget" in out
        assert "HOLD" in out

    def test_figure9_small(self, capsys):
        assert main(["figure9", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "jython" in out and "average" in out

    def test_figure13_small(self, capsys):
        assert main(["figure13", "--scale", "600"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "brr" in out and "cbs" in out

    def test_figure2_small(self, capsys):
        assert main(["figure2", "--scale", "600"]) == 0
        out = capsys.readouterr().out
        assert "fixed (framework) cost floor" in out

    def test_out_dir_writes_tables(self, capsys, tmp_path):
        assert main(["cost", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert (tmp_path / "cost.txt").read_text() == out


class TestJsonMode:
    def test_cost_json_document(self, capsys):
        assert main(["cost", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "cost"
        assert any(row["decode_width"] == 4 for row in document["data"])
        assert {"windows", "cache_hits", "cache_misses",
                "jobs"} <= set(document["engine"])

    def test_figure9_json_reports_windows(self, capsys, tmp_path):
        assert main(["figure9", "--scale", "0.002", "--json",
                     "--out", str(tmp_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        document = json.loads(capsys.readouterr().out)
        rows = document["data"]
        assert rows[-1]["benchmark"] == "average"
        assert document["engine"]["command_windows"] > 0
        # --json --out also writes the BENCH_* trajectory artifacts.
        bench = json.loads((tmp_path / "BENCH_figure9.json").read_text())
        assert bench["data"] == rows
        lines = [json.loads(line) for line in
                 (tmp_path / "BENCH_windows.jsonl").read_text().splitlines()]
        # The ledger leads with the resume metadata line.
        assert lines[0]["record_type"] == "run_meta"
        windows = [l for l in lines if l.get("record_type") != "run_meta"]
        assert len(windows) == document["engine"]["command_windows"]
        assert all(record["kind"] == "accuracy" for record in windows)

    def test_warm_cache_rerun_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure9", "--scale", "0.002", "--json",
                     "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(["figure9", "--scale", "0.002", "--json",
                     "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["data"] == cold["data"]
        assert warm["engine"]["cache_hits"] == warm["engine"]["windows"]


class TestCacheCommand:
    """Satellite: `repro cache [stats|prune|clear]` maintains both the
    result cache and the trace store."""

    def test_parser_accepts_cache_actions(self, capsys):
        parser = build_parser()
        assert parser.parse_args(["cache"]).action is None
        for action in ("stats", "prune", "clear"):
            assert parser.parse_args(["cache", action]).action == action
        # The positional is shared with `resume`, so unknown cache
        # actions are rejected by main() rather than argparse.
        with pytest.raises(SystemExit):
            main(["cache", "explode"])
        assert "cache action" in capsys.readouterr().err

    def test_action_rejected_for_other_commands(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure9", "clear"])
        assert "only valid" in capsys.readouterr().err

    def test_stats_on_empty_stores(self, capsys, tmp_path):
        assert main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "result cache" in out and "trace store" in out
        assert str(tmp_path) in out

    def test_populate_then_clear(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure13", "--chars", "600",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()

        assert main(["cache", "--json", "--cache-dir", cache]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["action"] == "stats"
        assert stats["results"]["entries"] > 0
        assert stats["traces"]["entries"] > 0

        assert main(["cache", "clear", "--json", "--cache-dir", cache]) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["removed"]["results"] == stats["results"]["entries"]
        assert cleared["removed"]["traces"] == stats["traces"]["entries"]
        assert cleared["results"]["entries"] == 0
        assert cleared["traces"]["entries"] == 0

    def test_prune_drops_stale_versions_only(self, capsys, tmp_path):
        stale = tmp_path / "v0" / "aa"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("{}")
        (tmp_path / "traces" / "v0").mkdir(parents=True)
        (tmp_path / "traces" / "v0" / "old.trace").write_bytes(b"x")
        assert main(["cache", "prune", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["removed"] == {"results": 1, "traces": 1}
        assert not (tmp_path / "v0").exists()
        assert not (tmp_path / "traces" / "v0").exists()


class TestScaleUnification:
    """Satellite: one ``--scale`` flag across every figure command,
    with the old spellings kept as hidden deprecated aliases."""

    def test_scale_accepted_by_every_figure_command(self):
        parser = build_parser()
        for command in ("figure9", "figure10", "figure12", "figure13",
                        "figure14", "figure2", "sensitivity", "scorecard"):
            assert parser.parse_args([command, "--scale", "7"]).scale == 7.0

    def test_chars_alias_warns_and_matches_scale(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", cache]) == 0
        via_scale = capsys.readouterr().out
        with pytest.warns(DeprecationWarning, match="--chars"):
            assert main(["figure13", "--chars", "600",
                         "--cache-dir", cache]) == 0
        captured = capsys.readouterr()
        assert captured.out == via_scale
        assert "--chars is deprecated" in captured.err

    def test_jvm_scale_alias_warns(self, capsys, tmp_path):
        with pytest.warns(DeprecationWarning, match="--jvm-scale"):
            assert main(["figure12", "--jvm-scale", "0.5",
                         "--cache-dir", str(tmp_path / "cache")]) == 0
        captured = capsys.readouterr()
        assert "Figure 12" in captured.out
        assert "--jvm-scale is deprecated" in captured.err

    def test_explicit_scale_wins_over_alias(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", cache]) == 0
        via_scale = capsys.readouterr().out
        with pytest.warns(DeprecationWarning):
            assert main(["figure13", "--scale", "600", "--chars", "9999",
                         "--cache-dir", cache]) == 0
        assert capsys.readouterr().out == via_scale

    def test_scale_rejected_for_all(self, capsys):
        with pytest.raises(SystemExit):
            main(["all", "--scale", "1"])
        assert "ambiguous" in capsys.readouterr().err


class TestResumeCommand:
    """Tentpole: `repro resume RUN.jsonl` finishes an interrupted run,
    executing only the windows the first run left uncached."""

    def _run_with_log(self, tmp_path):
        cache = tmp_path / "cache"
        log = tmp_path / "run.jsonl"
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", str(cache),
                     "--log-jsonl", str(log)]) == 0
        return cache, log

    def test_run_log_starts_with_meta(self, capsys, tmp_path):
        _cache, log = self._run_with_log(tmp_path)
        capsys.readouterr()
        first = json.loads(log.read_text().splitlines()[0])
        assert first["record_type"] == "run_meta"
        assert first["command"] == "figure13"
        assert first["argv"] == ["figure13", "--scale", "600",
                                 "--cache-dir", str(tmp_path / "cache")]
        assert first["engine_config"]["failure_policy"] == "retry"

    def test_resume_fully_cached_run_executes_nothing(self, capsys,
                                                      tmp_path):
        cache, log = self._run_with_log(tmp_path)
        capsys.readouterr()
        assert main(["resume", str(log)]) == 0
        captured = capsys.readouterr()
        records = [json.loads(l) for l in log.read_text().splitlines()
                   if json.loads(l).get("record_type") != "run_meta"]
        total = len(records) // 2  # first run + replay
        assert sum(1 for r in records if r["cache"] == "hit") == total
        assert f"{total} windows already cached, 0 executed" in captured.err

    def test_resume_executes_only_missing_windows(self, capsys, tmp_path):
        import pathlib

        cache, log = self._run_with_log(tmp_path)
        capsys.readouterr()
        records = [json.loads(l) for l in log.read_text().splitlines()]
        keys = [r["key"] for r in records
                if r.get("record_type") != "run_meta"]
        # Simulate an interrupt: drop 3 windows from the durable cache.
        dropped = 0
        for path in pathlib.Path(cache).rglob("*.json"):
            if any(key in path.name for key in keys[:3]):
                path.unlink()
                dropped += 1
        assert dropped == 3
        assert main(["resume", str(log)]) == 0
        captured = capsys.readouterr()
        assert f"{len(keys) - 3} windows already cached, 3 executed" \
            in captured.err

    def test_resume_without_meta_is_an_error(self, capsys, tmp_path):
        log = tmp_path / "legacy.jsonl"
        log.write_text('{"key": "abc", "cache": "miss"}\n')
        assert main(["resume", str(log)]) == 2
        assert "no run_meta" in capsys.readouterr().err

    def test_resume_requires_a_path(self):
        with pytest.raises(SystemExit):
            main(["resume"])


class TestScorecardExitCode:
    """Satellite: CI can gate on `python -m repro scorecard`."""

    def test_scorecard_failed_predicate(self):
        ok = ClaimResult("a", True, "fine", 0.1)
        bad = ClaimResult("b", False, "broken", 0.1)
        assert not scorecard_failed([ok])
        assert scorecard_failed([ok, bad])

    def test_failing_claim_sets_exit_code(self, capsys, monkeypatch):
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "run_scorecard",
            lambda quick=True: [ClaimResult(
                "deliberately broken config", False, "boom", 0.0)])
        assert main(["scorecard"]) == 1
        assert "[FAIL] deliberately broken config" in capsys.readouterr().out

    def test_passing_scorecard_exits_zero(self, capsys, monkeypatch):
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "run_scorecard",
            lambda quick=True: [ClaimResult("fine", True, "ok", 0.0)])
        assert main(["scorecard"]) == 0

    def test_deliberately_broken_config_fails_claim(self, monkeypatch):
        """A deliberately broken hardware-cost model produces a FAIL
        verdict (not a crash), which the CLI turns into exit code 1."""
        from repro.experiments import scorecard as sc

        monkeypatch.setattr("repro.core.cost.claims_hold", lambda: False)
        results = sc.run_scorecard(checks=[
            ("hardware budget", sc._check_hardware_cost)])
        assert len(results) == 1 and not results[0].passed
        assert sc.scorecard_failed(results)

    def test_crashing_check_counts_as_failure(self):
        from repro.experiments import scorecard as sc

        def explode():
            raise RuntimeError("broken config")

        results = sc.run_scorecard(checks=[("kaboom", explode)])
        assert not results[0].passed
        assert "broken config" in results[0].detail

