#!/usr/bin/env python3
"""Non-profiling uses of branch-on-random (Sections 3.4 and 7).

Three of the paper's suggested applications:

1. **Fast PRNG** — "if the LFSR can be read efficiently by application
   software it can be used as a very fast pseudo-random number
   generator by randomized algorithms": a randomized quickselect
   driven by LFSR bits.
2. **Cooperative multithreading** — replacing CPython's
   release-the-GIL-every-N-bytecodes counter with a brr-frequency
   check in a toy bytecode interpreter.
3. **Online performance auditing** — brr dispatching among
   functionally equivalent code versions to find the fastest.

Run:  python examples/randomized_uses.py
"""

import random

from repro.core import BranchOnRandomUnit, Lfsr
from repro.sampling import VersionAuditor


# ----------------------------------------------------------------------
# 1. LFSR bits driving a randomized algorithm
# ----------------------------------------------------------------------

def quickselect(values, k, unit):
    """k-th smallest element, pivoting on LFSR randomness."""
    values = list(values)
    lo, hi = 0, len(values)
    while True:
        if hi - lo <= 1:
            return values[lo]
        pivot_index = lo + unit.random_bits(16) % (hi - lo)
        pivot = values[pivot_index]
        left = [v for v in values[lo:hi] if v < pivot]
        mid = [v for v in values[lo:hi] if v == pivot]
        right = [v for v in values[lo:hi] if v > pivot]
        values[lo:hi] = left + mid + right
        if k < lo + len(left):
            hi = lo + len(left)
        elif k < lo + len(left) + len(mid):
            return pivot
        else:
            lo, hi = lo + len(left) + len(mid), hi


def demo_prng():
    unit = BranchOnRandomUnit(Lfsr(20, seed=0x1357))
    rng = random.Random(3)
    data = [rng.randrange(100_000) for __ in range(2001)]
    data = list(dict.fromkeys(data))  # distinct values
    median = quickselect(data, len(data) // 2, unit)
    assert median == sorted(data)[len(data) // 2]
    print(f"1. randomized quickselect via LFSR bits: median={median} "
          f"(verified against sort); {unit.lfsr.updates} LFSR updates")


# ----------------------------------------------------------------------
# 2. Cooperative scheduling without a counter
# ----------------------------------------------------------------------

def demo_gil():
    """A toy interpreter yielding the 'GIL' at a brr-set frequency
    instead of counting bytecodes."""
    unit = BranchOnRandomUnit(Lfsr(20, seed=0xFEED))
    field = 6  # (1/2)^7 ~ every 128 bytecodes on average
    threads = {"A": 0, "B": 0}
    current = "A"
    switches = 0
    total = 60_000
    for __ in range(total):
        threads[current] += 1  # execute one bytecode
        if unit.resolve(field):  # release the lock?
            current = "B" if current == "A" else "A"
            switches += 1
    share = threads["A"] / total
    print(f"2. brr-scheduled interpreter: {switches} switches over "
          f"{total} bytecodes (~1/{total // max(1, switches)}); "
          f"thread A ran {100 * share:.1f}% of the time")
    assert 0.4 < share < 0.6


# ----------------------------------------------------------------------
# 3. Online performance auditing
# ----------------------------------------------------------------------

def demo_auditing():
    rng = random.Random(11)
    costs = {"loop-unrolled": 1.4, "vectorised": 1.0, "naive": 2.2}
    auditor = VersionAuditor(list(costs), audit_interval=32)
    total_cost = 0.0
    for __ in range(20_000):
        version, audited = auditor.choose()
        cost = costs[version] + rng.gauss(0, 0.1)
        total_cost += cost
        if audited:
            auditor.report(version, cost)
    print(f"3. online auditing: incumbent={auditor.incumbent!r} after "
          f"{auditor.audits} audits; mean dispatch cost "
          f"{total_cost / 20_000:.3f} (best possible 1.0, worst 2.2)")
    assert auditor.incumbent == "vectorised"


if __name__ == "__main__":
    demo_prng()
    demo_gil()
    demo_auditing()
