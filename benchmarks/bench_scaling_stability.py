"""Methodological check: per-site costs are stable across our scaling.

EXPERIMENTS.md claims the Figure 14 per-site metrics are insensitive
to the microbenchmark size beyond ~2000 characters (we run 4000 where
the paper ran 500000).  This bench measures one representative point
(Full-Duplication, interval 256) at three sizes and requires the
cycles-per-site values to agree, which is what justifies comparing our
scaled-down numbers against the paper's shapes at all.
"""

from _shared import run_once, report

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.timing.runner import cycles_per_site, time_window
from repro.workloads.microbench import END_MARKER, WARM_MARKER, build_microbench

SIZES = (1500, 3000, 6000)
INTERVAL = 256


def measure(n_chars):
    base = build_microbench(n_chars, variant="none", seed=11)
    base_t = time_window(base.program, begin=(WARM_MARKER, 1),
                         end=(END_MARKER, 1), setup=base.load_text)
    out = {}
    for kind in ("cbs", "brr"):
        bench = build_microbench(n_chars, variant="full-dup", kind=kind,
                                 interval=INTERVAL, include_payload=False,
                                 seed=11)
        unit = (BranchOnRandomUnit(Lfsr(20, seed=0x321))
                if kind == "brr" else None)
        timed = time_window(bench.program, begin=(WARM_MARKER, 1),
                            end=(END_MARKER, 1), setup=bench.load_text,
                            brr_unit=unit)
        out[kind] = cycles_per_site(base_t.cycles, timed.cycles,
                                    bench.measured_sites)
    return out


def test_per_site_costs_scale_invariant(benchmark):
    results = run_once(benchmark, lambda: {n: measure(n) for n in SIZES})

    report(f"\nScaling stability (full-dup, interval {INTERVAL}, "
           "cycles/site):")
    report(f"  {'chars':>7} {'cbs':>8} {'brr':>8} {'ratio':>7}")
    for n, values in results.items():
        ratio = values["cbs"] / max(1e-9, values["brr"])
        report(f"  {n:>7} {values['cbs']:>8.3f} {values['brr']:>8.3f} "
               f"{ratio:>7.1f}")

    cbs_values = [v["cbs"] for v in results.values()]
    brr_values = [v["brr"] for v in results.values()]
    # Within a modest band across a 4x size range.
    assert max(cbs_values) <= min(cbs_values) * 1.5
    assert max(brr_values) <= min(brr_values) * 2.2
    # The gap survives at every size.
    for values in results.values():
        assert values["cbs"] > 4 * values["brr"]
