"""Linear feedback shift registers, the paper's source of randomness.

The implementation follows the paper's Figure 6 exactly: a Fibonacci
LFSR built from D-type flip-flops in which *all bits shift right on an
update except the left-most bit, which gets the result of the XOR* of
the tapped bits.  With the Figure 6 tap set (:data:`~repro.core.taps.
FIGURE6_TAPS`), a 4-bit register seeded with ``0001`` walks the exact
15-state sequence printed in the figure.

The module also implements the paper's Section 3.4 *deterministic
implementation* machinery:

* **shift-back recovery** — speculative updates are undone by keeping
  the bits that "would have shifted off the end of the LFSR (one
  additional bit per speculative branch-on-random allowed) and shifting
  back";
* **scan-chain access** — :meth:`Lfsr.read_scan` / :meth:`Lfsr.
  write_scan` model hooking the LFSR to an existing scan chain so
  testers (or, for the software-visible variant, applications) can read
  and write it, e.g. to save/restore it across context switches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .taps import default_taps, taps_are_maximal, taps_to_polynomial


class LfsrError(Exception):
    """Raised for invalid LFSR construction or operation."""


try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9
    def _popcount(value: int) -> int:
        return bin(value).count("1")


#: Cached ``M^width`` advance matrices keyed by ``(width, taps)`` —
#: the "emit one register's worth of output bits, hop the state"
#: operator behind :meth:`Lfsr.step_words`.  Tap sets are tiny and
#: few, so the cache is unbounded.
_ADVANCE_CACHE: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}


class Lfsr:
    """A right-shifting Fibonacci LFSR.

    Parameters
    ----------
    width:
        Number of flip-flops in the register.
    taps:
        Tap positions in the standard descending notation
        ``(width, a, b, ...)`` denoting the feedback polynomial
        ``x^width + x^a + ... + 1``.  Defaults to the canonical
        maximal-length set for ``width``.
    seed:
        Initial register contents; any non-zero ``width``-bit value.
    history_bits:
        Capacity of the shift-back history used for speculative
        recovery (Section 3.4).  ``0`` disables checkpointing, which
        matches the paper's baseline non-deterministic implementation.
    """

    def __init__(
        self,
        width: int,
        taps: Optional[Sequence[int]] = None,
        seed: int = 1,
        history_bits: int = 0,
    ) -> None:
        if width < 2:
            raise LfsrError(f"LFSR width must be >= 2, got {width}")
        self.width = width
        self.taps: Tuple[int, ...] = (
            tuple(taps) if taps is not None else default_taps(width)
        )
        if self.taps[0] != width:
            raise LfsrError(
                f"leading tap {self.taps[0]} must equal the width {width}"
            )
        # The recurrence o[t+n] = XOR of o[t+a] for the sub-degree
        # exponents a (plus a=0 from the implicit +1 term), which in the
        # right-shift register means XORing bits a and bit 0.
        taps_to_polynomial(self.taps)  # validates ordering/range
        self._tap_bits: Tuple[int, ...] = tuple(
            sorted({t for t in self.taps if t < width} | {0})
        )
        self._mask = (1 << width) - 1
        self._state = 0
        self.write_scan(seed)
        self._history: deque = deque(maxlen=history_bits) if history_bits else deque(maxlen=0)
        self.history_bits = history_bits
        #: Number of updates applied over the LFSR's lifetime.  The
        #: hardware clocks the register only on cycles where a
        #: branch-on-random is decoded; this counter is the software
        #: analogue for power/usage accounting.
        self.updates = 0

    # ------------------------------------------------------------------
    # State access (scan chain / software-visible register)
    # ------------------------------------------------------------------

    @property
    def state(self) -> int:
        """Current register contents as an int (bit 0 = right-most)."""
        return self._state

    def read_scan(self) -> int:
        """Read the register through the scan chain."""
        return self._state

    def write_scan(self, value: int) -> None:
        """Write the register through the scan chain.

        The all-zero state is the LFSR's single fixed point and is
        rejected, as the register would never leave it.
        """
        value &= self._mask
        if value == 0:
            raise LfsrError("LFSR state must be non-zero")
        self._state = value

    def bit(self, position: int) -> int:
        """Bit ``position`` of the register, 0 = right-most (output)."""
        if not 0 <= position < self.width:
            raise LfsrError(
                f"bit position {position} out of range for width {self.width}"
            )
        return (self._state >> position) & 1

    def bits(self, positions: Sequence[int]) -> List[int]:
        """Read several bit positions at once."""
        return [self.bit(p) for p in positions]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _feedback(self) -> int:
        fb = 0
        state = self._state
        for b in self._tap_bits:
            fb ^= (state >> b) & 1
        return fb

    def step(self) -> int:
        """Advance one update; return the bit shifted off the end."""
        out = self._state & 1
        fb = self._feedback()
        self._state = (self._state >> 1) | (fb << (self.width - 1))
        if self._history.maxlen:
            self._history.append(out)
        self.updates += 1
        return out

    def step_many(self, count: int) -> None:
        """Advance ``count`` updates (no per-step output).

        Large advances hop the register through a GF(2) matrix power
        instead of clocking bit-at-a-time; the final state, update
        counter and shift-back history are identical to ``count``
        individual :meth:`step` calls (only the last ``history_bits``
        outputs can ever be recovered, so only those are replayed).
        """
        if count <= 0:
            return
        tail = min(count, self._history.maxlen or 0)
        skip = count - tail
        if skip < 4 * self.width:
            # Not worth building matrix powers; clock it.
            for _ in range(count):
                self.step()
            return
        power = self._mat_pow(skip)
        self._state = self._mat_vec(power, self._state)
        self.updates += skip
        for _ in range(tail):
            self.step()

    def step_words(self, words: int) -> List[int]:
        """Generate ``words`` 64-bit words of the output bit-stream.

        Bit ``i`` of word ``k`` is the outcome of update ``64*k + i``
        (i.e. the stream reads LSB-first); the register advances
        ``64 * words`` updates.  Exploits the Fibonacci structure: the
        next ``width`` output bits *are* the current register contents
        (low bit first), so the stream is read one register at a time
        and the state hops through the cached ``M^width`` matrix
        instead of clocking per bit.  State, shift-back history and
        the update counter end exactly as ``64 * words`` individual
        :meth:`step` calls would leave them.
        """
        if words < 0:
            raise LfsrError("step_words count must be non-negative")
        total = words * 64
        if total == 0:
            return []
        width = self.width
        advance = self._advance_matrix()
        mat_vec = self._mat_vec
        state = self._state
        out: List[int] = []
        acc = 0
        filled = 0
        produced = 0
        while produced + width <= total:
            acc |= state << filled
            filled += width
            produced += width
            state = mat_vec(advance, state)
            while filled >= 64:
                out.append(acc & 0xFFFFFFFFFFFFFFFF)
                acc >>= 64
                filled -= 64
        rest = total - produced
        if rest:
            acc |= (state & ((1 << rest) - 1)) << filled
            filled += rest
            tap_bits = self._tap_bits
            for _ in range(rest):
                fb = 0
                for b in tap_bits:
                    fb ^= (state >> b) & 1
                state = (state >> 1) | (fb << (width - 1))
            while filled >= 64:
                out.append(acc & 0xFFFFFFFFFFFFFFFF)
                acc >>= 64
                filled -= 64
        self._state = state
        history = self._history
        if history.maxlen:
            keep = min(total, history.maxlen)
            for p in range(total - keep, total):
                history.append((out[p >> 6] >> (p & 63)) & 1)
        self.updates += total
        return out

    def shift_back(self, count: int = 1) -> None:
        """Undo ``count`` speculative updates (Section 3.4).

        Recovery reconstructs the prior state from the saved
        shifted-out bits: the left-most (feedback) bit is discarded and
        each saved bit re-enters on the right.
        """
        if count < 0:
            raise LfsrError("shift_back count must be non-negative")
        if count > len(self._history):
            raise LfsrError(
                f"cannot shift back {count} updates; only "
                f"{len(self._history)} saved bits available"
            )
        for _ in range(count):
            saved = self._history.pop()
            self._state = ((self._state << 1) & self._mask) | saved
            self.updates -= 1

    # ------------------------------------------------------------------
    # Sequence utilities
    # ------------------------------------------------------------------

    def sequence(self, limit: int) -> Iterator[int]:
        """Yield up to ``limit`` successive states, starting with the
        current one, advancing the register as it goes."""
        for _ in range(limit):
            yield self._state
            self.step()

    def period(self, limit: Optional[int] = None) -> int:
        """Measure the cycle length from the current state.

        Walks the register (on a scratch copy) until the start state
        recurs.  ``limit`` bounds the walk; it defaults to ``2**width``
        which is only practical for small widths.
        """
        if limit is None:
            limit = 1 << self.width
        scratch = Lfsr(self.width, self.taps, seed=self._state)
        start = scratch.state
        for count in range(1, limit + 1):
            scratch.step()
            if scratch.state == start:
                return count
        raise LfsrError(f"no cycle found within {limit} steps")

    def is_maximal(self) -> bool:
        """True iff the tap set's polynomial is primitive (full period)."""
        return taps_are_maximal(self.taps)

    def one_probability(self) -> float:
        """Exact probability that a given bit reads 1 over a full period.

        Footnote 2 of the paper: an n-bit maximal LFSR visits
        ``2**n - 1`` states and each bit is 1 in ``2**(n-1)`` of them,
        so the probability is ``2**(n-1) / (2**n - 1)`` (0.5000076 for
        n = 16).
        """
        return float(1 << (self.width - 1)) / float((1 << self.width) - 1)

    # ------------------------------------------------------------------
    # Jump-ahead
    # ------------------------------------------------------------------

    def _transition_matrix(self) -> List[int]:
        """The one-step state-transition matrix over GF(2).

        Row ``i`` is a bitmask of the current-state bits XORed into new
        bit ``i``: bits 0..n-2 shift from their left neighbour; bit
        n-1 is the tap XOR.
        """
        rows = [1 << (i + 1) for i in range(self.width - 1)]
        tap_mask = 0
        for bit in self._tap_bits:
            tap_mask |= 1 << bit
        rows.append(tap_mask)
        return rows

    @staticmethod
    def _mat_vec(rows: List[int], vector: int) -> int:
        out = 0
        for i, row in enumerate(rows):
            out |= (_popcount(row & vector) & 1) << i
        return out

    @staticmethod
    def _mat_mul(a: List[int], b: List[int]) -> List[int]:
        out = []
        for row in a:
            acc = 0
            j = 0
            while row:
                if row & 1:
                    acc ^= b[j]
                row >>= 1
                j += 1
            out.append(acc)
        return out

    def _mat_pow(self, exponent: int) -> Optional[List[int]]:
        """``M^exponent`` by repeated squaring (``None`` = identity)."""
        power = None  # identity, represented lazily
        base = self._transition_matrix()
        remaining = exponent
        while remaining:
            if remaining & 1:
                power = base if power is None else self._mat_mul(base, power)
            remaining >>= 1
            if remaining:
                base = self._mat_mul(base, base)
        return power

    def _advance_matrix(self) -> List[int]:
        """``M^width``, cached per ``(width, taps)`` across instances."""
        key = (self.width, self.taps)
        matrix = _ADVANCE_CACHE.get(key)
        if matrix is None:
            matrix = self._mat_pow(self.width)
            _ADVANCE_CACHE[key] = matrix
        return matrix

    def jump(self, count: int) -> None:
        """Advance ``count`` updates in O(width^2 log count) time.

        Exploits the LFSR's linearity over GF(2): the state after
        ``count`` steps is ``M^count · s``.  Lets software place many
        decorrelated streams along one maximal cycle (e.g. one LFSR
        seed per thread) without stepping through the gap.
        """
        if count < 0:
            raise LfsrError("jump count must be non-negative")
        power = self._mat_pow(count)
        if power is not None:
            self._state = self._mat_vec(power, self._state)
        self.updates += count
        # A jump is not a sequence of recoverable shifts.
        self._history.clear()

    # ------------------------------------------------------------------

    def clone(self) -> "Lfsr":
        """An independent copy with identical state and configuration."""
        copy = Lfsr(
            self.width, self.taps, seed=self._state, history_bits=self.history_bits
        )
        copy._history = deque(self._history, maxlen=self._history.maxlen)
        copy.updates = self.updates
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Lfsr(width={self.width}, taps={self.taps}, "
            f"state={self._state:0{self.width}b})"
        )
