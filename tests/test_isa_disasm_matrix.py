"""Disassembler rendering matrix: every format, with and without an
address context."""

import pytest

from repro.isa.disasm import disassemble_word, format_instruction
from repro.isa.instructions import Instruction, Op, encode


CASES = [
    (Instruction(Op.ADD, rd=1, ra=2, rb=3), "add r1, r2, r3"),
    (Instruction(Op.ADDI, rd=4, ra=5, imm=-7), "addi r4, r5, -7"),
    (Instruction(Op.LI, rd=9, imm=1000), "li r9, 1000"),
    (Instruction(Op.LW, rd=2, ra=14, imm=8), "lw r2, 8(r14)"),
    (Instruction(Op.SB, rd=3, ra=1, imm=-2), "sb r3, -2(r1)"),
    (Instruction(Op.JR, ra=15), "jr r15"),
    (Instruction(Op.MARKER, imm=42), "marker 42"),
    (Instruction(Op.NOP), "nop"),
    (Instruction(Op.HALT), "halt"),
]


@pytest.mark.parametrize("instr,text", CASES,
                         ids=[c[1] for c in CASES])
def test_render_without_address(instr, text):
    assert format_instruction(instr) == text
    assert disassemble_word(encode(instr)) == text


RELATIVE_CASES = [
    (Instruction(Op.BEQ, ra=1, rb=2, imm=3), ".+3"),
    (Instruction(Op.JMP, imm=-4), ".-4"),
    (Instruction(Op.BRR, freq=9, imm=0), "brr 1/1024, .+0"),
    (Instruction(Op.BRRA, imm=2), "brra .+2"),
]


@pytest.mark.parametrize("instr,needle", RELATIVE_CASES,
                         ids=[c[1] for c in RELATIVE_CASES])
def test_render_relative_targets(instr, needle):
    assert needle in format_instruction(instr)


def test_render_absolute_targets_with_address():
    instr = Instruction(Op.BEQ, ra=1, rb=2, imm=3)
    # target = 0x100 + 4 + 3*4 = 0x110
    assert format_instruction(instr, addr=0x100).endswith("0x110")
    jump = Instruction(Op.JMP, imm=-2)
    # target = 0x20 + 4 - 8 = 0x1c
    assert format_instruction(jump, addr=0x20).endswith("0x1c")


def test_brr_interval_rendering_all_fields():
    for field in range(16):
        text = format_instruction(Instruction(Op.BRR, freq=field, imm=0))
        assert f"1/{1 << (field + 1)}" in text
