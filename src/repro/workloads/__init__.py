"""Workloads: DaCapo-like invocation streams, the checksum
microbenchmark, and the Shakespeare-like text generator."""

from .dacapo import (
    DACAPO_BENCHMARKS,
    DacapoSpec,
    event_chunks,
    generate_events,
    method_weights,
    spec_by_name,
)
from .microbench import (
    END_MARKER,
    PROFILE_BASE,
    SITES,
    TEXT_BASE,
    WARM_MARKER,
    Microbench,
    build_cfg,
    build_microbench,
)
from .text import (
    class_counts,
    classify,
    generate_text,
    reference_checksum,
    site_encounters,
)

__all__ = [
    "DACAPO_BENCHMARKS",
    "DacapoSpec",
    "event_chunks",
    "generate_events",
    "method_weights",
    "spec_by_name",
    "END_MARKER",
    "PROFILE_BASE",
    "SITES",
    "TEXT_BASE",
    "WARM_MARKER",
    "Microbench",
    "build_cfg",
    "build_microbench",
    "class_counts",
    "classify",
    "generate_text",
    "reference_checksum",
    "site_encounters",
]
