"""Section 4.2 sensitivity: AND-tree input selection.

Paper result: the profiling application is "robust ... to which bits
of the LFSR register are sampled" — contiguous vs. varied-spacing
AND inputs are statistically indistinguishable, so the selection can
be made "for implementation ease".
"""


from _shared import run_once, report

from repro.experiments import (
    bit_policy_sensitivity,
    format_sensitivity_result,
    width_sensitivity,
)


def test_bit_policy_sensitivity(benchmark):
    result = run_once(
        benchmark,
        lambda: bit_policy_sensitivity(benchmark="bloat",
                                       seeds=(0, 1, 2, 3), scale=0.02),
    )
    report(format_sensitivity_result(result))

    assert set(result.groups) == {"contiguous", "spaced"}
    assert not result.significant  # matches the paper
    means = result.group_means()
    assert abs(means["contiguous"] - means["spaced"]) < 2.0


def test_bit_policy_on_resonant_benchmark(benchmark):
    """Even on jython, where sampling placement matters most, the bit
    selection does not."""
    result = run_once(
        benchmark,
        lambda: bit_policy_sensitivity(benchmark="jython",
                                       seeds=(0, 1, 2), scale=0.01),
    )
    report(format_sensitivity_result(result))
    assert not result.significant


def test_width_sensitivity(benchmark):
    """Companion analysis: register width beyond the 16-bit minimum
    does not measurably change profile quality (the 20-bit choice is
    free to make on hardware grounds)."""
    result = run_once(
        benchmark,
        lambda: width_sensitivity(benchmark="bloat", seeds=(0, 1, 2),
                                  scale=0.02),
    )
    report(format_sensitivity_result(result))
    assert not result.significant
