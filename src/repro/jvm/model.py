"""Program model for the mini-JVM substrate.

The Figure 12 experiments run "DaCapo benchmarks running on Jikes"
with the adaptive optimizer off, so every method is baseline-compiled
with method-execution-frequency instrumentation.  What that requires
of a substrate is: methods with bodies of varying size, real
call/return linkage through a stack, loops (whose backedges are where
Full-Duplication re-checks), and a per-method invocation counter as
the instrumentation payload.  This module is the AST for such
programs; :mod:`repro.jvm.compiler` is the baseline compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union


class JvmError(Exception):
    """Malformed program specification."""


@dataclass(frozen=True)
class Work:
    """``amount`` dependent ALU instructions of busy work."""

    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise JvmError("work amount must be non-negative")


@dataclass(frozen=True)
class Call:
    """Invoke another method."""

    callee: str


@dataclass(frozen=True)
class Marker:
    """Emit a simulation marker (Section 5.1 magic instruction)."""

    marker_id: int


@dataclass(frozen=True)
class Loop:
    """A counted loop; the body may contain further statements.

    Loops may nest at most two deep (the compiler dedicates one saved
    register per nesting level, like a baseline register allocator
    with a fixed assignment)."""

    count: int
    body: Sequence["Stmt"]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise JvmError("loop count must be >= 1")


Stmt = Union[Work, Call, Marker, Loop]


@dataclass
class MethodSpec:
    """One method: a name and a statement body."""

    name: str
    body: List[Stmt] = field(default_factory=list)


@dataclass
class JvmProgram:
    """A whole program: methods plus the entry method name."""

    methods: Dict[str, MethodSpec]
    entry: str = "main"

    def __post_init__(self) -> None:
        if self.entry not in self.methods:
            raise JvmError(f"entry method {self.entry!r} missing")
        for method in self.methods.values():
            self._check_calls(method.body, method.name)
        self._check_recursion(self.entry, [])

    def _check_recursion(self, name: str, stack: List[str]) -> None:
        """Reject call cycles: the static invocation accounting (and a
        fixed stack budget) assume a call tree."""
        if name in stack:
            cycle = " -> ".join(stack + [name])
            raise JvmError(f"recursive call cycle: {cycle}")

        def walk(body: Sequence[Stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, Call):
                    self._check_recursion(stmt.callee, stack + [name])
                elif isinstance(stmt, Loop):
                    walk(stmt.body)

        walk(self.methods[name].body)

    def _check_calls(self, body: Sequence[Stmt], where: str,
                     depth: int = 0) -> None:
        for stmt in body:
            if isinstance(stmt, Call) and stmt.callee not in self.methods:
                raise JvmError(
                    f"{where} calls unknown method {stmt.callee!r}"
                )
            if isinstance(stmt, Loop):
                if depth >= 2:
                    raise JvmError(
                        f"{where}: loops nest deeper than 2 levels"
                    )
                self._check_calls(stmt.body, where, depth + 1)

    def method_ids(self) -> Dict[str, int]:
        """Stable method-id assignment (profile array slots)."""
        return {name: index for index, name in enumerate(self.methods)}

    def static_invocations(self, iterations_resolved: bool = True) -> Dict[str, int]:
        """Expected dynamic invocation count per method, computed from
        the AST (loops multiply, calls add).  Useful for sizing
        experiments and validating functional runs."""
        counts = {name: 0 for name in self.methods}

        def walk(body: Sequence[Stmt], multiplier: int) -> None:
            for stmt in body:
                if isinstance(stmt, Call):
                    counts[stmt.callee] += multiplier
                    walk(self.methods[stmt.callee].body, multiplier)
                elif isinstance(stmt, Loop):
                    walk(stmt.body, multiplier * stmt.count)

        counts[self.entry] += 1
        walk(self.methods[self.entry].body, 1)
        return counts
