"""Tests for statistics helpers and the Figure 2 decomposition."""

import pytest

from repro.analysis import (
    decompose,
    fit_through_origin,
    format_decomposition,
    geometric_mean,
    mean,
    sample_std,
    welch_t,
)
from repro.experiments.fig13 import MicrobenchSweep, SweepPoint


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_sample_std(self):
        assert sample_std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            2.138, abs=1e-3)

    def test_sample_std_needs_two(self):
        with pytest.raises(ValueError):
            sample_std([1])

    def test_fit_through_origin_exact(self):
        slope, r2 = fit_through_origin([1, 2, 3], [2, 4, 6])
        assert slope == pytest.approx(2.0)
        assert r2 == pytest.approx(1.0)

    def test_fit_with_noise(self):
        slope, r2 = fit_through_origin([1, 2, 3, 4], [2.1, 3.9, 6.2, 7.8])
        assert slope == pytest.approx(1.97, abs=0.05)
        assert r2 > 0.98

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_through_origin([1], [2])
        with pytest.raises(ValueError):
            fit_through_origin([0, 0], [1, 2])

    def test_welch(self):
        t, p = welch_t([1, 2, 3, 4], [10, 11, 12, 13])
        assert p < 0.01
        t2, p2 = welch_t([1, 2, 3, 4], [1.1, 2.1, 2.9, 4.0])
        assert p2 > 0.5

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1, 0])


def synthetic_sweep():
    """A sweep following Figure 2's model exactly: framework overhead
    has a fixed floor, instrumentation overhead is proportional to the
    sampling rate."""
    sweep = MicrobenchSweep(
        n_chars=100, sites=100, base_cycles=1000,
        base_branch_accuracy=0.9, base_l1i_hit_rate=1.0,
        base_l1d_hit_rate=1.0, full_instr_overhead=50.0,
        full_instr_cycles_per_site=4.3,
    )
    fixed = 5.0
    for interval in (2, 4, 8, 16):
        rate = 1.0 / interval
        framework = fixed + 20.0 * rate
        sweep.points.append(SweepPoint(
            "cbs", "full-dup", interval, False,
            cycles=int(1000 * (1 + framework / 100)),
            overhead=framework, cycles_per_site=framework / 10,
        ))
        sweep.points.append(SweepPoint(
            "cbs", "full-dup", interval, True,
            cycles=int(1000 * (1 + (framework + 40 * rate) / 100)),
            overhead=framework + 40.0 * rate,
            cycles_per_site=(framework + 40 * rate) / 10,
        ))
    return sweep


class TestDecomposition:
    def test_recovers_components(self):
        decomposition = decompose(synthetic_sweep(), "cbs", "full-dup")
        # Fixed floor: framework overhead at interval 16 = 5 + 20/16.
        assert decomposition.fixed_cost == pytest.approx(6.25)
        # Variable (instrumentation) slope: 40% per unit rate.
        assert decomposition.variable_slope == pytest.approx(40.0)
        assert decomposition.variable_r_squared == pytest.approx(1.0)

    def test_rows_ordered_by_interval(self):
        decomposition = decompose(synthetic_sweep(), "cbs", "full-dup")
        intervals = [r.interval for r in decomposition.rows]
        assert intervals == sorted(intervals)

    def test_missing_curves_rejected(self):
        with pytest.raises(ValueError):
            decompose(synthetic_sweep(), "brr", "full-dup")

    def test_format(self):
        text = format_decomposition(decompose(synthetic_sweep(), "cbs",
                                              "full-dup"))
        assert "fixed (framework) cost floor" in text
        assert "R^2" in text
