"""Tests for the synthetic DaCapo invocation streams."""

import numpy as np
import pytest

from repro.workloads.dacapo import (
    DACAPO_BENCHMARKS,
    DacapoSpec,
    event_chunks,
    generate_events,
    method_weights,
    spec_by_name,
)


class TestSpecs:
    def test_paper_ordering(self):
        names = [s.name for s in DACAPO_BENCHMARKS]
        assert names == ["fop", "antlr", "bloat", "lusearch", "xalan",
                         "jython", "pmd", "luindex"]
        counts = [s.invocations_millions for s in DACAPO_BENCHMARKS]
        assert counts == sorted(counts)
        assert counts == [7, 17, 93, 108, 109, 170, 195, 212]

    def test_spec_by_name(self):
        assert spec_by_name("jython").pattern_fraction > 0
        with pytest.raises(KeyError):
            spec_by_name("chart")  # paper: would not run on Jikes

    def test_resonant_benchmarks(self):
        assert spec_by_name("jython").pattern_period == 2
        assert spec_by_name("pmd").pattern_period == 2048
        assert spec_by_name("luindex").pattern_fraction == 0.0


class TestWeights:
    def test_normalised(self):
        weights = method_weights(spec_by_name("bloat"))
        assert weights.sum() == pytest.approx(1.0)
        assert len(weights) == spec_by_name("bloat").methods

    def test_hot_first(self):
        weights = method_weights(spec_by_name("xalan"))
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_skewed(self):
        weights = method_weights(spec_by_name("luindex"))
        assert weights[:20].sum() > 0.4  # hot subset dominates

    def test_benchmarks_differ(self):
        wa = method_weights(spec_by_name("bloat"))
        wb = method_weights(spec_by_name("pmd"))
        assert wa.shape != wb.shape or not np.allclose(wa, wb)


class TestStreams:
    def test_scaled_length(self):
        spec = spec_by_name("fop")
        events = generate_events(spec, scale=0.001)
        assert len(events) == int(7e6 * 0.001)

    def test_chunks_concatenate_to_whole(self):
        spec = spec_by_name("fop")
        whole = generate_events(spec, scale=0.003, seed=5)
        chunks = list(event_chunks(spec, scale=0.003, seed=5,
                                   chunk_size=10_000))
        assert sum(c.size for c in chunks) == whole.size
        assert np.array_equal(np.concatenate(chunks), whole)
        assert all(c.size == 10_000 for c in chunks[:-1])

    def test_deterministic_per_seed(self):
        spec = spec_by_name("bloat")
        a = generate_events(spec, scale=0.0005, seed=1)
        b = generate_events(spec, scale=0.0005, seed=1)
        c = generate_events(spec, scale=0.0005, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_method_ids_in_range(self):
        spec = spec_by_name("pmd")
        events = generate_events(spec, scale=0.001)
        assert events.min() >= 0
        assert events.max() < spec.methods

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_events(spec_by_name("fop"), scale=0)

    def test_jython_contains_alternating_pattern(self):
        spec = spec_by_name("jython")
        events = generate_events(spec, scale=0.005, seed=0)
        # Find a run where methods 0/1 strictly alternate for a long
        # stretch (the patterned region).
        pattern = np.tile(np.array([0, 1], dtype=np.int32), 512)
        windows = np.lib.stride_tricks.sliding_window_view(events, 1024)
        hits = np.all(windows[:: 1024] == pattern, axis=1)
        assert hits.any()

    def test_pattern_fraction_roughly_respected(self):
        spec = spec_by_name("jython")
        events = generate_events(spec, scale=0.01, seed=0)
        # Methods 0 and 1 together should carry at least the patterned
        # fraction of all events.
        share = np.isin(events, (0, 1)).mean()
        assert share > spec.pattern_fraction * 0.9

    def test_unpatterned_benchmark_not_alternating(self):
        events = generate_events(spec_by_name("luindex"), scale=0.001)
        pairwise_alternating = np.mean(events[:-1] != events[1:])
        assert pairwise_alternating < 1.0  # some repeats exist


class TestCustomSpec:
    def test_zero_pattern_fraction(self):
        spec = DacapoSpec("custom", 1, methods=10, pattern_fraction=0.0)
        events = generate_events(spec, scale=0.01)
        assert len(events) == 10_000

    def test_pattern_runs_split_period(self):
        spec = DacapoSpec("custom", 1, methods=10, pattern_fraction=0.5,
                          pattern_period=8, pattern_runs=2,
                          pattern_block=1 << 14)
        events = generate_events(spec, scale=0.02, seed=0)
        # Patterned regions contain runs of 4 identical ids.
        assert events.size == 20_000
