"""Tests for instruction encode/decode and classification."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import (
    LINK_REG,
    EncodingError,
    Format,
    Instruction,
    InvalidOpcodeError,
    Op,
    decode,
    encode,
)


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr))


class TestRoundTrip:
    def test_r_type(self):
        instr = Instruction(Op.ADD, rd=1, ra=2, rb=3)
        assert roundtrip(instr) == instr

    def test_i_type_negative_imm(self):
        instr = Instruction(Op.ADDI, rd=4, ra=5, imm=-123)
        assert roundtrip(instr) == instr

    def test_i_type_extremes(self):
        for imm in (-(1 << 17), (1 << 17) - 1):
            instr = Instruction(Op.ADDI, rd=0, ra=0, imm=imm)
            assert roundtrip(instr) == instr

    def test_li(self):
        instr = Instruction(Op.LI, rd=7, imm=-(1 << 21))
        assert roundtrip(instr) == instr

    def test_mem(self):
        instr = Instruction(Op.LW, rd=3, ra=9, imm=-64)
        assert roundtrip(instr) == instr

    def test_branch(self):
        instr = Instruction(Op.BEQ, ra=1, rb=2, imm=-200)
        assert roundtrip(instr) == instr

    def test_jump(self):
        instr = Instruction(Op.JAL, imm=(1 << 25) - 1)
        assert roundtrip(instr) == instr

    def test_jr(self):
        instr = Instruction(Op.JR, ra=15)
        assert roundtrip(instr) == instr

    def test_brr_figure5_format(self):
        """Figure 5: opcode | 4-bit freq | target."""
        instr = Instruction(Op.BRR, freq=9, imm=-17)
        word = encode(instr)
        assert (word >> 26) == int(Op.BRR)
        assert (word >> 22) & 0xF == 9
        assert roundtrip(instr) == instr

    def test_marker(self):
        instr = Instruction(Op.MARKER, imm=12345)
        assert roundtrip(instr) == instr

    def test_none_format(self):
        assert roundtrip(Instruction(Op.HALT)) == Instruction(Op.HALT)
        assert roundtrip(Instruction(Op.NOP)) == Instruction(Op.NOP)


class TestEncodingErrors:
    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.ADD, rd=16, ra=0, rb=0))

    def test_imm_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.ADDI, rd=0, ra=0, imm=1 << 17))

    def test_freq_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.BRR, freq=16, imm=0))

    def test_marker_negative(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Op.MARKER, imm=-1))

    def test_invalid_opcode_decode(self):
        with pytest.raises(InvalidOpcodeError) as info:
            decode(0x3D << 26, pc=0x40)
        assert info.value.pc == 0x40


class TestClassification:
    def test_cond_branches(self):
        for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
            instr = Instruction(op)
            assert instr.is_branch and instr.is_cond_branch
            assert not instr.is_brr and not instr.is_uncond_direct

    def test_brr_is_branch_not_conditional(self):
        instr = Instruction(Op.BRR, freq=0)
        assert instr.is_branch and instr.is_brr
        assert not instr.is_cond_branch

    def test_brra_is_brr_and_direct(self):
        instr = Instruction(Op.BRRA)
        assert instr.is_brr and instr.is_uncond_direct

    def test_call_and_return(self):
        assert Instruction(Op.JAL).is_call
        assert Instruction(Op.JR, ra=LINK_REG).is_return
        assert not Instruction(Op.JR, ra=3).is_return
        assert Instruction(Op.JR, ra=3).is_indirect

    def test_memory_classification(self):
        assert Instruction(Op.LW).is_load and Instruction(Op.LW).is_mem
        assert Instruction(Op.SB).is_store and not Instruction(Op.SB).is_load

    def test_sources_r_type(self):
        assert Instruction(Op.ADD, rd=1, ra=2, rb=3).sources() == (2, 3)

    def test_sources_store_includes_data(self):
        assert Instruction(Op.SW, rd=5, ra=6).sources() == (6, 5)

    def test_sources_load(self):
        assert Instruction(Op.LW, rd=5, ra=6).sources() == (6,)

    def test_dest(self):
        assert Instruction(Op.ADD, rd=7).dest() == 7
        assert Instruction(Op.SW, rd=7).dest() is None
        assert Instruction(Op.JAL).dest() == LINK_REG
        assert Instruction(Op.BEQ).dest() is None

    def test_latency(self):
        assert Instruction(Op.MUL).latency == 3
        assert Instruction(Op.ADD).latency == 1

    def test_marker_has_no_regs(self):
        assert Instruction(Op.MARKER).sources() == ()
        assert Instruction(Op.MARKER).dest() is None


@given(
    op=st.sampled_from(list(Op)),
    rd=st.integers(0, 15),
    ra=st.integers(0, 15),
    rb=st.integers(0, 15),
    imm=st.integers(-(1 << 17), (1 << 17) - 1),
    freq=st.integers(0, 15),
)
def test_roundtrip_property(op, rd, ra, rb, imm, freq):
    """Any well-formed instruction survives encode→decode unchanged."""
    fmt = Instruction(op).format
    kwargs = {}
    if fmt in (Format.R,):
        kwargs = dict(rd=rd, ra=ra, rb=rb)
    elif fmt in (Format.I, Format.MEM):
        kwargs = dict(rd=rd, ra=ra, imm=imm)
    elif fmt is Format.LI:
        kwargs = dict(rd=rd, imm=imm)
    elif fmt is Format.BRANCH:
        kwargs = dict(ra=ra, rb=rb, imm=imm)
    elif fmt is Format.JUMP:
        kwargs = dict(imm=imm)
    elif fmt is Format.JR:
        kwargs = dict(ra=ra)
    elif fmt is Format.BRR:
        kwargs = dict(freq=freq, imm=imm)
    elif fmt is Format.MARKER:
        kwargs = dict(imm=abs(imm))
    instr = Instruction(op, **kwargs)
    assert roundtrip(instr) == instr
