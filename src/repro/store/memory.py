"""The in-process memory tier: an LRU bounded by entries *and* bytes.

Top of the three-tier stack (``docs/engine.md``).  It holds decoded
values — canonical payload bytes for the result cache, open
:class:`~repro.sim.trace_io.RecordedTrace` handles for the trace store
(subsuming the old hard-coded 4-entry handle LRU) — keyed by the same
content digests as the disk tier below it.

Both bounds are optional and enforced together: inserting evicts
least-recently-used entries until the tier fits.  A single value
larger than ``max_bytes`` is never admitted (it would immediately
evict everything else for one resident entry).

Invalidation is the owner's job: whenever the disk entry underneath a
key is quarantined, pruned or replaced out-of-band, the
:class:`~repro.store.tiered.TieredStore` drops the memory entry, or
the tier would keep serving the stale value.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .base import TierCounters, env_int

#: Default bounds of the result cache's memory tier; override with
#: ``REPRO_MEM_ENTRIES`` / ``REPRO_MEM_BYTES`` or per-store arguments.
DEFAULT_MEMORY_ENTRIES = 1024
DEFAULT_MEMORY_BYTES = 64 << 20


def memory_entries_from_env() -> int:
    return max(0, env_int("REPRO_MEM_ENTRIES", DEFAULT_MEMORY_ENTRIES))


def memory_bytes_from_env() -> int:
    return max(0, env_int("REPRO_MEM_BYTES", DEFAULT_MEMORY_BYTES))


class MemoryTier:
    """Entry- and byte-bounded LRU of decoded store values."""

    def __init__(self, max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        #: ``None`` leaves a bound unenforced; 0 disables the tier.
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.counters = TierCounters()
        self.bytes = 0
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.max_entries != 0 and self.max_bytes != 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.counters.misses += 1
            return None
        self._entries.move_to_end(key)
        value, nbytes = entry
        self.counters.hits += 1
        self.counters.bytes_read += nbytes
        return value

    def put(self, key: str, value: Any, nbytes: int) -> bool:
        """Insert (or refresh) ``key``; returns True when admitted."""
        if not self.enabled:
            return False
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        self.invalidate(key)
        self._entries[key] = (value, nbytes)
        self.bytes += nbytes
        self.counters.bytes_written += nbytes
        while self._over_bounds():
            evicted_key = next(iter(self._entries))
            self.invalidate(evicted_key)
            self.counters.evictions += 1
        return key in self._entries

    def _over_bounds(self) -> bool:
        if not self._entries:
            return False
        if self.max_entries is not None \
                and len(self._entries) > self.max_entries:
            return True
        return self.max_bytes is not None and self.bytes > self.max_bytes

    def invalidate(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.bytes -= entry[1]

    def clear(self) -> None:
        self._entries.clear()
        self.bytes = 0

    def stats(self) -> Dict[str, Any]:
        return dict(self.counters.as_dict(), entries=len(self._entries),
                    bytes=self.bytes, max_entries=self.max_entries,
                    max_bytes=self.max_bytes)
