"""Tests for the out-of-order pipeline timing model.

These check the mechanisms the paper's Section 2/3 analysis relies on:
fetch bandwidth, dependence-limited execution, cache-miss stalls, the
back-end (11-cycle) vs. front-end (decode-resolve) misprediction
penalties, ROB occupancy stalls, and — crucially — that branch-on-random
never touches the prediction structures.
"""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.isa.asm import assemble
from repro.sim.machine import Machine
from repro.timing.config import NAIVE_BRR_CONFIG, TimingConfig
from repro.timing.pipeline import TimingSimulator, TimingStats
from repro.timing.runner import (
    cycles_per_site,
    overhead_percent,
    time_program,
    time_window,
)


def time_source(source, brr_unit=None, config=None, **kwargs):
    return time_program(assemble(source), brr_unit=brr_unit, config=config,
                        **kwargs)


def straightline(n, body="addi r1, r1, 1"):
    return "\n".join([body] * n) + "\nhalt"


def hot_loop(iterations, body_lines):
    """A counted loop; the I-cache is warm after the first iteration."""
    body = "\n".join(body_lines)
    return f"""
        li r9, {iterations}
    loop:
        {body}
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """


class TestBandwidth:
    def test_independent_alu_bounded_by_fetch(self):
        """Independent single-cycle ops: throughput near fetch width (3,
        less the taken-branch fetch break each iteration)."""
        body = [f"li r{1 + (i % 8)}, {i}" for i in range(12)]
        result = time_source(hot_loop(300, body))
        assert 2.0 <= result.stats.ipc <= 3.05

    def test_dependent_chain_one_per_cycle(self):
        body = ["addi r1, r1, 1"] * 12
        result = time_source(hot_loop(300, body))
        # Every body instruction depends on the previous one: IPC ~ 1.
        assert 0.8 <= result.stats.ipc <= 1.35

    def test_mul_latency_slows_chain(self):
        fast = time_source(hot_loop(200, ["addi r1, r1, 1"] * 12))
        slow = time_source("li r2, 3" + hot_loop(200, ["mul r1, r1, r2"] * 12))
        # mul latency 3 vs 1: the dependent chain should be ~3x slower.
        ratio = slow.cycles / fast.cycles
        assert 2.2 <= ratio <= 3.6

    def test_stats_subtraction(self):
        a = TimingStats(instructions=10, cycles=100)
        b = TimingStats(instructions=4, cycles=60)
        d = a - b
        assert d.instructions == 6 and d.cycles == 40


class TestMemory:
    def test_cache_miss_stalls(self):
        """Striding through cold lines costs real memory latency
        relative to the same loop over one hot line.  (Independent
        misses may overlap — the model has no MSHR limit — but at least
        one full memory round trip must show.)"""
        def strider(stride):
            return f"""
                li r1, 0x10000
                li r3, 0
                li r4, {stride}
            loop:
                lw r2, 0(r1)
                add r1, r1, r4
                addi r3, r3, 1
                slti r5, r3, 64
                bne r5, r0, loop
                halt
            """
        cold = time_source(strider(64), memory_size=1 << 20)
        hot = time_source(strider(0), memory_size=1 << 20)
        assert cold.stats.dcache_misses >= 64
        assert hot.stats.dcache_misses <= 2
        assert cold.cycles >= hot.cycles + 140

    def test_hot_loads_fast(self):
        source = """
            li r1, 0x10000
            li r3, 0
        loop:
            lw r2, 0(r1)
            addi r3, r3, 1
            slti r5, r3, 200
            bne r5, r0, loop
            halt
        """
        result = time_source(source)
        # One cold miss; everything else hits L1.
        assert result.stats.dcache_misses <= 2
        assert result.cycles < 200 * 6


class TestBranches:
    def test_predictable_loop_cheap(self):
        source = """
            li r1, 500
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """
        result = time_source(source)
        # Backward branch taken 499/500: bimodal learns it instantly.
        assert result.stats.cond_branches == 500
        assert result.stats.cond_mispredicts <= 20

    def test_random_branch_expensive(self):
        """Data-dependent pseudo-random branches mispredict often and
        each costs at least the 11-cycle back-end penalty."""
        # xorshift-ish generator, branch on low bit.
        source = """
            li r1, 0x1234
            li r2, 400
            li r6, 0
        loop:
            shli r3, r1, 3
            xor  r1, r1, r3
            shri r3, r1, 5
            xor  r1, r1, r3
            andi r4, r1, 1
            beq  r4, r0, skip
            addi r6, r6, 1
        skip:
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
        """
        result = time_source(source)
        mis = result.stats.cond_mispredicts
        assert mis > 50
        # Each mispredict costs >= ~11 cycles of refetch.
        assert result.cycles > mis * 8

    def test_backend_penalty_at_least_11(self):
        cfg = TimingConfig()
        base = time_source(straightline(100))
        one_miss = time_source(
            """
            li r1, 1
            beq r1, r1, t   ; predicted not-taken (cold), actually taken
        t:
            """ + straightline(100)
        )
        assert one_miss.cycles - base.cycles >= cfg.backend_penalty - 2

    def test_call_return_with_ras(self):
        source = """
            li r2, 100
        loop:
            jal f
            addi r2, r2, -1
            bne r2, r0, loop
            halt
        f:  addi r3, r3, 1
            ret
        """
        result = time_source(source)
        # RAS predicts all the returns: no back-end redirects from jr.
        assert result.stats.backend_redirects <= result.stats.cond_mispredicts + 2


class TestBrrTiming:
    def brr_loop(self, n, freq_spec):
        return f"""
            li r1, {n}
        loop:
            brr {freq_spec}, hit
        back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        hit:
            brra back
        """

    def test_brr_not_taken_nearly_free(self):
        """A never-taken brr should cost about one fetch slot."""
        n = 600
        base = time_source(f"""
            li r1, {n}
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        # freq field 15 ~ never taken at these counts with hw counter.
        result = time_source(self.brr_loop(n, "15"),
                             brr_unit=HardwareCounterUnit())
        extra_per_iter = (result.cycles - base.cycles) / n
        assert extra_per_iter < 0.8

    def test_brr_taken_frontend_penalty(self):
        """Every-other-taken brr pays ~0.5 * frontend flush per site."""
        n = 512
        unit = HardwareCounterUnit()
        result = time_source(self.brr_loop(n, "0"), brr_unit=unit)
        base = time_source(f"""
            li r1, {n}
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        per_site = cycles_per_site(base.cycles, result.cycles, n)
        # Paper: ~3.19 cycles/site at 50% on their machine; ours should
        # land in the same few-cycle regime, far below the back-end cost.
        assert 1.5 <= per_site <= 6.0
        assert result.stats.frontend_redirects == n // 2 + n // 2  # brr + brra

    def test_brr_cheaper_than_backend_branch(self):
        """The decode-time resolution must beat back-end resolution for
        the same taken pattern (the core of the paper's claim)."""
        n = 512
        fast = time_source(self.brr_loop(n, "0"),
                           brr_unit=HardwareCounterUnit())
        slow = time_source(self.brr_loop(n, "0"),
                           brr_unit=HardwareCounterUnit(),
                           config=NAIVE_BRR_CONFIG.with_overrides(
                               brr_uses_predictor=False))
        assert fast.cycles < slow.cycles

    def test_brr_does_not_touch_predictor(self):
        n = 256
        program = assemble(self.brr_loop(n, "0"))
        machine = Machine(program, brr_unit=HardwareCounterUnit())
        sim = TimingSimulator()
        while not machine.halted:
            sim.step(machine.step())
        # Only the loop's bne trains the tournament predictor.
        assert sim.predictor.predictions == sim.stats.cond_branches
        assert sim.stats.brr_resolved == n + n // 2  # brr + brra paths
        # Neither the brr nor the brra address ever enters the BTB.
        brr_pc = program.address_of("loop")
        brra_pc = program.address_of("hit")
        assert brr_pc not in sim.btb.tags
        assert brra_pc not in sim.btb.tags

    def test_naive_brr_pollutes_predictor(self):
        n = 256
        program = assemble(self.brr_loop(n, "0"))
        machine = Machine(program, brr_unit=HardwareCounterUnit())
        sim = TimingSimulator(NAIVE_BRR_CONFIG)
        while not machine.halted:
            sim.step(machine.step())
        # The ablated design inserts brr/brra into the BTB like any
        # other branch (overhead source 6 returns).
        assert program.address_of("hit") in sim.btb.tags

    def test_brr_trace_requires_decoded_instr(self):
        sim = TimingSimulator()
        from repro.sim.trace import TraceRecord
        with pytest.raises(ValueError):
            sim.step(TraceRecord(0, None, 8))


class TestRobAndWindow:
    def test_rob_limits_overlap(self):
        """With a tiny ROB the second cold-miss load cannot dispatch
        until the first commits, serialising the memory latencies; the
        80-entry ROB overlaps them."""
        filler = "\n".join(["addi r3, r3, 1"] * 30)
        source = f"""
            li r1, 0x80000
            li r4, 0x90000
            li r9, 8
        loop:
            lw r2, 0(r1)
            {filler}
            lw r5, 0(r4)
            {filler}
            addi r1, r1, 64
            addi r4, r4, 64
            addi r9, r9, -1
            bne r9, r0, loop
            halt
        """
        big = time_source(source, config=TimingConfig())
        small = time_source(source,
                            config=TimingConfig().with_overrides(rob_entries=8))
        assert small.cycles >= big.cycles + 100
        assert small.stats.rob_stall_cycles > 0

    def test_time_window_markers(self):
        source = """
            li r1, 50
        warm:
            addi r1, r1, -1
            bne r1, r0, warm
            marker 1
            li r1, 100
        measured:
            addi r1, r1, -1
            bne r1, r0, measured
            marker 2
            halt
        """
        program = assemble(source)
        window = time_window(program, begin=(1, 1), end=(2, 1))
        # The window covers ~201 instructions (loop + marker).
        assert 195 <= window.instructions <= 210
        assert window.cycles < time_program(program).cycles

    def test_time_window_fast_forward(self):
        source = """
            marker 9
            li r1, 10
        l1: addi r1, r1, -1
            bne r1, r0, l1
            marker 1
            li r1, 10
        l2: addi r1, r1, -1
            bne r1, r0, l2
            marker 2
            halt
        """
        program = assemble(source)
        window = time_window(program, begin=(1, 1), end=(2, 1),
                             fast_forward=(9, 1))
        assert 18 <= window.instructions <= 25

    def test_overhead_percent(self):
        assert overhead_percent(100, 105) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            overhead_percent(0, 5)

    def test_cycles_per_site_validation(self):
        with pytest.raises(ValueError):
            cycles_per_site(10, 20, 0)

    def test_unhalted_program_raises(self):
        with pytest.raises(RuntimeError):
            time_source("spin: jmp spin", max_steps=1000)
