"""Deterministic chaos harness for ``repro serve`` (``repro chaos-serve``).

The service's resilience claims are only claims until something breaks
on purpose.  This module breaks the shared backend on purpose —
deterministically — and proves the serving stack absorbs it:

* :class:`FaultyBackend` wraps any :class:`~repro.store.backend.Backend`
  and injects faults keyed by ``sha256(seed, op, name, call#)`` — the
  same discipline as :mod:`repro.engine.faults`, so a chaos run is a
  pure function of its arguments.  Modes: ``slow`` (added latency,
  still succeeds), ``error`` (raises), ``hang`` (sleeps past the
  breaker's call budget, then raises) and ``torn`` (truncated bytes —
  the integrity layer's problem to catch);
* :func:`run_chaos_serve` serves one figure twice over real HTTP — a
  clean pass (no backend) and a chaos pass (breaker-wrapped faulty
  backend) — and byte-compares every response.  The chaos pass also
  probes the per-request deadline, heals the backend and watches the
  breaker recover, drains gracefully (new requests shed with 503),
  and restarts over the warm cache proving zero re-simulation.

Every fault lands *below* the integrity layer, so the responses must
be byte-identical: torn entries quarantine and recompute, errors and
hangs degrade to local tiers, and the ledger of what was injected
rides along in the report.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..engine import EngineConfig, ExperimentEngine
from ..engine.cache import ResultCache
from ..engine.tracestore import TraceStore
from ..store import Backend, CircuitBreakerBackend, FilesystemBackend
from .http import ServerThread
from .service import COMMANDS, SimulationService

#: Fault modes :class:`FaultyBackend` can inject.
FAULT_MODES = ("slow", "error", "hang", "torn")


class FaultyBackend(Backend):
    """Deterministic fault injection around a real backend.

    Whether call *n* of ``op`` on entry ``name`` faults — and which
    mode fires — is a pure function of ``(seed, op, name, n)``: the
    same run replays the same faults.  ``rate`` may be changed live
    (:meth:`heal`) so a chaos run can prove recovery.
    """

    scheme = "faulty"

    def __init__(self, inner: Backend, *, seed: int = 0, rate: float = 0.2,
                 modes: Sequence[str] = FAULT_MODES,
                 slow_seconds: float = 0.05,
                 hang_seconds: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        unknown = set(modes) - set(FAULT_MODES)
        if unknown:
            raise ValueError(
                f"unknown fault modes {sorted(unknown)}; "
                f"known: {FAULT_MODES}")
        self.inner = inner
        self.seed = int(seed)
        self.rate = float(rate)
        self.modes: Tuple[str, ...] = tuple(modes)
        self.slow_seconds = slow_seconds
        self.hang_seconds = hang_seconds
        self._sleep = sleep
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        #: Ledger of injected faults, per mode.
        self.injected: Dict[str, int] = {mode: 0 for mode in FAULT_MODES}

    # Byte/hit accounting belongs to the backend doing the IO.
    @property
    def counters(self):
        return self.inner.counters

    def heal(self) -> None:
        """Stop injecting (rate 0) — the recovery half of a chaos run."""
        self.rate = 0.0

    def _draw(self, op: str, name: str) -> Optional[str]:
        """The fault mode for this call, or ``None`` (deterministic)."""
        if self.rate <= 0.0 or not self.modes:
            return None
        token = f"{op}:{name}"
        with self._lock:
            count = self._calls.get(token, 0) + 1
            self._calls[token] = count
        digest = hashlib.sha256(
            f"{self.seed}:{op}:{name}:{count}".encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if draw >= self.rate:
            return None
        mode = self.modes[digest[8] % len(self.modes)]
        with self._lock:
            self.injected[mode] += 1
        return mode

    def _tear(self, path: pathlib.Path) -> None:
        """Truncate ``path`` to half its bytes (a torn copy)."""
        with contextlib.suppress(OSError):
            size = path.stat().st_size
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))

    def fetch(self, name: str, dest: pathlib.Path) -> bool:
        mode = self._draw("fetch", name)
        if mode == "error":
            raise OSError(f"injected backend error (fetch {name})")
        if mode == "hang":
            self._sleep(self.hang_seconds)
            raise OSError(f"injected backend hang (fetch {name})")
        if mode == "slow":
            self._sleep(self.slow_seconds)
        landed = self.inner.fetch(name, pathlib.Path(dest))
        if landed and mode == "torn":
            self._tear(pathlib.Path(dest))
        return landed

    def push(self, name: str, src: pathlib.Path) -> bool:
        mode = self._draw("push", name)
        if mode == "error":
            raise OSError(f"injected backend error (push {name})")
        if mode == "hang":
            self._sleep(self.hang_seconds)
            raise OSError(f"injected backend hang (push {name})")
        if mode == "slow":
            self._sleep(self.slow_seconds)
        if mode == "torn":
            # Publish truncated bytes: the poisoned entry must be
            # caught by the *fetching* replica's integrity layer.
            with tempfile.NamedTemporaryFile(delete=False) as handle:
                data = pathlib.Path(src).read_bytes()
                handle.write(data[:max(1, len(data) // 2)])
                torn = handle.name
            try:
                return self.inner.push(name, pathlib.Path(torn))
            finally:
                with contextlib.suppress(OSError):
                    os.unlink(torn)
        return self.inner.push(name, pathlib.Path(src))

    def describe(self) -> str:
        return f"faulty({self.inner.describe()}, rate={self.rate})"

    def stats(self) -> Dict[str, Any]:
        return dict(self.counters.as_dict(), backend=self.describe(),
                    faults=dict(self.injected))


# ----------------------------------------------------------------------
# The end-to-end chaos run.

@dataclass
class ChaosReport:
    """What one chaos run proved (or failed to prove)."""

    command: str
    requests: int
    seed: int
    rate: float
    modes: List[str]
    #: Request indices whose chaos-pass bytes differed from clean.
    divergences: List[int] = field(default_factory=list)
    #: sha256 digests of the clean-pass responses, in request order.
    digests: List[str] = field(default_factory=list)
    #: Faults actually injected, per mode.
    faults: Dict[str, int] = field(default_factory=dict)
    #: Final breaker telemetry (after recovery).
    breaker: Dict[str, Any] = field(default_factory=dict)
    breaker_opened: bool = False
    breaker_recovered: bool = False
    #: The deadline probe: status/elapsed of a tight-deadline request.
    deadline: Dict[str, Any] = field(default_factory=dict)
    #: Drain semantics: the drain report, plus the post-drain 503 probe.
    drain: Dict[str, Any] = field(default_factory=dict)
    #: Requests shed (from the drained service's counters).
    shed: int = 0
    #: Warm restart over the chaos cache: hits/misses/byte-identity.
    warm: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return (bool(self.divergences)
                or not self.breaker_recovered
                or not self.deadline.get("ok", False)
                or not self.drain.get("ok", False)
                or not self.warm.get("ok", False))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "command": self.command,
            "requests": self.requests,
            "seed": self.seed,
            "rate": self.rate,
            "modes": list(self.modes),
            "divergences": list(self.divergences),
            "digests": list(self.digests),
            "faults": dict(self.faults),
            "breaker": dict(self.breaker),
            "breaker_opened": self.breaker_opened,
            "breaker_recovered": self.breaker_recovered,
            "deadline": dict(self.deadline),
            "drain": dict(self.drain),
            "shed": self.shed,
            "warm": dict(self.warm),
            "failed": self.failed,
        }


def _request_docs(command: str, params: Optional[Dict[str, Any]],
                  requests: int) -> List[Dict[str, Any]]:
    """The request sweep: distinct seeds when the command takes one
    (every request computes fresh windows → real backend traffic)."""
    allowed = COMMANDS.get(command)
    if allowed is None:
        raise ValueError(
            f"unknown command {command!r}; known: {sorted(COMMANDS)}")
    base = dict(params or {})
    if "seed" in allowed:
        start = int(base.get("seed", 0))
        return [dict(base, seed=start + index) for index in range(requests)]
    return [dict(base) for _ in range(requests)]


def _post(port: int, document: Dict[str, Any],
          timeout: float = 600.0) -> Tuple[int, bytes, Dict[str, str]]:
    """(status, body, headers) of one POST /v1/figure."""
    data = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/figure", data=data,
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (response.status, response.read(),
                    {name.lower(): value
                     for name, value in response.headers.items()})
    except urllib.error.HTTPError as error:
        return (error.code, error.read(),
                {name.lower(): value for name, value in error.headers.items()})


def _engine(root: pathlib.Path, backend: Optional[Backend]) -> ExperimentEngine:
    """A serial, hermetic engine over ``root`` (no env-resolved stores)."""
    cache = ResultCache(root / "cache", backend=backend)
    traces = TraceStore(root / "cache" / "traces", backend=None)
    return ExperimentEngine(config=EngineConfig(jobs=1),
                            cache=cache, trace_store=traces)


def run_chaos_serve(*, command: str = "figure13",
                    params: Optional[Dict[str, Any]] = None,
                    requests: int = 6,
                    seed: int = 0,
                    rate: float = 0.2,
                    modes: Sequence[str] = FAULT_MODES,
                    hang_seconds: float = 2.0,
                    deadline_timeout: float = 0.25,
                    deadline_slack: float = 1.0,
                    workdir: Optional[pathlib.Path] = None) -> ChaosReport:
    """Prove ``repro serve`` absorbs a hostile backend, end to end.

    1. **clean pass** — serve the request sweep with no backend;
       record every response body.
    2. **chaos pass** — a fresh cache, its backend a
       :class:`~repro.store.backend.CircuitBreakerBackend` (aggressive:
       one exhausted failure opens it) around a
       :class:`FaultyBackend`.  Replay the sweep over HTTP and
       byte-compare against the clean pass; probe a tight per-request
       deadline (must answer within the deadline plus
       ``deadline_slack``); heal the backend and watch the breaker
       close again; drain via ``POST /v1/admin/drain`` and prove the
       next request sheds with 503 + ``Retry-After``.
    3. **warm restart** — a new server over the chaos pass's cache:
       the sweep must be byte-identical with zero window re-simulation
       (every window a cache hit).

    Deterministic: same arguments, same faults, same report.
    """
    if workdir is None:
        workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir = pathlib.Path(workdir)
    report = ChaosReport(command=command, requests=requests, seed=seed,
                         rate=rate, modes=list(modes))
    docs = [{"command": command, "params": doc_params}
            for doc_params in _request_docs(command, params, requests)]

    # -- 1. clean pass ---------------------------------------------------
    clean_bodies: List[bytes] = []
    with ServerThread(SimulationService(
            engine=_engine(workdir / "clean", backend=None))) as server:
        for document in docs:
            status, body, _headers = _post(server.port, document)
            if status != 200:
                raise RuntimeError(
                    f"clean pass failed: HTTP {status} for {document}: "
                    f"{body[:200]!r}")
            clean_bodies.append(body)
    report.digests = [hashlib.sha256(body).hexdigest() for body in clean_bodies]

    # -- 2. chaos pass -----------------------------------------------------
    shared = workdir / "shared"
    shared.mkdir(parents=True, exist_ok=True)
    faulty = FaultyBackend(FilesystemBackend(shared), seed=seed, rate=rate,
                           modes=modes, hang_seconds=hang_seconds)
    breaker = CircuitBreakerBackend(faulty, failures=1, reset_after=0.2,
                                    call_timeout=0.75, retries=0,
                                    backoff=0.01)
    chaos_engine = _engine(workdir / "chaos", backend=breaker)
    service = SimulationService(engine=chaos_engine, workers=2)
    with ServerThread(service) as server:
        for index, document in enumerate(docs):
            status, body, _headers = _post(server.port, document)
            if status != 200 or body != clean_bodies[index]:
                report.divergences.append(index)

        # Deadline probe: a fresh (uncached) request under a tight
        # deadline must answer within deadline + slack — either the
        # result (it was fast enough) or a 504 (the deadline fired and
        # the wait, not the computation, was abandoned).
        probe = {"command": command,
                 "params": dict(docs[-1]["params"]),
                 "timeout": deadline_timeout}
        if "seed" in COMMANDS[command]:
            probe["params"]["seed"] = int(
                probe["params"].get("seed", 0)) + 10_000
        started = time.monotonic()
        status, _body, _headers = _post(server.port, probe)
        elapsed = time.monotonic() - started
        report.deadline = {
            "timeout": deadline_timeout,
            "status": status,
            "elapsed": round(elapsed, 3),
            "ok": (status == 200 or
                   (status == 504
                    and elapsed <= deadline_timeout + deadline_slack)),
        }

        # Recovery: heal the backend; the next backend call after the
        # cooldown is the half-open probe that closes the breaker.
        report.breaker_opened = breaker.opens > 0
        faulty.heal()
        if breaker.state != "closed":
            time.sleep(breaker.reset_after + 0.05)
            for attempt in range(5):
                recovery = {"command": command,
                            "params": dict(docs[-1]["params"])}
                if "seed" in COMMANDS[command]:
                    recovery["params"]["seed"] = int(
                        recovery["params"].get("seed", 0)) + 20_000 + attempt
                _post(server.port, recovery)
                if breaker.state == "closed":
                    break
                time.sleep(breaker.reset_after + 0.05)
        report.breaker_recovered = breaker.state == "closed"

        # Graceful drain over the wire, then prove admission stops.
        drain_request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/admin/drain",
            data=b"", method="POST")
        with urllib.request.urlopen(drain_request, timeout=120) as response:
            drain_report = json.loads(response.read().decode("utf-8"))
        status, _body, headers = _post(server.port, docs[0])
        report.drain = {
            "report": drain_report,
            "post_drain_status": status,
            "retry_after": headers.get("retry-after"),
            "ok": (bool(drain_report.get("drained"))
                   and status == 503
                   and headers.get("retry-after") is not None),
        }
        report.shed = service.counters.shed
        report.breaker = breaker.breaker_stats()
        report.faults = dict(faulty.injected)

    # -- 3. warm restart ---------------------------------------------------
    warm_engine = _engine(workdir / "chaos", backend=None)
    warm_identical = True
    with ServerThread(SimulationService(engine=warm_engine)) as server:
        for index, document in enumerate(docs):
            status, body, _headers = _post(server.port, document)
            if status != 200 or body != clean_bodies[index]:
                warm_identical = False
    report.warm = {
        "hits": warm_engine.cache.hits,
        "misses": warm_engine.cache.misses,
        "byte_identical": warm_identical,
        "ok": warm_identical and warm_engine.cache.misses == 0,
    }
    return report


def format_chaos(report: ChaosReport) -> str:
    """The human-readable verdict."""
    injected = sum(report.faults.values())
    fault_list = ", ".join(f"{mode}={count}"
                           for mode, count in sorted(report.faults.items()))
    lines = [
        f"chaos serve: {report.command} x{report.requests} "
        f"(seed {report.seed}, rate {report.rate}, "
        f"modes {'/'.join(report.modes)})",
        f"faults injected: {injected} ({fault_list})",
        f"responses: "
        + ("byte-identical to clean run" if not report.divergences else
           f"DIVERGED on requests {report.divergences}"),
        f"breaker: opened={report.breaker_opened} "
        f"recovered={report.breaker_recovered} "
        f"(opens={report.breaker.get('opens')}, "
        f"closes={report.breaker.get('closes')}, "
        f"timeouts={report.breaker.get('timeouts')}, "
        f"fast_failed={report.breaker.get('fast_failed')})",
        f"deadline probe: HTTP {report.deadline.get('status')} in "
        f"{report.deadline.get('elapsed')}s "
        f"(budget {report.deadline.get('timeout')}s) "
        + ("ok" if report.deadline.get("ok") else "FAIL"),
        f"drain: {'ok' if report.drain.get('ok') else 'FAIL'} "
        f"(post-drain HTTP {report.drain.get('post_drain_status')}, "
        f"Retry-After {report.drain.get('retry_after')}), "
        f"shed={report.shed}",
        f"warm restart: hits={report.warm.get('hits')} "
        f"misses={report.warm.get('misses')} "
        + ("ok" if report.warm.get("ok") else "FAIL"),
        "verdict: " + ("FAIL" if report.failed else "PASS"),
    ]
    return "\n".join(lines)
