"""The entropy sensitivity experiment (``repro.experiments.entropy``).

The headline assertion is the paper's pollution claim, measured:
counter-based check branches (``cbs``) lose branch-prediction accuracy
monotonically as randomness density rises, at every history length,
while the matched ``brr`` grid stays flat apart from a handful of cold
mispredicts.
"""

import json

import pytest

from repro.engine import EngineConfig, ExperimentEngine, ResultCache
from repro.experiments import (
    DENSITIES,
    adversarial_window_spec,
    entropy_population,
    entropy_sweep,
    format_entropy,
    pollution_trend,
)
from repro.stats import SamplingPlan


def _engine(tmp_path):
    return ExperimentEngine(
        config=EngineConfig(jobs=1),
        cache=ResultCache(tmp_path / "cache", backend=None))


class TestPopulation:
    def test_cell_space(self):
        population = entropy_population(history_bits=(8, 16))
        assert len(population.cells) == 2 * 2 * len(DENSITIES)
        mandatory = [cell for cell in population.cells if cell.mandatory]
        assert len(mandatory) == 4  # every (scheme, history) baseline
        assert all(cell.tag("density") == 0.0 for cell in mandatory)
        assert {cell.stratum for cell in population.cells} == {
            "cbs/h8", "cbs/h16", "brr/h8", "brr/h16"}

    def test_window_spec_keys_cover_generator_knobs(self):
        one = adversarial_window_spec("cbs", 0.25, iterations=32, seed=0)
        other = adversarial_window_spec("cbs", 0.5, iterations=32, seed=0)
        assert one.cache_key != other.cache_key
        json.dumps(one.params_dict())


class TestPollutionTrend:
    @pytest.fixture(scope="class")
    def sweep(self, tmp_path_factory):
        engine = _engine(tmp_path_factory.mktemp("entropy"))
        return entropy_sweep(iterations=48, history_bits=(8,), seed=0,
                             engine=engine)

    def test_cbs_accuracy_degrades_monotonically(self, sweep):
        accuracies = [a for _, a in pollution_trend(sweep, "cbs", 8)]
        assert len(accuracies) == len(DENSITIES)
        assert accuracies[0] - accuracies[-1] > 0.2
        assert all(later <= earlier + 0.01
                   for earlier, later in zip(accuracies, accuracies[1:]))

    def test_brr_accuracy_stays_flat(self, sweep):
        accuracies = [a for _, a in pollution_trend(sweep, "brr", 8)]
        assert max(accuracies) - min(accuracies) < 0.05

    def test_overhead_normalised_against_stratum_baseline(self, sweep):
        for scheme in ("cbs", "brr"):
            series = sweep.series(scheme, 8)
            assert series[0].density == 0.0
            assert series[0].overhead == 0.0
        cbs = sweep.series("cbs", 8)
        assert cbs[-1].overhead > cbs[0].overhead

    def test_format_and_json(self, sweep):
        text = format_entropy(sweep)
        assert "branch accuracy vs. randomness density" in text
        assert "cbs/h8" in text and "brr/h8" in text
        json.dumps(sweep.to_dict())


class TestSampledSweep:
    def test_plan_keeps_baselines_and_attaches_summary(self, tmp_path):
        plan = SamplingPlan.parse("budget:6", seed=0)
        sweep = entropy_sweep(iterations=16, history_bits=(8,), seed=0,
                              engine=_engine(tmp_path), plan=plan)
        assert sweep.sampling is not None
        for scheme in ("cbs", "brr"):
            assert sweep.series(scheme, 8)[0].density == 0.0
        assert sweep.sampling.estimates
        json.dumps(sweep.to_dict())
