"""Estimators: point estimates + confidence intervals from samples.

The sampled pipeline's reducers stop being exhaustive aggregators and
become consumers of these estimators.  Every estimate is an
:class:`Estimate` — point value, CI half-width, sample and population
sizes — built on the t-interval arithmetic in
:mod:`repro.analysis.stats` with a finite-population correction:
sampling n of N cells without replacement shrinks the standard error
by ``sqrt((N - n) / (N - 1))``, which is what makes ``n == N``
(exhaustive) collapse to a zero-width interval — the estimator
*degenerates into* the exhaustive reducer rather than approximating
it.

Three shapes cover the figures:

* :func:`estimate_mean` — one stratum's (or one curve's) mean;
* :func:`matched_pair_estimate` — paired deltas (Figure 12's
  cbs-vs-brr overhead gap), estimated on per-cell differences so
  between-benchmark variance cancels;
* :func:`stratified_estimate` — a population mean from per-stratum
  samples, weighted by stratum size.

:class:`SamplingSummary` bundles a run's plan, window accounting and
named estimates — the object figure formatters append as a footer and
``--json`` consumers serialise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import mean, t_critical, t_interval
from .plan import SamplingPlan


def finite_population_correction(n: int, population: int) -> float:
    """FPC factor for sampling ``n`` of ``population`` without
    replacement; 1.0 when the population is unbounded or trivial."""
    if population <= 1 or n >= population:
        return 0.0 if n >= population else 1.0
    return math.sqrt((population - n) / (population - 1))


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its confidence interval."""

    point: float
    #: CI half-width; 0.0 for exhaustive samples, ``inf`` when a single
    #: sample carries no variance information (rendered as ``±?``).
    half_width: float
    n: int
    population: int
    confidence: float = 0.95

    @property
    def low(self) -> float:
        return self.point - self.half_width

    @property
    def high(self) -> float:
        return self.point + self.half_width

    @property
    def exhaustive(self) -> bool:
        return self.n >= self.population

    def covers(self, value: float) -> bool:
        """True when ``value`` falls inside the interval."""
        if math.isnan(value) or math.isnan(self.point):
            return False
        return self.low <= value <= self.high

    def describe(self) -> str:
        if self.half_width == 0.0:
            return f"{self.point:.2f} (exact)"
        if math.isinf(self.half_width):
            return f"{self.point:.2f} ±? (n={self.n})"
        return f"{self.point:.2f} ±{self.half_width:.2f}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            # inf has no JSON encoding; None is the wire form of "no
            # finite bound yet".
            "half_width": (None if math.isinf(self.half_width)
                           else self.half_width),
            "n": self.n,
            "population": self.population,
            "confidence": self.confidence,
        }


def estimate_mean(values: Sequence[float], population: Optional[int] = None,
                  confidence: float = 0.95) -> Estimate:
    """Mean of ``values`` as an estimate of the population mean.

    ``population`` is the total cell count the sample was drawn from
    (defaults to ``len(values)``, i.e. an exhaustive sample).
    """
    total = len(values) if population is None else int(population)
    if total < len(values):
        raise ValueError(
            f"sample of {len(values)} exceeds population {total}")
    point, half_width = t_interval(values, confidence)
    if len(values) >= total:
        half_width = 0.0
    elif not math.isinf(half_width):
        half_width *= finite_population_correction(len(values), total)
    return Estimate(point=point, half_width=half_width, n=len(values),
                    population=total, confidence=confidence)


def matched_pair_estimate(pairs: Sequence[Tuple[float, float]],
                          population: Optional[int] = None,
                          confidence: float = 0.95) -> Estimate:
    """Estimate of the mean paired delta ``a - b`` across cells."""
    deltas = [a - b for a, b in pairs]
    return estimate_mean(deltas, population=population,
                         confidence=confidence)


def stratified_estimate(strata: Sequence[Tuple[Sequence[float], int]],
                        confidence: float = 0.95) -> Estimate:
    """Population mean from per-stratum samples.

    ``strata`` is a sequence of ``(sample_values, stratum_size)``; the
    point estimate weights each stratum mean by its size, the variance
    combines per-stratum sampling variances (each with its own FPC),
    and the t quantile uses the pooled degrees of freedom.
    """
    strata = [(list(values), int(size)) for values, size in strata if size]
    if not strata:
        raise ValueError("stratified estimate needs at least one stratum")
    total = sum(size for _values, size in strata)
    n = sum(len(values) for values, _size in strata)
    if any(len(values) > size for values, size in strata):
        raise ValueError("stratum sample exceeds stratum size")
    if any(not values for values, _size in strata):
        raise ValueError("every stratum needs at least one sample")
    point = sum(size * mean(values) for values, size in strata) / total
    if n >= total:
        return Estimate(point=point, half_width=0.0, n=n, population=total,
                        confidence=confidence)
    variance = 0.0
    df = 0
    for values, size in strata:
        if len(values) >= size:
            continue  # fully-observed stratum contributes no variance
        if len(values) < 2:
            return Estimate(point=point, half_width=float("inf"), n=n,
                            population=total, confidence=confidence)
        sample_var = (sum((v - mean(values)) ** 2 for v in values)
                      / (len(values) - 1))
        weight = size / total
        fpc = 1.0 - len(values) / size
        variance += weight * weight * fpc * sample_var / len(values)
        df += len(values) - 1
    if df < 1:
        return Estimate(point=point, half_width=float("inf"), n=n,
                        population=total, confidence=confidence)
    half_width = t_critical(df, confidence) * math.sqrt(variance)
    return Estimate(point=point, half_width=half_width, n=n,
                    population=total, confidence=confidence)


@dataclass
class SamplingSummary:
    """One sampled run's plan, accounting, and named estimates."""

    plan: SamplingPlan
    windows_population: int
    windows_run: int
    cells_population: int
    cells_run: int
    estimates: Dict[str, Estimate] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.windows_run >= self.windows_population

    def describe(self) -> List[str]:
        """Footer lines figure formatters append under sampled tables."""
        lines = [
            f"sampling: {self.plan.describe()} -- ran "
            f"{self.windows_run}/{self.windows_population} windows "
            f"({self.cells_run}/{self.cells_population} cells), "
            f"{self.plan.confidence:.0%} CI",
        ]
        for name, estimate in self.estimates.items():
            lines.append(f"  {name:<34} {estimate.describe()}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "windows_population": self.windows_population,
            "windows_run": self.windows_run,
            "cells_population": self.cells_population,
            "cells_run": self.cells_run,
            "estimates": {name: estimate.to_dict()
                          for name, estimate in self.estimates.items()},
        }
