"""The unified workload registry: one API over every workload family.

Before this module, each workload family had its own ad-hoc builder
(``dacapo.spec_by_name``/``generate_events``, ``microbench.
build_microbench``, ``text.generate_text``); callers had to know each
one's shape.  :func:`get_workload` replaces them::

    get_workload("jython", scale=0.01).events()
    get_workload("microbench", variant="full").program()
    get_workload("adversarial", scheme="cbs", density=0.5).program()
    get_workload("text", n_chars=400).events()

Every family answers the same three-method :class:`Workload` protocol:

* ``program()`` — the assembled :class:`~repro.isa.program.Program`
  (families that are pure event streams raise ``ValueError``);
* ``events()`` — the workload's event stream as one array (method ids
  for dacapo, the byte stream for text; program families raise);
* ``functional_key()`` — the canonical ``{"family", "knobs"}`` dict
  identifying the workload's functional content, for content-addressed
  stores and request coalescing.

``raw`` exposes the family-specific object (:class:`Microbench`,
:class:`AdversarialProgram`, :class:`DacapoSpec`, ``bytes``) for
callers that need family extras (``load_text``, ``measured_sites``,
streaming ``event_chunks`` ...).  The legacy builders remain available
as one-warning deprecation shims delegating here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..isa.program import Program


@dataclass
class Workload:
    """One instantiated workload behind the uniform protocol."""

    family: str
    knobs: Dict[str, Any]
    #: The family-specific object (Microbench, AdversarialProgram,
    #: DacapoSpec, bytes) for callers needing family extras.
    raw: Any

    def program(self) -> Program:
        raise ValueError(
            f"workload family {self.family!r} is an event stream and "
            f"has no program; use .events()")

    def events(self) -> Any:
        raise ValueError(
            f"workload family {self.family!r} is a program and has no "
            f"event stream; use .program()")

    def functional_key(self) -> Dict[str, Any]:
        return {"family": self.family, "knobs": dict(self.knobs)}


class DacapoWorkload(Workload):
    """A synthetic DaCapo benchmark: a method-invocation event stream."""

    @property
    def spec(self):
        return self.raw

    def events(self) -> Any:
        import numpy as np

        return np.concatenate(list(self.event_chunks()))

    def event_chunks(self) -> Any:
        """The memory-bounded streaming form (full-scale runs)."""
        from .dacapo import event_chunks

        return event_chunks(self.raw, scale=self.knobs["scale"],
                            seed=self.knobs["seed"])


class MicrobenchWorkload(Workload):
    """The Section 5.3 checksum microbenchmark (a timed program)."""

    def program(self) -> Program:
        return self.raw.program


class TextWorkload(Workload):
    """The Shakespeare-like character stream (an event stream)."""

    def events(self) -> Any:
        import numpy as np

        return np.frombuffer(self.raw, dtype=np.uint8)


class AdversarialWorkload(Workload):
    """A generated predictor-adversarial program."""

    def program(self) -> Program:
        return self.raw.program()

    def functional_key(self) -> Dict[str, Any]:
        return self.raw.functional_key()


Builder = Callable[..., Workload]

FAMILIES: Dict[str, Builder] = {}


def workload_family(name: str) -> Callable[[Builder], Builder]:
    """Register a family builder under its registry name."""
    def register(builder: Builder) -> Builder:
        FAMILIES[name] = builder
        return builder
    return register


@workload_family("dacapo")
def _build_dacapo(name: str, scale: float = 0.1, seed: int = 0,
                  **overrides: Any) -> DacapoWorkload:
    import dataclasses

    from .dacapo import _spec_by_name

    spec = _spec_by_name(name)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    knobs = dict(dataclasses.asdict(spec), scale=scale, seed=seed)
    return DacapoWorkload(family="dacapo", knobs=knobs, raw=spec)


@workload_family("microbench")
def _build_microbench_workload(**knobs: Any) -> MicrobenchWorkload:
    from .microbench import _build_microbench

    bench = _build_microbench(**knobs)
    recorded = dict(knobs)
    recorded.pop("text", None)  # bytes: derived from n_chars/seed
    return MicrobenchWorkload(family="microbench", knobs=recorded, raw=bench)


@workload_family("text")
def _build_text(**knobs: Any) -> TextWorkload:
    from .text import _generate_text

    return TextWorkload(family="text", knobs=dict(knobs),
                        raw=_generate_text(**knobs))


@workload_family("adversarial")
def _build_adversarial_workload(**knobs: Any) -> AdversarialWorkload:
    from .adversarial import build_adversarial

    adversarial = build_adversarial(**knobs)
    return AdversarialWorkload(family="adversarial",
                               knobs=adversarial.spec.to_dict(),
                               raw=adversarial)


def _dacapo_names() -> List[str]:
    from .dacapo import DACAPO_BENCHMARKS

    return [spec.name for spec in DACAPO_BENCHMARKS]


def list_workloads() -> List[str]:
    """Every accepted name: the families plus the dacapo shortcuts."""
    return sorted(FAMILIES) + _dacapo_names()


def get_workload(name: str, **knobs: Any) -> Workload:
    """Instantiate a workload by registry name.

    ``name`` is a family name (``"microbench"``, ``"text"``,
    ``"adversarial"``, ``"dacapo"`` — the latter takes ``name=`` as a
    knob), a ``"dacapo:jython"`` qualified form, or one of the eight
    DaCapo benchmark names directly.
    """
    if ":" in name:
        family, _, argument = name.partition(":")
        if family != "dacapo":
            raise KeyError(f"unknown workload family {family!r}")
        return FAMILIES["dacapo"](name=argument, **knobs)
    builder = FAMILIES.get(name)
    if builder is not None:
        return builder(**knobs)
    if name in _dacapo_names():
        return FAMILIES["dacapo"](name=name, **knobs)
    raise KeyError(
        f"unknown workload {name!r}; known: {', '.join(list_workloads())}")
