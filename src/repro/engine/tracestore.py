"""Content-addressed on-disk store of recorded execution traces.

The result cache (:mod:`repro.engine.cache`) memoises whole window
*payloads* under the full spec digest — program, seeds, markers **and**
:class:`~repro.timing.config.TimingConfig`.  The trace store sits one
level below it and is keyed by the **functional projection** of a
spec: the same digest with every timing-only parameter removed.  All
timing-config variations of one window therefore share a single
recorded functional trace — a sensitivity sweep over N configurations
pays one functional execution plus N cheap replays instead of N
lock-stepped executions (the record-once / replay-many architecture of
``docs/trace_format.md``).

Layout mirrors the result cache: entries live under
``<root>/v<TRACE_STORE_VERSION>/<key[:2]>/<key>.trace``, written
atomically (temp file + ``os.replace``) so concurrent pool workers can
share one store.  Every trace carries per-section CRC32s
(``docs/integrity.md``); what a failed verification becomes is the
store's ``policy`` — ``verify`` (quarantine + raise), ``repair`` (the
default: quarantine to ``<root>/quarantine/`` with a reason file and
transparently re-record) or ``trust`` (skip checksums; structurally
broken entries are still dropped).  The root defaults to ``<result
cache root>/traces`` (override with ``REPRO_TRACE_DIR``);
``REPRO_TRACE=0`` disables the store, falling every window back to the
lock-step reference path.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, Optional, Set

from ..sim.trace_io import RecordedTrace, TraceFormatError
from .cache import default_cache_dir
from .integrity import (
    IntegrityCounters,
    IntegrityError,
    check_policy,
    integrity_policy_from_env,
    purge_quarantine,
    quarantine_entry,
    quarantined_entries,
)

#: Folded into every trace key and the on-disk layout.  Bump whenever
#: the functional semantics of window execution or the trace encoding
#: change, so stale recorded streams invalidate wholesale.  v2: the
#: BRTR v2 encoding added per-section checksums.
TRACE_STORE_VERSION = 2

#: Spec parameters that cannot change the functional instruction
#: stream — only how it is timed — and are therefore excluded from the
#: functional projection.
TIMING_ONLY_PARAMS = frozenset({"config"})


def trace_enabled_by_env() -> bool:
    return os.environ.get("REPRO_TRACE", "1") not in ("0", "false", "no")


def default_trace_dir(cache_root: Optional[pathlib.Path] = None) -> pathlib.Path:
    """``REPRO_TRACE_DIR``, else ``traces/`` beside the result cache."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return pathlib.Path(env)
    root = cache_root if cache_root is not None else default_cache_dir()
    return pathlib.Path(root) / "traces"


def functional_key(kind: str, params: Dict[str, Any]) -> str:
    """Digest of a window's functional projection.

    ``params`` is the spec's plain-JSON parameter dict; every
    :data:`TIMING_ONLY_PARAMS` entry is dropped before hashing, which
    is exactly what lets windows that differ only in ``TimingConfig``
    share one recorded trace.
    """
    functional = {name: value for name, value in params.items()
                  if name not in TIMING_ONLY_PARAMS}
    blob = json.dumps(
        {"trace_schema": TRACE_STORE_VERSION, "kind": kind,
         "params": functional},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceStore:
    """Content-addressed store mapping functional keys to trace files."""

    #: In-memory :class:`RecordedTrace` handles kept alive per store.
    #: A config sweep replays the same key once per configuration;
    #: returning the *same* handle lets the one-time columnar decode
    #: (:meth:`~repro.sim.trace_io.RecordedTrace.columns`) amortise
    #: across all of them.  FIFO-bounded: traces hold their encoded
    #: bytes plus decoded columns in memory.
    HANDLE_CACHE_SIZE = 4

    def __init__(self, root: Optional[pathlib.Path] = None,
                 enabled: bool = True,
                 policy: Optional[str] = None) -> None:
        self.root = pathlib.Path(root) if root else default_trace_dir()
        self.enabled = enabled
        self.policy = check_policy(policy if policy is not None
                                   else integrity_policy_from_env())
        self.hits = 0
        self.misses = 0
        self.bytes_written = 0
        self.integrity = IntegrityCounters()
        self._handles: Dict[str, RecordedTrace] = {}
        #: Keys whose entry was quarantined and awaits re-recording —
        #: the next successful ``record`` counts as a repair.
        self._repair_pending: Set[str] = set()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"v{TRACE_STORE_VERSION}" / key[:2] / f"{key}.trace"

    def _remember(self, key: str, trace: RecordedTrace) -> None:
        self._handles.pop(key, None)
        self._handles[key] = trace
        while len(self._handles) > self.HANDLE_CACHE_SIZE:
            del self._handles[next(iter(self._handles))]

    def invalidate(self, key: str) -> None:
        """Drop the open handle for ``key``, if any.  Must be called
        whenever the underlying file is removed, quarantined or
        replaced out-of-band, or the LRU would keep serving the stale
        decoded trace."""
        self._handles.pop(key, None)

    def _quarantine(self, path: pathlib.Path, reason: str,
                    key: Optional[str] = None) -> None:
        if key is not None:
            self.invalidate(key)
            self._repair_pending.add(key)
        if quarantine_entry(path, self.root, reason, key=key,
                            store="traces") is not None:
            self.integrity.quarantined += 1

    def load(self, key: str) -> Optional[RecordedTrace]:
        """The recorded trace for ``key``, or ``None`` on a miss.

        A corrupt entry is quarantined under ``verify``/``repair``
        (and raises :class:`IntegrityError` under ``verify``); under
        ``trust`` checksums are skipped and structurally broken
        entries are silently dropped, as before the integrity layer.
        """
        if not self.enabled:
            return None
        cached = self._handles.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        path = self._path(key)
        verify = self.policy != "trust"
        try:
            trace = RecordedTrace.open(path, verify=verify)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, TraceFormatError) as exc:
            self.misses += 1
            if not verify:
                # Legacy behaviour: drop it and re-record.
                with contextlib.suppress(OSError):
                    path.unlink()
                return None
            self._quarantine(path, repr(exc), key=key)
            if self.policy == "verify":
                raise IntegrityError(
                    f"trace store entry {key[:12]} is corrupt "
                    f"(quarantined): {exc}") from exc
            return None
        if verify:
            self.integrity.verified += 1
        self.hits += 1
        self._remember(key, trace)
        return trace

    def record(self, key: str, recorder) -> RecordedTrace:
        """Record a trace into the store (atomic, last-writer-wins).

        ``recorder(path)`` must write a complete trace file at the
        given path — typically a closure over
        :func:`repro.timing.runner.record_window`.  With the store
        disabled, the recording happens in memory and nothing is
        persisted.
        """
        if not self.enabled:
            return recorder(None)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=".tmp-", suffix=".trace", delete=False)
        handle.close()
        try:
            trace = recorder(handle.name)
            os.replace(handle.name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
            raise
        self.bytes_written += trace.nbytes
        if key in self._repair_pending:
            self._repair_pending.discard(key)
            self.integrity.repaired += 1
        self._remember(key, trace)
        return trace

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).

    def _entries(self) -> Iterator[pathlib.Path]:
        version_dir = self.root / f"v{TRACE_STORE_VERSION}"
        if version_dir.is_dir():
            yield from version_dir.rglob("*.trace")

    def stats(self) -> Dict[str, Any]:
        """Entry/byte counts of the current-version store, plus the
        integrity layer's health counters."""
        entries = 0
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return {"root": str(self.root), "version": TRACE_STORE_VERSION,
                "entries": entries, "bytes": total,
                "policy": self.policy,
                "quarantined": len(quarantined_entries(self.root)),
                "integrity": self.integrity.as_dict()}

    def scan(self, repair: bool = False) -> Dict[str, Any]:
        """Verify every stored trace (the ``repro doctor`` pass).

        With ``repair``, corrupt entries are quarantined so their next
        use re-records them; without it they are only reported.
        """
        scanned = ok = corrupt = 0
        for path in sorted(self._entries()):
            scanned += 1
            try:
                RecordedTrace.open(path, verify=True)
            except (OSError, TraceFormatError) as exc:
                corrupt += 1
                if repair:
                    self._quarantine(path, repr(exc), key=path.stem)
            else:
                ok += 1
        return {"root": str(self.root), "scanned": scanned, "ok": ok,
                "corrupt": corrupt,
                "quarantined": len(quarantined_entries(self.root))}

    def prune(self) -> int:
        """Drop stale-version subtrees, leftover temp files and the
        quarantine audit trail; returns the number of files removed.
        Open handles are invalidated: pruned files must not be served
        from the LRU."""
        removed = 0
        self._handles.clear()
        if not self.root.is_dir():
            return 0
        import shutil

        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith("v") \
                    and child.name != f"v{TRACE_STORE_VERSION}":
                removed += sum(1 for p in child.rglob("*") if p.is_file())
                shutil.rmtree(child, ignore_errors=True)
        for stray in self.root.rglob(".tmp-*"):
            with contextlib.suppress(OSError):
                stray.unlink()
                removed += 1
        removed += purge_quarantine(self.root)
        return removed

    def clear(self) -> int:
        """Delete every stored trace (all versions); returns the count."""
        import shutil

        removed = sum(1 for p in self.root.rglob("*.trace")) \
            if self.root.is_dir() else 0
        shutil.rmtree(self.root, ignore_errors=True)
        self._handles.clear()
        return removed


# ----------------------------------------------------------------------
# The active store.  Window runners execute deep inside the engine —
# possibly in a pool worker process — so the store travels as module
# state rather than threading through every runner signature.  The
# engine installs its store around serial execution; pool workers
# install a reconstructed one from the shipped (root, enabled) pair.

_active_store: Optional[TraceStore] = None

#: Out-of-band per-window telemetry: the most recent timed window's
#: trace usage, consumed by the engine right after the runner returns.
#: Deliberately *not* part of the payload, so cached results stay
#: byte-identical regardless of trace hit/miss history.
_last_trace_info: Optional[Dict[str, Any]] = None


def get_active_store() -> Optional[TraceStore]:
    return _active_store


def set_active_store(store: Optional[TraceStore]) -> Optional[TraceStore]:
    """Install ``store`` as the active one; returns the previous."""
    global _active_store
    previous = _active_store
    _active_store = store
    return previous


@contextlib.contextmanager
def active_store(store: Optional[TraceStore]):
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)


def set_last_trace_info(info: Optional[Dict[str, Any]]) -> None:
    global _last_trace_info
    _last_trace_info = info


def consume_trace_info() -> Optional[Dict[str, Any]]:
    """Take (and clear) the last timed window's trace telemetry."""
    global _last_trace_info
    info = _last_trace_info
    _last_trace_info = None
    return info
