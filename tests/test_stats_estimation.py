"""CI/variance arithmetic and the population-aware estimators."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.stats import (
    matched_pair_interval,
    mean,
    sample_std,
    stderr,
    t_critical,
    t_interval,
)
from repro.stats import (
    Estimate,
    SamplingPlan,
    SamplingSummary,
    estimate_mean,
    finite_population_correction,
    matched_pair_estimate,
    stratified_estimate,
)


class TestAnalysisStats:
    def test_stderr_matches_definition(self):
        values = [1.0, 2.0, 4.0, 8.0]
        assert stderr(values) == pytest.approx(
            sample_std(values) / math.sqrt(4))

    def test_t_critical_matches_scipy(self):
        for df in (1, 4, 30):
            assert t_critical(df, 0.95) == pytest.approx(
                float(scipy_stats.t.ppf(0.975, df)))
        with pytest.raises(ValueError):
            t_critical(0)
        with pytest.raises(ValueError):
            t_critical(5, confidence=1.0)

    def test_t_interval_matches_scipy(self):
        values = [2.0, 3.0, 5.0, 7.0, 11.0]
        center, half = t_interval(values, 0.95)
        low, high = scipy_stats.t.interval(
            0.95, len(values) - 1, loc=mean(values), scale=stderr(values))
        assert center - half == pytest.approx(low)
        assert center + half == pytest.approx(high)

    def test_t_interval_single_sample_is_unbounded(self):
        center, half = t_interval([42.0])
        assert center == 42.0 and math.isinf(half)

    def test_matched_pair_interval(self):
        a, b = [5.0, 7.0, 9.0], [4.0, 5.0, 6.0]
        center, half = matched_pair_interval(a, b)
        expected_center, expected_half = t_interval([1.0, 2.0, 3.0])
        assert (center, half) == (expected_center, expected_half)
        with pytest.raises(ValueError):
            matched_pair_interval([1.0], [1.0, 2.0])


class TestEstimateMean:
    def test_complete_sample_is_exact(self):
        est = estimate_mean([1.0, 2.0, 3.0], population=3)
        assert est.half_width == 0.0
        assert est.exhaustive
        assert est.describe().endswith("(exact)")
        assert est.covers(2.0) and not est.covers(2.0001)

    def test_single_sample_is_unbounded(self):
        est = estimate_mean([5.0], population=10)
        assert math.isinf(est.half_width)
        assert est.covers(1e9)
        assert "±?" in est.describe()
        assert est.to_dict()["half_width"] is None

    def test_fpc_tightens_the_interval(self):
        values = [2.0, 3.0, 5.0, 7.0]
        _center, raw_half = t_interval(values)
        finite = estimate_mean(values, population=5)
        assert finite.half_width < raw_half
        assert finite.half_width == pytest.approx(
            raw_half * finite_population_correction(4, 5))

    def test_rejects_oversized_sample(self):
        with pytest.raises(ValueError):
            estimate_mean([1.0, 2.0], population=1)
        with pytest.raises(ValueError):
            estimate_mean([])

    def test_covers_rejects_nan(self):
        est = estimate_mean([1.0, 2.0], population=10)
        assert not est.covers(float("nan"))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=20))
    def test_point_estimate_is_the_sample_mean(self, values):
        est = estimate_mean(values, population=len(values))
        assert est.point == mean(values)
        assert est.half_width == 0.0  # n == N: exhaustive, exact


class TestPairedAndStratified:
    def test_matched_pair_estimate_is_delta_mean(self):
        pairs = [(5.0, 4.0), (7.0, 5.0), (9.0, 6.0)]
        est = matched_pair_estimate(pairs, population=3)
        assert est.point == pytest.approx(2.0)
        assert est.half_width == 0.0  # complete => exact

    def test_stratified_point_is_size_weighted(self):
        est = stratified_estimate([([2.0, 4.0], 2), ([10.0], 1)])
        # Fully observed strata: exact size-weighted mean, zero width.
        assert est.point == pytest.approx((3.0 * 2 + 10.0 * 1) / 3)
        assert est.half_width == 0.0

    def test_stratified_underobserved_singleton_is_unbounded(self):
        est = stratified_estimate([([2.0], 4), ([1.0, 3.0], 4)])
        assert math.isinf(est.half_width)

    def test_stratified_partial_has_finite_width(self):
        est = stratified_estimate([([2.0, 4.0, 6.0], 6),
                                   ([1.0, 3.0], 4)])
        assert 0.0 < est.half_width < float("inf")
        assert est.n == 5 and est.population == 10


class TestFpc:
    def test_bounds(self):
        assert finite_population_correction(5, 5) == 0.0
        assert finite_population_correction(1, 2) == pytest.approx(1.0)

    def test_monotone_in_sample_size(self):
        widths = [finite_population_correction(n, 100)
                  for n in (10, 50, 90, 100)]
        assert widths == sorted(widths, reverse=True)


class TestSamplingSummary:
    def _summary(self):
        return SamplingSummary(
            plan=SamplingPlan(mode="fraction", fraction=0.5, seed=3),
            windows_population=20, windows_run=10,
            cells_population=10, cells_run=5,
            estimates={"overhead %": estimate_mean([1.0, 2.0],
                                                   population=10)},
        )

    def test_describe_and_complete(self):
        summary = self._summary()
        assert not summary.complete
        lines = summary.describe()
        assert lines[0].startswith("sampling: fraction:0.5 seed=3")
        assert "ran 10/20 windows" in lines[0]
        assert any("overhead %" in line for line in lines[1:])

    def test_to_dict_round_trips_plan(self):
        data = self._summary().to_dict()
        assert data["plan"]["mode"] == "fraction"
        assert data["windows_run"] == 10
        assert "overhead %" in data["estimates"]
