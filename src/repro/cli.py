"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro figure9 [--scale 0.05]
    python -m repro figure10 [--scale 0.05]
    python -m repro figure12 [--jvm-scale 3]
    python -m repro figure13 [--chars 4000]
    python -m repro figure14 [--chars 4000]
    python -m repro figure2  [--chars 4000]
    python -m repro sensitivity [--scale 0.02]
    python -m repro cost
    python -m repro scorecard  # PASS/FAIL every headline claim (~1 min)
    python -m repro all      # everything (several minutes)
    python -m repro cache [stats|prune|clear]
    python -m repro bench    # fastpath-vs-golden replay benchmark

Execution goes through the shared :mod:`repro.engine` (see
``docs/engine.md``): ``--jobs N`` / ``REPRO_JOBS`` fans simulation
windows out across worker processes, results are memoised under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``), timed windows
record/replay functional traces through the store described in
``docs/trace_format.md`` (``REPRO_TRACE=0`` disables), ``--json``
switches stdout to a machine-readable document per command, and
``--out DIR`` additionally writes ``<command>.txt`` (plus
``BENCH_<command>.json`` and the per-window ``BENCH_windows.jsonl``
trajectory in ``--json`` mode).  ``scorecard`` exits non-zero when any
headline claim fails; ``cache`` inspects or maintains both on-disk
stores.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from .engine import ExperimentEngine, ResultCache, RunRecorder, set_engine

#: (data, text) produced by one command.
CommandResult = Tuple[Any, str]


def _figure9(args) -> CommandResult:
    from .experiments import figure9, format_accuracy_rows

    rows = figure9(scale=args.scale)
    return rows, format_accuracy_rows(
        rows, f"Figure 9: accuracy at 2^10 (scale {args.scale})")


def _figure10(args) -> CommandResult:
    from .experiments import figure10, format_accuracy_rows

    rows = figure10(scale=args.scale)
    return rows, format_accuracy_rows(
        rows, f"Figure 10: accuracy at 2^13 (scale {args.scale})")


def _figure12(args) -> CommandResult:
    from .experiments import figure12, format_fig12_rows

    rows = figure12(scale=args.jvm_scale)
    return [dataclasses.asdict(row) for row in rows], format_fig12_rows(rows)


def _sweep(args):
    from .experiments import microbench_sweep

    return microbench_sweep(n_chars=args.chars)


def _figure13(args) -> CommandResult:
    from .experiments import format_figure13

    sweep = _sweep(args)
    return sweep.to_dict(), format_figure13(sweep)


def _figure14(args) -> CommandResult:
    from .experiments import format_figure14

    sweep = _sweep(args)
    return sweep.to_dict(), format_figure14(sweep)


def _figure2(args) -> CommandResult:
    from .analysis import decompose, format_decomposition

    sweep = _sweep(args)
    decompositions = [decompose(sweep, kind, "full-dup")
                      for kind in ("cbs", "brr")]
    text = "\n".join(format_decomposition(d) for d in decompositions)
    return [dataclasses.asdict(d) for d in decompositions], text


def _sensitivity(args) -> CommandResult:
    from .experiments import (
        bit_policy_sensitivity,
        format_sensitivity_result,
        format_timing_sweep,
        seed_noise_baseline,
        taps_sensitivity,
        timing_config_sweep,
    )

    taps = taps_sensitivity(scale=args.scale)
    bits = bit_policy_sensitivity(scale=args.scale)
    noise = seed_noise_baseline(scale=args.scale)
    timing = timing_config_sweep(n_chars=args.chars)
    text = "\n".join([
        format_sensitivity_result(taps),
        format_sensitivity_result(bits),
        f"seed-variation baseline: mean={noise['mean']:.2f}% "
        f"std={noise['std']:.3f}%",
        format_timing_sweep(timing),
    ])
    return {"taps": taps.to_dict(), "bit_policy": bits.to_dict(),
            "seed_noise": noise, "timing": timing.to_dict()}, text


def _cost(args) -> CommandResult:
    from .experiments import cost_rows, format_cost_table

    return ([dataclasses.asdict(row) for row in cost_rows()],
            format_cost_table())


def _scorecard(args) -> CommandResult:
    from .experiments import format_scorecard, run_scorecard, scorecard_failed

    results = run_scorecard(quick=args.scale <= 0.02)
    data = {
        "claims": [result.to_dict() for result in results],
        "passed": sum(r.passed for r in results),
        "total": len(results),
        "failed": scorecard_failed(results),
    }
    return data, format_scorecard(results)


COMMANDS = {
    "figure9": _figure9,
    "figure10": _figure10,
    "figure12": _figure12,
    "figure13": _figure13,
    "figure14": _figure14,
    "figure2": _figure2,
    "sensitivity": _sensitivity,
    "cost": _cost,
    "scorecard": _scorecard,
}

#: ``repro cache`` actions; the command lives outside COMMANDS so that
#: ``repro all`` regenerates figures without touching the stores.
CACHE_ACTIONS = ("stats", "prune", "clear")


def _bench_command(args, out_dir: Optional[pathlib.Path]) -> Tuple[Any, str, int]:
    """``repro bench``: fastpath-vs-golden replay benchmark.

    Runs the 19 scorecard windows through both replay implementations
    (cold: record in memory, bypass both stores), asserts the stats
    are byte-identical, and emits the machine-readable perf trajectory
    as ``BENCH_timing.json`` when ``--out`` is given.  Exits non-zero
    on any divergence — this is the CI perf-smoke gate.
    """
    from .experiments import bench_timing, format_bench

    data = bench_timing()
    if out_dir is not None:
        (out_dir / "BENCH_timing.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data, format_bench(data), 0 if data["aggregate"]["identical"] else 1


def _cache_command(args, engine: ExperimentEngine) -> CommandResult:
    """Inspect or maintain the result cache and the trace store."""
    action = args.action or "stats"
    data: Dict[str, Any] = {"action": action}
    if action == "prune":
        data["removed"] = {"results": engine.cache.prune(),
                           "traces": engine.trace_store.prune()}
    elif action == "clear":
        data["removed"] = {"results": engine.cache.clear(),
                           "traces": engine.trace_store.clear()}
    data["results"] = engine.cache.stats()
    data["traces"] = engine.trace_store.stats()
    lines = []
    if "removed" in data:
        lines.append(
            f"{action}: removed {data['removed']['results']} result "
            f"entries, {data['removed']['traces']} trace files")
    for title, stats in (("result cache", data["results"]),
                         ("trace store", data["traces"])):
        lines.append(
            f"{title:<12} {stats['entries']:>6} entries  "
            f"{stats['bytes']:>12} bytes  v{stats['version']}  "
            f"[{stats['root']}]")
    return data, "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Branch-on-Random (CGO 2008) evaluation.",
    )
    parser.add_argument("command",
                        choices=list(COMMANDS) + ["all", "cache", "bench"],
                        help="which figure/table to regenerate, `cache` to "
                             "inspect/maintain the on-disk stores, or "
                             "`bench` to run the fastpath-vs-golden timing "
                             "benchmark (writes BENCH_timing.json under "
                             "--out)")
    parser.add_argument("action", nargs="?", choices=CACHE_ACTIONS,
                        default=None,
                        help="for `cache`: stats (default), prune stale "
                             "versions, or clear everything")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's invocation counts "
                             "for accuracy experiments (default 0.05)")
    parser.add_argument("--jvm-scale", type=float, default=3.0,
                        help="outer-loop multiplier for Figure 12")
    parser.add_argument("--chars", type=int, default=4000,
                        help="microbenchmark characters for Figures 13/14/2")
    parser.add_argument("--out", type=str, default=None,
                        help="directory to also write each figure's table "
                             "into (<out>/<command>.txt)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="simulation-window worker processes "
                             "(default: REPRO_JOBS, else 1 = serial)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON document per "
                             "command instead of the text tables")
    parser.add_argument("--log-jsonl", type=str, default=None,
                        help="append one JSONL record per simulation "
                             "window to this file")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="window-result cache directory "
                             "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the window-result cache")
    return parser


def _build_engine(args, out_dir: Optional[pathlib.Path]) -> ExperimentEngine:
    """Configure the process-wide engine from flags and environment."""
    jobs = args.jobs
    if jobs is None:
        env = os.environ.get("REPRO_JOBS")
        jobs = int(env) if env else (os.cpu_count() or 1)
    log_path: Optional[pathlib.Path] = None
    if args.log_jsonl:
        log_path = pathlib.Path(args.log_jsonl)
    elif args.json and out_dir is not None:
        log_path = out_dir / "BENCH_windows.jsonl"
    cache = ResultCache(
        root=pathlib.Path(args.cache_dir) if args.cache_dir else None,
        enabled=not args.no_cache
        and os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no"),
    )
    engine = ExperimentEngine(jobs=jobs, cache=cache,
                              recorder=RunRecorder(log_path))
    set_engine(engine)
    return engine


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.action is not None and args.command != "cache":
        parser.error(f"'{args.action}' is only valid after the "
                     f"`cache` command")
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    engine = _build_engine(args, out_dir)

    if args.command == "cache":
        data, text = _cache_command(args, engine)
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(text)
        return 0

    if args.command == "bench":
        started = time.time()
        data, text, code = _bench_command(args, out_dir)
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(text)
        print(f"[bench finished in {time.time() - started:.1f}s]\n",
              file=sys.stderr)
        return code

    commands = list(COMMANDS) if args.command == "all" else [args.command]

    exit_code = 0
    for name in commands:
        started = time.time()
        windows_before = len(engine.recorder.records)
        data, text = COMMANDS[name](args)
        elapsed = time.time() - started

        if name == "scorecard" and isinstance(data, dict) and data["failed"]:
            exit_code = 1

        if args.json:
            document: Dict[str, Any] = {
                "command": name,
                "elapsed_s": round(elapsed, 3),
                "data": data,
                "engine": dict(
                    engine.summary(),
                    command_windows=(
                        len(engine.recorder.records) - windows_before),
                    jobs=engine.jobs,
                ),
            }
            rendered = json.dumps(document, indent=2, sort_keys=True)
            print(rendered)
            if out_dir is not None:
                (out_dir / f"BENCH_{name}.json").write_text(rendered + "\n")
        else:
            print(text)
            if out_dir is not None:
                (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"[{name} finished in {elapsed:.1f}s]\n", file=sys.stderr)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module smoke-tested via main()
    raise SystemExit(main())
