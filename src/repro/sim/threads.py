"""Thread contexts and the Section 3.4 LFSR save/restore.

"Deterministic branch-on-random behavior for applications ... the LFSR
state must be readable and writable by software, so that it can be
initialized by the application to a known value and saved/restored on
context switches."

:class:`ThreadContext` captures one software thread's architectural
state *including its LFSR value*; :class:`ContextScheduler` multiplexes
threads over one :class:`~repro.sim.machine.Machine`, performing the
full save/restore at each switch.  With the LFSR included in the
context, each thread observes its own deterministic branch-on-random
sequence regardless of interleaving — the property the paper needs for
reproducible application testing.  (Setting ``switch_lfsr=False``
models hardware without software-visible LFSR state: threads then
perturb each other's sequences.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.brr import BranchOnRandomUnit
from .machine import Machine


@dataclass
class ThreadContext:
    """Saved architectural state of one software thread."""

    name: str
    pc: int
    regs: List[int] = field(default_factory=lambda: [0] * 16)
    lfsr_state: Optional[int] = None
    finished: bool = False
    steps: int = 0


class ContextScheduler:
    """Round-robin software threads on a single machine.

    Threads are independent code regions of the same program image
    (each with its own entry label and, by convention, disjoint
    register/stack usage is the threads' own responsibility — exactly
    like an OS).  The scheduler performs the context switch: registers,
    PC and — when ``switch_lfsr`` — the branch-on-random LFSR, via the
    unit's scan-chain access.
    """

    def __init__(self, machine: Machine, switch_lfsr: bool = True) -> None:
        if machine.brr_unit is not None and not isinstance(
                machine.brr_unit, BranchOnRandomUnit):
            raise TypeError(
                "context switching needs a BranchOnRandomUnit (or none)"
            )
        self.machine = machine
        self.switch_lfsr = switch_lfsr and machine.brr_unit is not None
        self.threads: List[ThreadContext] = []
        self.switches = 0

    def add_thread(self, name: str, entry_label: str,
                   lfsr_seed: Optional[int] = None) -> ThreadContext:
        """Register a thread starting at ``entry_label``."""
        context = ThreadContext(
            name=name,
            pc=self.machine.program.address_of(entry_label),
            lfsr_state=lfsr_seed,
        )
        self.threads.append(context)
        return context

    def _switch_in(self, context: ThreadContext) -> None:
        machine = self.machine
        machine.regs[:] = context.regs
        machine.pc = context.pc
        machine.halted = False
        if self.switch_lfsr and context.lfsr_state is not None:
            machine.brr_unit.restore_context(context.lfsr_state)

    def _switch_out(self, context: ThreadContext) -> None:
        machine = self.machine
        context.regs = list(machine.regs)
        context.pc = machine.pc
        if self.switch_lfsr and machine.brr_unit is not None:
            context.lfsr_state = machine.brr_unit.save_context()

    def run(self, quantum: int = 100, max_rounds: int = 10_000) -> int:
        """Round-robin until every thread halts; returns total steps.

        Each thread runs ``quantum`` instructions (or to its halt) per
        turn; a thread's halt finishes that thread only.
        """
        total = 0
        for __ in range(max_rounds):
            live = [t for t in self.threads if not t.finished]
            if not live:
                return total
            for context in live:
                self._switch_in(context)
                self.switches += 1
                executed = 0
                while executed < quantum and not self.machine.halted:
                    self.machine.step()
                    executed += 1
                context.steps += executed
                total += executed
                if self.machine.halted:
                    context.finished = True
                self._switch_out(context)
        raise RuntimeError(f"threads did not finish within {max_rounds} rounds")
