"""Online performance auditing via branch-on-random (Section 7).

"Another example is using branch-on-random to efficiently select among
functionally-equivalent code versions to determine which is fastest."
A dispatch site normally falls through to the incumbent version; a
branch-on-random occasionally diverts execution to an audit, running a
candidate version and recording its cost.  Because the audit check is
a single brr instruction, the steady-state dispatch overhead is
negligible — the property the Lau et al. online-auditing system needed
hardware support for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.brr import BranchOnRandomUnit, RandomSource
from ..core.condition import field_for_interval


class VersionStats:
    """Running cost estimate of one code version."""

    __slots__ = ("name", "runs", "total_cost")

    def __init__(self, name: str) -> None:
        self.name = name
        self.runs = 0
        self.total_cost = 0.0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / self.runs if self.runs else float("inf")


class VersionAuditor:
    """brr-dispatched selection among functionally equivalent versions."""

    def __init__(
        self,
        versions: Sequence[str],
        audit_interval: int = 64,
        unit: Optional[RandomSource] = None,
        min_audits: int = 8,
    ) -> None:
        if len(versions) < 2:
            raise ValueError("auditing needs at least two versions")
        if len(set(versions)) != len(versions):
            raise ValueError("version names must be unique")
        self.field = field_for_interval(audit_interval)
        self.unit: RandomSource = unit if unit is not None else BranchOnRandomUnit()
        self.stats: Dict[str, VersionStats] = {
            name: VersionStats(name) for name in versions
        }
        self._order: List[str] = list(versions)
        self._incumbent = versions[0]
        self._audit_cursor = 0
        self.min_audits = min_audits
        self.dispatches = 0
        self.audits = 0

    @property
    def incumbent(self) -> str:
        return self._incumbent

    def choose(self) -> Tuple[str, bool]:
        """Pick the version to run for this invocation.

        Returns ``(version, audited)``.  Most invocations fall through
        to the incumbent; with the encoded audit frequency, a candidate
        (rotating round-robin, incumbent included so its estimate stays
        fresh) is measured instead.
        """
        self.dispatches += 1
        if self.unit.resolve(self.field):
            self.audits += 1
            candidate = self._order[self._audit_cursor % len(self._order)]
            self._audit_cursor += 1
            return candidate, True
        return self._incumbent, False

    def report(self, version: str, cost: float) -> None:
        """Record the measured cost of an audited run."""
        try:
            stats = self.stats[version]
        except KeyError:
            raise KeyError(f"unknown version {version!r}") from None
        stats.runs += 1
        stats.total_cost += cost
        self._maybe_switch()

    def _maybe_switch(self) -> None:
        if any(s.runs < self.min_audits for s in self.stats.values()):
            return
        best = min(self.stats.values(), key=lambda s: s.mean_cost)
        self._incumbent = best.name

    def ranking(self) -> List[Tuple[str, float]]:
        """Versions ordered fastest-first by estimated mean cost."""
        return sorted(
            ((s.name, s.mean_cost) for s in self.stats.values()),
            key=lambda pair: pair[1],
        )
