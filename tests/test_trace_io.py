"""Tests for the binary trace encoding and machine checkpoints."""

import io

import pytest

from repro.core.brr import BranchOnRandomUnit
from repro.core.lfsr import Lfsr
from repro.isa.asm import assemble
from repro.sim import (
    Machine,
    MachineError,
    RecordedTrace,
    TraceFormatError,
    TraceRecord,
    TraceWriter,
    read_trace,
    trace_from_records,
    write_trace,
)
from repro.sim.trace_io import _read_uvarint, _write_uvarint

LOOP_WITH_MARKERS = """
    marker 1
    li r1, 20
    li r4, 0x800
loop:
    sw r1, 0(r4)
    lw r2, 0(r4)
    add r3, r3, r2
    marker 3
    addi r1, r1, -1
    bne r1, r0, loop
    marker 2
    halt
"""


def _run_records(source, **kwargs):
    machine = Machine(assemble(source), **kwargs)
    return list(machine.run_trace()), machine


class TestUvarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 16384,
                                       2**32 - 1, 2**35 + 17])
    def test_round_trip(self, value):
        out = io.BytesIO()
        _write_uvarint(out, value)
        decoded, pos = _read_uvarint(out.getvalue(), 0)
        assert decoded == value
        assert pos == len(out.getvalue())

    def test_single_byte_below_128(self):
        out = io.BytesIO()
        _write_uvarint(out, 127)
        assert out.getvalue() == b"\x7f"

    def test_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            _write_uvarint(io.BytesIO(), -1)

    def test_truncated_rejected(self):
        with pytest.raises(TraceFormatError):
            _read_uvarint(b"\x80\x80", 0)  # continuation bit, no final byte


class TestRecordEquality:
    """Satellite: TraceRecord compares structurally."""

    def test_round_tripped_records_compare_equal(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        assert list(trace.records()) == records

    def test_field_difference_detected(self):
        records, _ = _run_records("nop\nhalt")
        a = records[0]
        b = TraceRecord(a.pc, a.instr, a.next_pc, taken=not a.taken)
        assert a != b
        assert a == TraceRecord(a.pc, a.instr, a.next_pc, taken=a.taken)

    def test_hashable_via_tuple_form(self):
        records, _ = _run_records("nop\nnop\nhalt")
        # Both nops decode identically at different PCs: distinct records.
        assert len({records[0], records[1]}) == 2
        assert hash(records[0]) == hash(TraceRecord(
            records[0].pc, records[0].instr, records[0].next_pc))


class TestRoundTrip:
    def test_memory_round_trip(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        assert len(trace) == len(records)
        assert list(trace.records()) == records

    def test_file_round_trip(self, tmp_path):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        path = tmp_path / "loop.trace"
        assert write_trace(path, records) == len(records)
        trace = read_trace(path)
        assert trace.source == path
        assert trace.nbytes == path.stat().st_size
        assert list(trace.records()) == records

    def test_trap_record_round_trips(self):
        """Trap-emulated instructions carry no decoding (instr=None)."""
        record = TraceRecord(0x40, None, 0x80, taken=True)
        trace = trace_from_records([record])
        (back,) = trace.records()
        assert back == record
        assert back.instr is None

    def test_brr_stream_round_trips(self):
        source = """
            li r1, 200
        loop:
            brr 1/4, hit
        back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        hit:
            addi r2, r2, 1
            jmp back
        """
        records, _ = _run_records(
            source, brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0xBEEF)))
        trace = trace_from_records(records)
        assert list(trace.records()) == records

    def test_compression_straight_line(self):
        # Straight-line code: flags byte + instruction word varint.
        records, _ = _run_records("\n".join(["nop"] * 200 + ["halt"]))
        trace = trace_from_records(records)
        body = trace.nbytes - 100  # generous header/index/footer allowance
        assert body / len(records) < 3.0

    def test_repeated_decoding_is_stable(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        assert list(trace.records()) == list(trace.records())


class TestMarkerIndex:
    def test_marker_steps_match_stream(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        from repro.isa.instructions import Op

        fired = [i for i, r in enumerate(records)
                 if r.instr is not None and r.instr.op is Op.MARKER
                 and r.instr.imm == 3]
        assert [trace.marker_step(3, k + 1) for k in range(len(fired))] \
            == fired
        assert trace.marker_step(1, 1) == 0

    def test_unfired_marker_rejected(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        with pytest.raises(TraceFormatError):
            trace.marker_step(9, 1)
        with pytest.raises(TraceFormatError):
            trace.marker_step(2, 2)  # marker 2 fires exactly once
        with pytest.raises(TraceFormatError):
            trace.marker_step(2, 0)  # counts are 1-based


class TestFormatErrors:
    def _encoded(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        trace = trace_from_records(records)
        return trace._data

    def test_bad_magic(self):
        data = self._encoded()
        with pytest.raises(TraceFormatError, match="magic"):
            RecordedTrace(b"XXXX" + data[4:])

    def test_wrong_version(self):
        data = bytearray(self._encoded())
        data[4] = 99
        with pytest.raises(TraceFormatError, match="version"):
            RecordedTrace(bytes(data))

    def test_truncated_footer(self):
        data = self._encoded()
        with pytest.raises(TraceFormatError):
            RecordedTrace(data[:-4])

    def test_too_short(self):
        with pytest.raises(TraceFormatError):
            RecordedTrace(b"BRTR")

    def test_truncated_body(self):
        data = self._encoded()
        # Rebuild with the footer claiming more records than encoded.
        trace = RecordedTrace(data)
        records = list(trace.records())
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        for record in records[:-5]:
            writer.append(record)
        writer.n_records += 5  # lie about the count
        writer.finish()
        with pytest.raises(TraceFormatError, match="ends after"):
            list(RecordedTrace(buffer.getvalue()).records())

    def test_append_after_finish_rejected(self):
        records, _ = _run_records("nop\nhalt")
        buffer = io.BytesIO()
        writer = TraceWriter(buffer)
        writer.append(records[0])
        writer.finish()
        with pytest.raises(TraceFormatError):
            writer.append(records[1])
        writer.finish()  # idempotent


class TestCheckpoint:
    def test_resume_reproduces_suffix(self):
        program = assemble(LOOP_WITH_MARKERS)
        machine = Machine(program)
        machine.run_until_marker(3, 5)
        snapshot = machine.checkpoint()
        suffix = list(machine.run_trace())

        resumed = Machine(program)
        resumed.restore(snapshot)
        assert list(resumed.run_trace()) == suffix
        assert resumed.regs == machine.regs
        assert resumed.marker_counts == machine.marker_counts

    def test_checkpoint_carries_lfsr_context(self):
        source = """
            li r1, 50
        loop:
            brr 1/2, hit
        back:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        hit:
            addi r2, r2, 1
            jmp back
        """
        program = assemble(source)
        machine = Machine(program,
                          brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0xACE1)))
        for _ in range(40):
            machine.step()
        snapshot = machine.checkpoint()
        assert snapshot.brr_context is not None
        suffix = list(machine.run_trace())

        resumed = Machine(program,
                          brr_unit=BranchOnRandomUnit(Lfsr(20, seed=1)))
        resumed.restore(snapshot)
        assert list(resumed.run_trace()) == suffix

    def test_restore_without_brr_unit_rejected(self):
        program = assemble("nop\nhalt")
        machine = Machine(program,
                          brr_unit=BranchOnRandomUnit(Lfsr(20, seed=3)))
        snapshot = machine.checkpoint()
        plain = Machine(program)
        with pytest.raises(MachineError, match="restore_context"):
            plain.restore(snapshot)

    def test_memory_size_mismatch_rejected(self):
        program = assemble("nop\nhalt")
        snapshot = Machine(program, memory_size=1 << 16).checkpoint()
        with pytest.raises(MachineError, match="bytes"):
            Machine(program, memory_size=1 << 17).restore(snapshot)

    def test_restore_replays_memory_image(self):
        program = assemble("""
            li r1, 0x900
            lw r2, 0(r1)
            halt
        """)
        machine = Machine(program)
        machine.memory.store_word(0x900, 1234)
        snapshot = machine.checkpoint()

        other = Machine(program)
        other.restore(snapshot)
        other.run()
        assert other.regs[2] == 1234


class TestChunkAlignment:
    """``columns(chunk_records=...)`` is group-aligned: any positive
    chunk size must yield byte-identical columns and replay stats (the
    vector kernel's span segmentation depends on it)."""

    CHUNKS = (1, 7, 1 << 15)

    def _encoded(self):
        records, _ = _run_records(LOOP_WITH_MARKERS)
        return trace_from_records(records)._data

    def test_columns_identical_across_chunk_sizes(self):
        encoded = self._encoded()
        # columns() memoises per handle -> fresh handle per chunk size.
        reference = RecordedTrace(encoded).columns()
        for chunk in self.CHUNKS:
            cols = RecordedTrace(encoded).columns(chunk_records=chunk)
            assert cols.n_records == reference.n_records
            assert list(cols.pc) == list(reference.pc)
            assert list(cols.word_id) == list(reference.word_id)
            assert list(cols.next_pc) == list(reference.next_pc)
            assert bytes(cols.taken) == bytes(reference.taken)
            assert list(cols.mem_addr) == list(reference.mem_addr)
            assert cols.instrs == reference.instrs

    @pytest.mark.parametrize("kernel", ["loop", "vector"])
    def test_replay_stats_identical_across_chunk_sizes(self, kernel):
        from repro.timing.runner import replay_window

        program = assemble(LOOP_WITH_MARKERS)
        records, _ = _run_records(LOOP_WITH_MARKERS)
        encoded = trace_from_records(records)._data
        reference = None
        for chunk in self.CHUNKS:
            trace = RecordedTrace(encoded)
            trace.columns(chunk_records=chunk)  # decode at this size
            result = replay_window(trace, begin=(1, 1), end=(2, 1),
                                   program=program, fast=kernel)
            if reference is None:
                reference = result
            else:
                assert result.stats == reference.stats
                assert result.total_steps == reference.total_steps

    def test_nonpositive_chunk_rejected(self):
        encoded = self._encoded()
        with pytest.raises(ValueError):
            RecordedTrace(encoded).columns(chunk_records=0)
