"""Differential fuzzing: every execution path answers to every other.

See :mod:`repro.fuzz.harness` for the machinery and ``docs/
workloads.md`` for the workload generator it drives.
"""

from .harness import (
    DEFAULT_CONFIGS,
    STRESS_CONFIG,
    TIMING_PAIRS,
    Divergence,
    FuzzReport,
    ServeFaultHook,
    format_fuzz,
    run_differential_fuzz,
    shrink_divergence,
)

__all__ = [
    "DEFAULT_CONFIGS",
    "STRESS_CONFIG",
    "TIMING_PAIRS",
    "Divergence",
    "FuzzReport",
    "ServeFaultHook",
    "format_fuzz",
    "run_differential_fuzz",
    "shrink_divergence",
]
