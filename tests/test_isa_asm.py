"""Tests for the assembler and disassembler."""

import pytest

from repro.isa.asm import AsmError, TRAP_BRR_OPCODE, assemble, parse_freq
from repro.isa.disasm import disassemble, disassemble_word
from repro.isa.instructions import Op, decode
from repro.isa.program import Program


class TestBasicAssembly:
    def test_simple_program(self):
        prog = assemble(
            """
            li   r1, 10
            addi r1, r1, -1
            halt
            """
        )
        assert len(prog) == 3
        ops = [decode(w).op for w in prog.words]
        assert ops == [Op.LI, Op.ADDI, Op.HALT]

    def test_labels_and_branches(self):
        prog = assemble(
            """
            start:
                li   r1, 3
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        assert prog.address_of("start") == 0
        assert prog.address_of("loop") == 4
        branch = decode(prog.words[2])
        # Branch at address 8, target 4: word offset (4 - 12)/4 = -2.
        assert branch.op is Op.BNE and branch.imm == -2

    def test_label_on_same_line(self):
        prog = assemble("top: addi r1, r1, 1\n jmp top\n halt")
        assert prog.address_of("top") == 0

    def test_forward_reference(self):
        prog = assemble(
            """
            jmp end
            nop
            end: halt
            """
        )
        jump = decode(prog.words[0])
        assert jump.imm == 1  # skip the nop

    def test_memory_operands(self):
        prog = assemble("lw r2, 8(r3)\n sw r2, -4(sp)\n halt")
        load = decode(prog.words[0])
        store = decode(prog.words[1])
        assert (load.rd, load.ra, load.imm) == (2, 3, 8)
        assert (store.rd, store.ra, store.imm) == (2, 14, -4)

    def test_register_aliases(self):
        prog = assemble("jr lr")
        assert decode(prog.words[0]).ra == 15

    def test_ret_pseudo(self):
        prog = assemble("ret")
        instr = decode(prog.words[0])
        assert instr.op is Op.JR and instr.ra == 15

    def test_mov_pseudo(self):
        prog = assemble("mov r1, r2")
        instr = decode(prog.words[0])
        assert (instr.op, instr.rd, instr.ra, instr.imm) == (Op.ADDI, 1, 2, 0)

    def test_comments_stripped(self):
        prog = assemble("nop ; trailing\n# whole line\nnop # other\nhalt")
        assert len(prog) == 3

    def test_word_directive(self):
        prog = assemble(".word 0xdeadbeef 42")
        assert prog.words == [0xDEADBEEF, 42]

    def test_space_directive(self):
        prog = assemble(".space 3\nhalt")
        assert prog.words[:3] == [0, 0, 0]
        assert prog.address_of is not None

    def test_word_with_label_value(self):
        prog = assemble("entry: nop\n.word entry")
        assert prog.words[1] == 0

    def test_base_address(self):
        prog = assemble("x: halt", base=0x1000)
        assert prog.address_of("x") == 0x1000
        assert prog.end == 0x1004

    def test_source_map(self):
        prog = assemble("nop\nhalt")
        assert prog.source_for(0) == "nop"
        assert prog.source_for(4) == "halt"


class TestBrrSyntax:
    def test_field_value(self):
        prog = assemble("brr 9, t\nt: halt")
        instr = decode(prog.words[0])
        assert instr.op is Op.BRR and instr.freq == 9 and instr.imm == 0

    def test_interval_syntax(self):
        prog = assemble("brr 1/1024, t\nt: halt")
        assert decode(prog.words[0]).freq == 9

    def test_percent_syntax(self):
        prog = assemble("brr 50%, t\nt: halt")
        assert decode(prog.words[0]).freq == 0

    def test_paper_one_percent(self):
        # The paper's Figure 4 example: brr 1%, uncomm.
        assert parse_freq("1%") == 6  # (1/2)^7 = 0.78% is nearest

    def test_brra(self):
        prog = assemble("brra t\nnop\nt: halt")
        instr = decode(prog.words[0])
        assert instr.op is Op.BRRA and instr.imm == 1

    def test_bad_ratio_rejected(self):
        with pytest.raises(AsmError):
            assemble("brr 2/1024, t\nt: halt")


class TestTrapMode:
    def test_brr_becomes_two_words(self):
        prog = assemble("brr 9, t\nnop\nt: halt", brr_mode="trap")
        assert len(prog) == 4
        assert (prog.words[0] >> 26) == TRAP_BRR_OPCODE
        assert (prog.words[0] >> 22) & 0xF == 9
        # Offset word: target 12, fall-through 8 -> +4 bytes.
        assert prog.words[1] == 4

    def test_backward_offset_encoded_twos_complement(self):
        prog = assemble("t: halt\nbrr 0, t", brr_mode="trap")
        # brr at address 4; fall-through 12; target 0 -> offset -12.
        assert prog.words[2] == (-12) & 0xFFFFFFFF

    def test_labels_account_for_two_word_brr(self):
        native = assemble("brr 0, t\nnop\nt: halt")
        trap = assemble("brr 0, t\nnop\nt: halt", brr_mode="trap")
        assert native.address_of("t") == 8
        assert trap.address_of("t") == 12

    def test_brra_lowers_to_jmp(self):
        prog = assemble("brra t\nt: halt", brr_mode="trap")
        assert decode(prog.words[0]).op is Op.JMP

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            assemble("nop", brr_mode="signal")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError):
            assemble("frobnicate r1")

    def test_undefined_label(self):
        with pytest.raises(AsmError):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(AsmError):
            assemble("x: nop\nx: nop")

    def test_bad_register(self):
        with pytest.raises(AsmError):
            assemble("addi r16, r0, 1")

    def test_bad_mem_operand(self):
        with pytest.raises(AsmError):
            assemble("lw r1, r2")

    def test_error_reports_line_number(self):
        with pytest.raises(AsmError) as info:
            assemble("nop\nbogus r1\nnop")
        assert info.value.line_no == 2


class TestProgramImage:
    def test_word_at(self):
        prog = assemble("nop\nhalt", base=0x100)
        assert decode(prog.word_at(0x104)).op is Op.HALT

    def test_word_at_out_of_range(self):
        prog = assemble("halt")
        with pytest.raises(IndexError):
            prog.word_at(4)

    def test_word_at_misaligned(self):
        prog = assemble("nop\nhalt")
        with pytest.raises(ValueError):
            prog.word_at(2)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Program([0], base=2)

    def test_missing_label(self):
        prog = assemble("halt")
        with pytest.raises(KeyError):
            prog.address_of("missing")


class TestDisassembler:
    def test_roundtrip_through_assembler(self):
        source = """
        start:
            li   r1, 100
            addi r2, r1, -5
            lw   r3, 8(r2)
            sw   r3, 0(sp)
            beq  r1, r2, start
            brr  1/512, start
            jal  start
            jr   lr
            marker 7
            halt
        """
        prog = assemble(source)
        listing = disassemble(prog)
        assert "li r1, 100" in listing
        assert "brr 1/512" in listing
        assert "marker 7" in listing
        assert "start:" in listing

    def test_disassemble_reassembles_identically(self):
        source = "li r1, 5\nx: addi r1, r1, -1\nbne r1, r0, x\nhalt"
        prog = assemble(source)
        listing = disassemble(prog)
        # Strip addresses, reassemble, compare words.
        lines = []
        for line in listing.splitlines():
            if line.endswith(":"):
                lines.append(line)
            else:
                lines.append(line.split(":", 1)[1])
        reassembled = assemble("\n".join(lines))
        assert reassembled.words == prog.words

    def test_invalid_word_renders_as_data(self):
        assert disassemble_word(0x3D << 26) == f".word {0x3D << 26:#010x}"

    def test_brr_relative_without_addr(self):
        prog = assemble("brr 0, t\nt: halt")
        text = disassemble_word(prog.words[0])
        assert text == "brr 1/2, .+0"
