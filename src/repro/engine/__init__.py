"""Shared experiment-execution subsystem (see ``docs/engine.md``).

Every figure reproduction decomposes into independent, deterministic
simulation windows.  This package turns that observation into
infrastructure: declarative :class:`WindowSpec`s, a content-addressed
on-disk :class:`ResultCache`, a record-once / replay-many
:class:`TraceStore` keyed by each window's functional projection
(``docs/trace_format.md``), a fault-tolerant process-pool executor
(timeouts, bounded retry, pool rebuild, ``raise``/``retry``/``skip``
failure policies — all in one :class:`EngineConfig`) with a serial
deterministic fallback, structured JSONL run artifacts, and a resume
path that re-executes only the windows an interrupted run left
uncached.
"""

from .artifacts import (
    RUN_META_TYPE,
    RunRecorder,
    WindowRecord,
    completed_keys,
    read_run_log,
)
from .cache import ResultCache, default_cache_dir
from .config import FAILURE_POLICIES, EngineConfig
from .core import (
    ExperimentEngine,
    WindowFailure,
    WindowTimeout,
    default_jobs,
    get_engine,
    is_failure,
    run_windows,
    set_engine,
)
from .faults import InjectedWorkerFault, should_inject
from .spec import SCHEMA_VERSION, WindowSpec
from .tracestore import (
    TIMING_ONLY_PARAMS,
    TRACE_STORE_VERSION,
    TraceStore,
    active_store,
    default_trace_dir,
    functional_key,
    trace_enabled_by_env,
)

__all__ = [
    "SCHEMA_VERSION",
    "WindowSpec",
    "ResultCache",
    "default_cache_dir",
    "RUN_META_TYPE",
    "RunRecorder",
    "WindowRecord",
    "completed_keys",
    "read_run_log",
    "EngineConfig",
    "FAILURE_POLICIES",
    "ExperimentEngine",
    "WindowFailure",
    "WindowTimeout",
    "InjectedWorkerFault",
    "should_inject",
    "default_jobs",
    "get_engine",
    "is_failure",
    "run_windows",
    "set_engine",
    "TIMING_ONLY_PARAMS",
    "TRACE_STORE_VERSION",
    "TraceStore",
    "active_store",
    "default_trace_dir",
    "functional_key",
    "trace_enabled_by_env",
]
