"""Tests for the Section 5.3 microbenchmark generator."""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.workloads.microbench import (
    END_MARKER,
    SITES,
    WARM_MARKER,
    Microbench,
    build_microbench,
)
from repro.workloads.text import (
    class_counts,
    classify,
    generate_text,
    reference_checksum,
    site_encounters,
)


class TestTextGenerator:
    def test_exact_length(self):
        assert len(generate_text(1234, seed=1)) == 1234

    def test_deterministic(self):
        assert generate_text(500, seed=7) == generate_text(500, seed=7)

    def test_seeds_differ(self):
        assert generate_text(500, seed=1) != generate_text(500, seed=2)

    def test_zero_length(self):
        assert generate_text(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_text(-1)

    def test_words_single_case(self):
        """Every word is entirely upper- or entirely lower-case, like
        the paper's Shakespearian input."""
        text = generate_text(2000, seed=3)
        for word in text.split():
            letters = [c for c in word if 65 <= c <= 90 or 97 <= c <= 122]
            if letters:
                assert all(c >= 97 for c in letters) or \
                    all(c <= 90 for c in letters)

    def test_class_mix(self):
        lower, upper, other = class_counts(generate_text(10_000, seed=0))
        total = lower + upper + other
        assert lower / total > 0.5       # mostly lower-case prose
        assert upper / total > 0.05      # some all-caps words
        assert other / total > 0.1       # separators

    def test_classify(self):
        assert classify(ord("q")) == "lower"
        assert classify(ord("Q")) == "upper"
        assert classify(ord(" ")) == "other"
        assert classify(ord("{")) == "lower"  # >= 'a' boundary semantics

    def test_site_encounters(self):
        text = b"aA "  # 1 lower (1 site) + upper (2) + other (2)
        assert site_encounters(text) == 5

    def test_reference_checksum(self):
        assert reference_checksum(b"a") == 97
        assert reference_checksum(b"A") == 130  # doubled
        assert reference_checksum(b" ") == 32
        assert reference_checksum(b"aA ") == (97 + 130) ^ 32


def run_bench(bench: Microbench, unit=None):
    machine = bench.make_machine(brr_unit=unit)
    machine.run(max_steps=2_000_000)
    return machine


class TestMicrobenchVariants:
    N = 600

    def reference(self):
        bench = build_microbench(self.N, variant="none", seed=5)
        return bench, reference_checksum(bench.text)

    def test_baseline_checksum(self):
        bench, expected = self.reference()
        machine = run_bench(bench)
        checksum, counts = bench.read_results(machine)
        assert checksum == expected
        assert counts == [0, 0, 0, 0]

    def test_markers_fire(self):
        bench, __ = self.reference()
        machine = run_bench(bench)
        assert machine.marker_counts[WARM_MARKER] == 1
        assert machine.marker_counts[END_MARKER] == 1

    def test_full_instrumentation_counts_edges(self):
        bench = build_microbench(self.N, variant="full", seed=5)
        machine = run_bench(bench)
        checksum, counts = bench.read_results(machine)
        assert checksum == bench.expected_checksum
        lower, upper, other = class_counts(bench.text)
        assert counts[1] == lower
        assert counts[0] == upper + other  # not-lower edge
        assert counts[2] == upper
        assert counts[3] == other

    @pytest.mark.parametrize("kind", ["cbs", "brr"])
    @pytest.mark.parametrize("variant", ["no-dup", "full-dup"])
    def test_sampled_variants_preserve_checksum(self, kind, variant):
        bench = build_microbench(self.N, variant=variant, kind=kind,
                                 interval=16, seed=5)
        unit = HardwareCounterUnit() if kind == "brr" else None
        machine = run_bench(bench, unit=unit)
        checksum, __ = bench.read_results(machine)
        assert checksum == bench.expected_checksum

    def test_sampled_profile_proportions(self):
        """brr sampling at 1/8 with the LFSR collects a profile whose
        proportions track the full profile."""
        bench = build_microbench(4000, variant="no-dup", kind="brr",
                                 interval=8, seed=5)
        machine = run_bench(bench, unit=BranchOnRandomUnit())
        __, counts = bench.read_results(machine)
        lower, upper, other = class_counts(bench.text)
        assert sum(counts) > 100
        # Lower-edge share of (lower vs not-lower) samples ~ true share.
        sampled_share = counts[1] / (counts[1] + counts[0])
        true_share = lower / (lower + upper + other)
        assert abs(sampled_share - true_share) < 0.1

    def test_framework_only_has_no_counts(self):
        bench = build_microbench(self.N, variant="no-dup", kind="cbs",
                                 interval=16, include_payload=False, seed=5)
        machine = run_bench(bench)
        checksum, counts = bench.read_results(machine)
        assert checksum == bench.expected_checksum
        assert counts == [0, 0, 0, 0]

    def test_variant_labels(self):
        assert build_microbench(100, variant="none").variant == "none"
        bench = build_microbench(100, variant="no-dup", kind="brr")
        assert bench.variant == "brr+no-dup"
        assert bench.interval == 1024

    def test_measured_sites(self):
        bench = build_microbench(self.N, variant="none", seed=5)
        assert bench.measured_sites == site_encounters(
            bench.text[bench.warm_chars:])

    def test_explicit_text(self):
        text = generate_text(200, seed=9)
        bench = build_microbench(200, variant="none", text=text)
        assert bench.text == text
        with pytest.raises(ValueError):
            build_microbench(100, variant="none", text=text)

    def test_sampled_needs_kind(self):
        with pytest.raises(ValueError):
            build_microbench(100, variant="no-dup")

    def test_code_size_ordering(self):
        """cbs adds more static code than brr (Figure 4's point)."""
        none = build_microbench(self.N, variant="none", seed=5)
        brr = build_microbench(self.N, variant="no-dup", kind="brr", seed=5)
        cbs = build_microbench(self.N, variant="no-dup", kind="cbs", seed=5)
        assert len(none.program) < len(brr.program) < len(cbs.program)
