#!/usr/bin/env python3
"""The paper's SIGILL-based software emulation of branch-on-random.

Section 4.1: to run accuracy experiments on machines without the new
instruction, Jikes emitted "an invalid opcode for the branch-on-random
followed by 4 bytes for a branch offset" and a SIGILL handler emulated
the branch from a software LFSR.  This example assembles the same
program in native and trap modes and shows both take *identical*
branch decisions — the emulation is exact, which is what made the
paper's real-machine accuracy measurements trustworthy.

Run:  python examples/trap_emulation.py
"""

from repro.core import BranchOnRandomUnit, Lfsr
from repro.isa import assemble, disassemble
from repro.sim import BrrTrapEmulator, Machine

SOURCE = """
    li   r1, 4096
    li   r2, 0
loop:
    brr  1/16, hit
back:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
hit:
    addi r2, r2, 1
    brra back
"""

SEED = 0xC0FFEE


def main() -> None:
    native_program = assemble(SOURCE)
    trap_program = assemble(SOURCE, brr_mode="trap")
    print("native encoding (brr is one architected instruction):")
    print("\n".join(disassemble(native_program).splitlines()[:6]))
    print("\ntrap encoding (invalid opcode + 4-byte offset, as on a real "
          "machine):")
    print("\n".join(disassemble(trap_program).splitlines()[:6]))

    native = Machine(native_program,
                     brr_unit=BranchOnRandomUnit(Lfsr(20, seed=SEED)))
    native.run(max_steps=200_000)

    trapped = Machine(trap_program)
    emulator = BrrTrapEmulator(
        unit=BranchOnRandomUnit(Lfsr(20, seed=SEED)))
    emulator.install(trapped)
    trapped.run(max_steps=200_000)

    print(f"\nnative samples:   {native.regs[2]}")
    print(f"emulated samples: {trapped.regs[2]} "
          f"({emulator.traps} traps serviced)")
    assert native.regs[2] == trapped.regs[2]
    print("identical outcomes — the signal-handler emulation is exact.")


if __name__ == "__main__":
    main()
