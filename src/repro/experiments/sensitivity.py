"""Section 4.2 sensitivity analyses.

Two kinds of sweep live here.  The LFSR analyses vary a hardware
design choice and test its effect on *profile accuracy*; the timing
sweep varies the :class:`~repro.timing.config.TimingConfig` and
measures its effect on *cycle counts* — the canonical record-once /
replay-many workload, since every configuration shares one functional
instruction stream (``docs/trace_format.md``).

For the LFSR analyses, two design choices are varied and compared
against the noise baseline of seed variation:

1. **Tap selection** — four 32-bit configurations, two with four taps
   at (32, 31, 30, 10) and (32, 19, 18, 13) and two with six taps at
   (32, 31, 30, 29, 28, 22) and (32, 22, 16, 15, 12, 11).  The paper
   "found variation in the profile quality below the level of
   significance".
2. **AND-input selection** — contiguous vs. varied-spacing bit
   selection for the probability AND tree.

Significance is assessed exactly as the paper describes: the variation
across configurations is compared with the distribution of results
achieved from initialising the LFSR with different values (seeds),
using a one-way ANOVA across configuration groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from scipy import stats as scipy_stats

from ..analysis.stats import mean, sample_std
from ..core.taps import PAPER_SENSITIVITY_TAPS_32
from ..engine import ExperimentEngine, get_engine, run_population
from ..stats import Cell, WindowPopulation
from ..timing.config import PAPER_CONFIG, TimingConfig
from ..workloads.registry import get_workload
from .accuracy import accuracy_window_spec
from .fig13 import microbench_window_spec


@dataclass
class SensitivityResult:
    """Accuracy samples per configuration plus the significance test."""

    label: str
    groups: Dict[str, List[float]]
    f_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Variation beyond the seed-noise level at alpha = 0.05."""
        return self.p_value < 0.05

    def group_means(self) -> Dict[str, float]:
        return {name: sum(vals) / len(vals)
                for name, vals in self.groups.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "groups": self.groups,
            "f_statistic": self.f_statistic,
            "p_value": self.p_value,
            "significant": self.significant,
        }


def _anova(groups: Dict[str, List[float]]) -> Tuple[float, float]:
    samples = [vals for vals in groups.values() if len(vals) > 1]
    if len(samples) < 2:
        raise ValueError("need at least two groups of two samples")
    f_stat, p_value = scipy_stats.f_oneway(*samples)
    return float(f_stat), float(p_value)


def _sensitivity_population(
    name: str,
    labelled_specs: Sequence[Tuple[str, "object"]],
) -> WindowPopulation:
    """One cell per (group, replicate), stratified by group label."""
    cells = []
    counters: Dict[str, int] = {}
    for label, spec in labelled_specs:
        index = counters.get(label, 0)
        counters[label] = index + 1
        cells.append(Cell(id=f"{label}/{index}", stratum=label,
                          specs=(spec,)))
    return WindowPopulation(name, tuple(cells))


def _grouped_accuracies(
    labelled_specs: Sequence[Tuple[str, "object"]],
    engine: Optional[ExperimentEngine],
) -> Dict[str, List[float]]:
    """Fan every (group, seed) cell out through the engine at once."""
    population = _sensitivity_population("sensitivity", labelled_specs)
    run = run_population(population, engine=engine)
    groups: Dict[str, List[float]] = {}
    for cell in run.cells:
        groups.setdefault(cell.stratum, []).append(
            run.cell_payloads(cell.id)[0]["schemes"]["random"]["accuracy"])
    return groups


def taps_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    taps_sets: Sequence[Tuple[int, ...]] = PAPER_SENSITIVITY_TAPS_32,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Profile accuracy across the four 32-bit tap configurations."""
    spec = get_workload(benchmark).spec
    labelled = [
        (",".join(str(t) for t in taps),
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=32, taps=taps))
        for taps in taps_sets
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"taps sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def bit_policy_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    lfsr_width: int = 20,
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Contiguous vs. spaced AND-input selection."""
    spec = get_workload(benchmark).spec
    labelled = [
        (policy,
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=lfsr_width, policy=policy))
        for policy in ("contiguous", "spaced")
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"AND-input sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def width_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    widths: Sequence[int] = (16, 20, 24, 32),
    engine: Optional[ExperimentEngine] = None,
) -> SensitivityResult:
    """Profile accuracy across LFSR register widths.

    The paper fixes 16 bits as the minimum and recommends 20; this
    companion analysis confirms the choice is free: width (beyond the
    16-bit minimum) does not measurably change profile quality, so it
    can be selected purely for AND-input spacing and hardware budget.
    """
    spec = get_workload(benchmark).spec
    labelled = [
        (f"{width}-bit",
         accuracy_window_spec(spec, interval, ("random",), scale, seed,
                              lfsr_width=width))
        for width in widths
        for seed in seeds
    ]
    groups = _grouped_accuracies(labelled, engine)
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"LFSR-width sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def seed_noise_baseline(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = tuple(range(8)),
    scale: float = 0.02,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """The seed-variation distribution everything is compared against."""
    spec = get_workload(benchmark).spec
    groups = _grouped_accuracies([
        ("seed-noise",
         accuracy_window_spec(spec, interval, ("random",), scale, seed))
        for seed in seeds
    ], engine)
    accuracies = groups["seed-noise"]
    return {
        "mean": mean(accuracies),
        "std": sample_std(accuracies),
        "min": min(accuracies),
        "max": max(accuracies),
    }


def paper_timing_ablations() -> Dict[str, TimingConfig]:
    """The standard timing-configuration ablations, keyed by name.

    Each entry perturbs one Section 5.1 machine parameter (or one
    Section 3.3 brr design rule) off the paper configuration; none of
    them can change the functional instruction stream, which is what
    makes the whole family replayable from a single recorded trace.
    """
    return {
        "paper": PAPER_CONFIG,
        "naive-brr": PAPER_CONFIG.with_overrides(
            brr_resolve_at_decode=False,
            brr_uses_predictor=True,
            brr_commits_at_decode=False,
        ),
        "shared-lfsr": PAPER_CONFIG.with_overrides(brr_shared_lfsr=True),
        "slow-l2": PAPER_CONFIG.with_overrides(l2_latency=24),
        "slow-memory": PAPER_CONFIG.with_overrides(memory_latency=300),
        "narrow-fetch": PAPER_CONFIG.with_overrides(fetch_width=1),
    }


@dataclass
class TimingSweepResult:
    """Cycle counts per timing configuration plus the functional-step
    accounting that audits record-once / replay-many."""

    label: str
    #: config name -> {"cycles", "instructions", "cpi", "total_steps"}.
    configs: Dict[str, Dict[str, float]]
    #: Functional ``Machine.step()`` calls actually paid by the sweep
    #: (0 for every window replayed from a stored trace).
    functional_steps: int
    #: What per-config lock-step re-execution would have paid: the sum
    #: of every window's full stream length.
    lockstep_steps: int

    @property
    def step_reduction(self) -> float:
        """lock-step / actual functional steps (inf on a fully warm
        sweep, which paid zero)."""
        if self.functional_steps == 0:
            return float("inf")
        return self.lockstep_steps / self.functional_steps

    def to_dict(self) -> Dict[str, object]:
        reduction = self.step_reduction
        return {
            "label": self.label,
            "configs": self.configs,
            "functional_steps": self.functional_steps,
            "lockstep_steps": self.lockstep_steps,
            "step_reduction": None if reduction == float("inf")
            else reduction,
        }


def timing_config_sweep(
    n_chars: int = 600,
    interval: int = 1 << 10,
    seed: int = 0,
    variant: str = "full-dup",
    kind: str = "brr",
    configs: Optional[Dict[str, TimingConfig]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> TimingSweepResult:
    """Sweep one microbenchmark window across timing configurations.

    All windows share one functional projection — they differ only in
    ``config`` — so with the engine's trace store enabled the sweep
    records the instruction stream once and replays it per
    configuration: N configurations cost one functional execution
    instead of N (and zero when the trace is already warm).  The
    returned accounting is taken from the engine's run records, the
    same numbers written to the JSONL artifact.
    """
    configs = configs if configs is not None else paper_timing_ablations()
    engine = engine or get_engine()
    population = WindowPopulation("timing-config", tuple(
        Cell(
            id=name,
            stratum=name,
            specs=(microbench_window_spec(n_chars, variant, seed=seed,
                                          kind=kind, interval=interval,
                                          config=config),),
        )
        for name, config in configs.items()
    ))
    first_new_record = len(engine.recorder.records)
    run = run_population(population, engine=engine)

    table: Dict[str, Dict[str, float]] = {}
    lockstep_steps = 0
    for name in configs:
        result = run.cell_payloads(name)[0]["result"]
        cycles = result["stats"]["cycles"]
        instructions = result["stats"]["instructions"]
        table[name] = {
            "cycles": cycles,
            "instructions": instructions,
            "cpi": cycles / instructions if instructions else 0.0,
            "total_steps": result["total_steps"],
        }
        lockstep_steps += result["total_steps"]
    functional_steps = sum(
        record.functional_steps or 0
        for record in engine.recorder.records[first_new_record:]
    )
    return TimingSweepResult(
        label=(f"timing-config sweep (microbench {variant}/{kind}, "
               f"{n_chars} chars, 1/{interval})"),
        configs=table,
        functional_steps=functional_steps,
        lockstep_steps=lockstep_steps,
    )


def format_timing_sweep(result: TimingSweepResult) -> str:
    lines = [result.label]
    baseline = result.configs.get("paper", {}).get("cycles")
    for name, row in result.configs.items():
        delta = ""
        if baseline and name != "paper":
            delta = f"  ({(row['cycles'] / baseline - 1) * 100:+6.2f}%)"
        lines.append(
            f"  {name:<14} {int(row['cycles']):>10} cycles  "
            f"cpi {row['cpi']:5.3f}{delta}"
        )
    reduction = result.step_reduction
    shown = "warm trace (0 paid)" if reduction == float("inf") \
        else f"{reduction:.1f}x fewer than lock-step"
    lines.append(
        f"  functional steps: {result.functional_steps} "
        f"(lock-step would pay {result.lockstep_steps}) -> {shown}"
    )
    return "\n".join(lines)


def format_result(result: SensitivityResult) -> str:
    lines = [result.label]
    for name, group_mean in result.group_means().items():
        lines.append(f"  {name:<24} mean accuracy {group_mean:6.2f}%")
    verdict = ("SIGNIFICANT (unexpected!)" if result.significant
               else "not significant (matches the paper)")
    lines.append(
        f"  ANOVA F={result.f_statistic:.3f} p={result.p_value:.3f} "
        f"-> {verdict}"
    )
    return "\n".join(lines)
