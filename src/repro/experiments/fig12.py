"""Figure 12: sampling-framework overhead on the JVM workloads.

"Software counter-based sampling (using Full-Duplication) averages
almost a 5% overhead on these weakly-optimized benchmarks, while the
branch-on-random-based framework achieves a 0.64% overhead.
Performance is normalized to a non-instrumented version of the code,
and both experiments use a sampling period of 1024."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..engine import ExperimentEngine, WindowSpec, is_failure, run_windows
from ..jvm.benchmarks import FIGURE12_BENCHMARKS
from ..timing.config import TimingConfig
from ..timing.runner import overhead_percent

#: One timed window per (benchmark, framework) variant.
VARIANTS = ("none", "cbs", "brr")


@dataclass
class Fig12Row:
    """Overhead of both frameworks on one benchmark."""

    benchmark: str
    base_cycles: int
    cbs_overhead: float
    brr_overhead: float
    window_instructions: int


def jvm_window_spec(
    name: str,
    variant: str,
    scale: float,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
) -> WindowSpec:
    """Declarative form of one Figure 12 timing window."""
    return WindowSpec.make(
        "jvm",
        benchmark=name,
        variant=variant,
        scale=scale,
        interval=interval if variant != "none" else None,
        config=None if config is None else config.to_dict(),
    )


def _reduce_row(name: str, base, cbs, brr) -> Fig12Row:
    if any(is_failure(payload) for payload in (base, cbs, brr)):
        # Skipped windows (failure_policy="skip") degrade the whole
        # benchmark row to NaN; NaN propagates into the average row.
        return Fig12Row(benchmark=name, base_cycles=0,
                        cbs_overhead=float("nan"),
                        brr_overhead=float("nan"),
                        window_instructions=0)
    return Fig12Row(
        benchmark=name,
        base_cycles=base["cycles"],
        cbs_overhead=overhead_percent(base["cycles"], cbs["cycles"]),
        brr_overhead=overhead_percent(base["cycles"], brr["cycles"]),
        window_instructions=base["instructions"],
    )


def run_benchmark(
    name: str,
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Fig12Row:
    """Overhead of cbs and brr Full-Duplication sampling vs. baseline."""
    specs = [jvm_window_spec(name, variant, scale, interval, config)
             for variant in VARIANTS]
    base, cbs, brr = run_windows(specs, engine=engine)
    return _reduce_row(name, base, cbs, brr)


def figure12(
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> List[Fig12Row]:
    """All five benchmarks plus the average row.

    All 15 (benchmark, variant) windows fan out through the engine in
    one batch, so a 4-worker run overlaps the five benchmarks instead
    of timing them back to back.
    """
    names = list(benchmarks) if benchmarks is not None \
        else list(FIGURE12_BENCHMARKS)
    specs = [jvm_window_spec(name, variant, scale, interval, config)
             for name in names for variant in VARIANTS]
    payloads = run_windows(specs, engine=engine)
    rows = [
        _reduce_row(name, *payloads[3 * i:3 * i + 3])
        for i, name in enumerate(names)
    ]
    rows.append(Fig12Row(
        benchmark="average",
        base_cycles=sum(r.base_cycles for r in rows),
        cbs_overhead=sum(r.cbs_overhead for r in rows) / len(rows),
        brr_overhead=sum(r.brr_overhead for r in rows) / len(rows),
        window_instructions=sum(r.window_instructions for r in rows),
    ))
    return rows


def format_rows(rows: List[Fig12Row]) -> str:
    lines = [
        "Figure 12: framework overhead at period 1024 (Full-Duplication)",
        f"{'benchmark':<10} {'counter-based %':>16} {'branch-on-random %':>20}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.cbs_overhead:16.2f} "
            f"{row.brr_overhead:20.2f}"
        )
    return "\n".join(lines)
