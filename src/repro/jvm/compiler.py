"""The baseline compiler: JVM program AST → instrumented assembly.

Mirrors the methodology of Section 5.2: "we simply configured Jikes to
instrument method execution frequencies ... we turn Jikes's adaptive
optimization off, so that all code runs using the baseline compiler
with instrumentation for the full run."

Per method the compiler emits unoptimized, ABI-faithful code: a
prologue saving the link register and the two loop-counter registers
to the stack, the body (busy work, calls, counted loops), and the
matching epilogue.  A method-invocation-counter instrumentation site
is attached to the entry block, and the whole method CFG is passed
through the requested Arnold-Ryder variant before lowering.

Register conventions:

========  =======================================================
``r3/r4``  busy-work accumulators (caller-clobbered)
``r5/r6``  loop counters, callee-saved in the prologue
``r10``    profile-array base (global, set in the runtime preamble)
``r11``    instrumentation scratch
``r12/13`` sampling-framework counter scratch/base (cbs only)
``sp``     stack pointer (r14), ``lr`` link register (r15)
========  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..instrument.arnold_ryder import SamplingSpec, apply_framework
from ..instrument.cfg import Block, Cfg, Terminator
from ..isa.asm import assemble
from ..isa.program import Program
from .model import Call, JvmError, JvmProgram, Loop, Marker, MethodSpec, Work

#: Memory layout.  Full-Duplication more than doubles the code image
#: of the larger benchmarks, so data regions sit well above any code.
PROFILE_BASE = 0x60000
COUNTER_ADDR = 0x5F000
STACK_TOP = 0x7FF00

#: Loop counter registers by nesting depth.
LOOP_REGS = ("r5", "r6")

#: Busy-work instruction rotation: four independent dependence chains
#: (r3, r4, r7, r9), giving the instruction-level parallelism typical
#: of compiled Java bodies so the machine runs near its fetch/commit
#: bandwidth — the regime in which added framework instructions cost
#: real cycles, as on the paper's testbed.
WORK_LINES = (
    "addi r3, r3, 1",
    "addi r4, r4, 3",
    "xori r7, r7, 0x55",
    "addi r9, r9, -1",
)


def method_label(name: str) -> str:
    """The call target label of a compiled method."""
    return f"fn_{name}"


class MethodCompiler:
    """Compiles one method body to a CFG."""

    def __init__(self, method: MethodSpec, method_id: int) -> None:
        self.method = method
        self.method_id = method_id
        self.cfg = Cfg(method.name, entry="entry")
        self._block_counter = 0
        self._work_rotation = 0

    def _fresh(self, hint: str) -> str:
        self._block_counter += 1
        return f"{hint}{self._block_counter}"

    def _work(self, amount: int) -> List[str]:
        lines = []
        for __ in range(amount):
            lines.append(WORK_LINES[self._work_rotation % len(WORK_LINES)])
            self._work_rotation += 1
        return lines

    def compile(self) -> Cfg:
        entry = Block(
            "entry",
            body=[
                "addi sp, sp, -12",
                "sw lr, 8(sp)",
                "sw r5, 4(sp)",
                "sw r6, 0(sp)",
            ],
        )
        offset = 4 * self.method_id
        entry.site_id = self.method_id
        entry.site_lines = [
            f"lw r11, {offset}(r10)",
            "addi r11, r11, 1",
            f"sw r11, {offset}(r10)",
        ]
        self.cfg.add(entry)
        last = self._compile_body(entry, self.method.body, depth=0)
        exit_block = Block(
            self._fresh("exit"),
            body=[
                "lw r6, 0(sp)",
                "lw r5, 4(sp)",
                "lw lr, 8(sp)",
                "addi sp, sp, 12",
            ],
            term=Terminator("ret"),
        )
        last.term = Terminator("fall", target=exit_block.name)
        self.cfg.add(exit_block)
        self.cfg.validate()
        return self.cfg

    def _compile_body(self, current: Block, body, depth: int) -> Block:
        """Append statements after ``current``; returns the open block
        execution falls out of."""
        for stmt in body:
            if isinstance(stmt, Work):
                current.body.extend(self._work(stmt.amount))
            elif isinstance(stmt, Marker):
                current.body.append(f"marker {stmt.marker_id}")
            elif isinstance(stmt, Call):
                current.body.append(f"jal {method_label(stmt.callee)}")
            elif isinstance(stmt, Loop):
                current = self._compile_loop(current, stmt, depth)
            else:  # pragma: no cover - exhaustive over Stmt
                raise JvmError(f"unknown statement {stmt!r}")
        return current

    def _compile_loop(self, current: Block, loop: Loop, depth: int) -> Block:
        if depth >= len(LOOP_REGS):
            raise JvmError("loops nest deeper than the register budget")
        counter = LOOP_REGS[depth]
        head_name = self._fresh("head")
        latch_name = self._fresh("latch")
        after_name = self._fresh("after")
        current.body.append(f"li {counter}, {loop.count}")
        current.term = Terminator("fall", target=head_name)
        head = Block(head_name)
        self.cfg.add(head)
        body_end = self._compile_body(head, loop.body, depth + 1)
        body_end.term = Terminator("fall", target=latch_name)
        self.cfg.add(Block(
            latch_name,
            body=[f"addi {counter}, {counter}, -1"],
            term=Terminator("cond", op="bne", ra=counter, rb="r0",
                            taken=head_name, target=after_name),
        ))
        after = Block(after_name)
        self.cfg.add(after)
        return after


@dataclass
class CompiledJvm:
    """A compiled program plus metadata for running experiments."""

    program: Program
    method_ids: Dict[str, int]
    variant: str
    interval: Optional[int]

    def read_profile(self, machine) -> Dict[str, int]:
        """Per-method sample counts from the profile array."""
        return {
            name: machine.memory.load_word(PROFILE_BASE + 4 * method_id)
            for name, method_id in self.method_ids.items()
        }


def compile_program(
    jvm: JvmProgram,
    variant: str = "full",
    kind: Optional[str] = None,
    interval: int = 1024,
    include_payload: bool = True,
    counter_in_register: bool = False,
) -> CompiledJvm:
    """Compile a JVM program under one instrumentation variant.

    ``variant``/``kind`` follow :func:`repro.instrument.arnold_ryder.
    apply_framework`: ``"none"``, ``"full"``, or ``"no-dup"`` /
    ``"full-dup"`` with ``kind`` = ``"cbs"`` or ``"brr"``.
    """
    spec = None
    if variant in ("no-dup", "full-dup"):
        if kind is None:
            raise JvmError("sampled variants need kind='cbs' or 'brr'")
        spec = SamplingSpec(kind=kind, interval=interval,
                            counter_addr=COUNTER_ADDR,
                            counter_in_register=counter_in_register)
    method_ids = jvm.method_ids()

    lines: List[str] = [
        f"li sp, {STACK_TOP}",
        f"li r10, {PROFILE_BASE}",
    ]
    if spec is not None:
        lines.extend(spec.init_lines())
    lines.append(f"jal {method_label(jvm.entry)}")
    lines.append("halt")

    cold_lines: List[str] = []
    for name, method in jvm.methods.items():
        cfg = MethodCompiler(method, method_ids[name]).compile()
        transformed = apply_framework(cfg, variant, spec=spec,
                                      include_payload=include_payload)
        hot_order = [n for n in transformed.order
                     if not transformed.block(n).cold]
        if not hot_order or hot_order[0] != transformed.entry:
            raise JvmError(
                f"transformed method {name} does not start at its entry"
            )
        hot, cold = transformed.lower_split()
        lines.append(f"{method_label(name)}:")
        lines.extend(hot)
        cold_lines.extend(cold)

    # Hot/cold code splitting: duplicated bodies and sampled paths go
    # after all hot code so they do not dilute the I-cache working set
    # while unsampled.
    lines.extend(cold_lines)
    program = assemble("\n".join(lines))
    return CompiledJvm(
        program=program,
        method_ids=method_ids,
        variant=variant if spec is None else f"{kind}+{variant}",
        interval=interval if spec is not None else None,
    )
