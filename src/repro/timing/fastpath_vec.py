"""Vectorized span-replay timing kernel (fast-path v2).

The loop kernel (:mod:`repro.timing.fastpath`) already replaced the
golden model's per-record object dispatch with flat-table lookups, but
it still executes one Python iteration per trace record (~640k
records/s).  This module removes the per-record interpreter loop for
the common case: replay becomes a handful of whole-window numpy array
passes plus two small scalar sweeps over *event* records only.

The decomposition rests on three structural facts about the pipeline
model, each of which is what makes a pass exact rather than
approximate:

* **cache-state evolution is timing-independent.**  The L1i lookup
  happens only when the fetched line changes, and a redirect-forced
  re-lookup of an unchanged line always hits the MRU way without
  perturbing LRU order.  The interleaved L1i/L1d/L2 state therefore
  evolves identically no matter how records are timed, so one scalar
  sweep over line-change and memory records (~10-20%% of a trace)
  precomputes every fetch-fill stall (``ifill``), load latency
  (``dlat``) and miss counter, reusable across every replay sharing
  the cache geometry;
* **predictor evolution is timing-independent.**  The tournament
  predictor, BTB and RAS are trained only by control-flow records, so
  one scalar sweep over those (~2%% of a JVM trace) precomputes each
  record's misprediction class (``mis``: 0 correct / 1 front / 2 back)
  and predicted-taken flag;
* **the frontier allocators are prefix scans.**  The decode and
  commit ``_Bandwidth`` rings over a non-decreasing ready sequence
  satisfy ``t[i] = max(t[i-1]+1, W*ready[i])`` with ``slot = t // W``
  — an ``np.maximum.accumulate`` over the whole window.  Fetch between
  stall/redirect boundaries is the closed form ``F + j // fetch_width``
  per span, with spans segmented at the precomputed ``mis``/``ptaken``
  /``ifill`` positions.

What remains serial — redirect resume times feeding later spans'
fetch, dataflow operand forwarding feeding issue — is solved by a
whole-window fixpoint: every pass is recomputed from the previous
iteration's arrays until nothing changes.  Because each record's
inputs come only from *earlier* records (the system is a DAG in record
order), the fixpoint is unique and equals the serial execution
bit-for-bit; a converged iteration is therefore a *proof* of
equivalence, not a heuristic.  Optimistic in-pass resume estimates
(backend redirects usually resume at ``fetch + penalty``; decode
usually tracks ``fetch + frontend_depth``) make real traces converge
in 2-4 iterations.

Anything outside the kernel's exactness envelope delegates to the loop
kernel, which is itself pinned byte-identical to the golden model:
trap-emulated traces, shared-LFSR arbitration over brr records
(serially couples decode), issue requests far enough behind the
frontier to interact with ``_Bandwidth`` pruning, and windows that
fail to converge under the iteration cap.  ``REPRO_FAST=vector`` (the
default) selects this kernel; see ``docs/performance.md``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Gated: the kernel degrades to the loop kernel without numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from ..sim.trace_io import RecordedTrace, TraceColumns
from .config import TimingConfig
from .pipeline import TimingStats, _Bandwidth
from . import fastpath as _fp
from .fastpath import (  # noqa: F401 - _K_OTHER re-exported for tests
    FastPathUnsupported, _word_tables,
    _K_OTHER, _K_COND, _K_BRR, _K_BRRA, _K_JMP, _K_JAL, _K_JR,
    _K_LOAD, _K_STORE,
)

#: Whole-window fixpoint iteration cap; windows that have not proven
#: convergence by then delegate to the loop kernel.
MAX_OUTER_ITERATIONS = 60

#: Dataflow (operand-forwarding) inner fixpoint cap per outer pass.
MAX_INNER_ITERATIONS = 60

#: Bound of the per-trace memo dict (word tables, event passes,
#: per-config prep bundles) hung off ``TraceColumns.vec_cache``.
VEC_CACHE_ENTRIES = 10

#: Iterations taken by the most recent converged replay (telemetry /
#: test introspection only); 0 when the last call delegated.
last_iterations = 0

#: How the most recent :func:`run_fastpath_vec` call actually replayed
#: the window: ``"vector"`` (converged fixpoint) or ``"loop"`` (the
#: window was outside the vector envelope and the loop kernel ran).
last_kernel: Optional[str] = None


class _Delegate(Exception):
    """Internal: this window must be replayed by the loop kernel."""


def vector_kernel_available() -> bool:
    """Whether the numpy dependency for the v2 kernel is importable."""
    return _np is not None


def _memo(cols: TraceColumns) -> Dict:
    cache = cols.vec_cache
    if cache is None:
        cache = cols.vec_cache = {}
    while len(cache) > VEC_CACHE_ENTRIES:
        del cache[next(iter(cache))]
    return cache


def _np_tables(cols: TraceColumns):
    """Per-word-id metadata as numpy arrays (cached per trace)."""
    cache = _memo(cols)
    hit = cache.get("tables")
    if hit is not None:
        return hit
    kclass, src1, src2, dest, lat, is_ret = _word_tables(cols.instrs)
    entry = (
        _np.frombuffer(bytes(kclass), dtype=_np.uint8),
        _np.asarray(src1, dtype=_np.int64),
        _np.asarray(src2, dtype=_np.int64),
        _np.asarray(dest, dtype=_np.int64),
        _np.asarray(lat, dtype=_np.int64),
        bytes(is_ret),
    )
    cache["tables"] = entry
    return entry


# ----------------------------------------------------------------------
# Event pre-passes.  Scalar, but over small record subsets, and memoised
# per (window, relevant-config-projection) so a config sweep or a
# repeated replay pays them once.


def _cache_pass(cols: TraceColumns, lo: int, hi: int, cfg: TimingConfig,
                program, prewarm_code: bool):
    """Exact cache-hierarchy sweep.

    Returns ``(ifill, dlat, im_c, dm_c, l2_c)``: per-record fetch-fill
    stall cycles, per-record load latencies, and cumulative
    L1i/L1d/L2 miss counts — all int64 arrays over the replayed slice.
    """
    key = ("cache", lo, hi, cfg.line_bytes,
           cfg.l1i_size, cfg.l1i_assoc, cfg.l1d_size, cfg.l1d_assoc,
           cfg.l2_size, cfg.l2_assoc,
           cfg.l1_latency, cfg.l2_latency, cfg.memory_latency,
           bool(prewarm_code),
           (program.base, program.end) if prewarm_code else None)
    cache = _memo(cols)
    hit = cache.get(key)
    if hit is not None:
        return hit

    m = hi - lo
    line_bytes = cfg.line_bytes
    l1_lat, l2_lat, mem_lat = cfg.l1_latency, cfg.l2_latency, \
        cfg.memory_latency
    i_nsets = cfg.l1i_size // (cfg.l1i_assoc * line_bytes)
    d_nsets = cfg.l1d_size // (cfg.l1d_assoc * line_bytes)
    l2_nsets = cfg.l2_size // (cfg.l2_assoc * line_bytes)
    i_assoc, d_assoc, l2_assoc = cfg.l1i_assoc, cfg.l1d_assoc, cfg.l2_assoc
    i_sets = [dict() for _ in range(i_nsets)]
    d_sets = [dict() for _ in range(d_nsets)]
    l2_sets = [dict() for _ in range(l2_nsets)]

    if prewarm_code:
        addr = program.base
        end_addr = program.end
        while addr < end_addr:
            line = addr // line_bytes
            s2 = l2_sets[line % l2_nsets]
            if line in s2:
                del s2[line]
                s2[line] = True
            else:
                s2[line] = True
                if len(s2) > l2_assoc:
                    del s2[next(iter(s2))]
            addr += line_bytes

    pc_np = _np.frombuffer(cols.pc, dtype=_np.int64)[lo:hi]
    wid_np = _np.frombuffer(cols.word_id, dtype=_np.int64)[lo:hi]
    kcw = _np_tables(cols)[0]
    kc = kcw[wid_np]
    linev = pc_np // line_bytes
    lc = _np.empty(m, dtype=bool)
    lc[0] = True  # last_line starts at -1: the first record looks up
    _np.not_equal(linev[1:], linev[:-1], out=lc[1:])
    is_mem = (kc == _K_LOAD) | (kc == _K_STORE)
    ev = _np.flatnonzero(lc | is_mem)

    ifill = array("q", bytes(8 * m))
    dlat = array("q", bytes(8 * m))
    im_d = bytearray(m)
    dm_d = bytearray(m)
    l2_d = bytearray(m)

    pcs = cols.pc
    mems = cols.mem_addr
    lc_b = lc  # numpy bool; scalar reads below
    is_load_code = _K_LOAD
    kc_list = kc  # numpy; scalar reads
    for e in ev.tolist():
        if lc_b[e]:
            line = pcs[lo + e] // line_bytes
            s1 = i_sets[line % i_nsets]
            if line in s1:
                del s1[line]
                s1[line] = True
            else:
                im_d[e] = 1
                s2 = l2_sets[line % l2_nsets]
                if line in s2:
                    del s2[line]
                    s2[line] = True
                    fill = l2_lat
                else:
                    l2_d[e] += 1
                    s2[line] = True
                    if len(s2) > l2_assoc:
                        del s2[next(iter(s2))]
                    fill = l2_lat + mem_lat
                s1[line] = True
                if len(s1) > i_assoc:
                    del s1[next(iter(s1))]
                if fill > 0:
                    ifill[e] = fill
        kce = kc_list[e]
        if kce == is_load_code or kce == _K_STORE:
            line = mems[lo + e] // line_bytes
            s1 = d_sets[line % d_nsets]
            if line in s1:
                del s1[line]
                s1[line] = True
                lat = l1_lat
            else:
                dm_d[e] = 1
                s2 = l2_sets[line % l2_nsets]
                if line in s2:
                    del s2[line]
                    s2[line] = True
                    fill = l2_lat
                else:
                    l2_d[e] += 1
                    s2[line] = True
                    if len(s2) > l2_assoc:
                        del s2[next(iter(s2))]
                    fill = l2_lat + mem_lat
                s1[line] = True
                if len(s1) > d_assoc:
                    del s1[next(iter(s1))]
                lat = l1_lat + fill
            if kce == is_load_code:
                if lat < 1:
                    lat = 1
                dlat[e] = lat

    entry = (
        _np.frombuffer(ifill, dtype=_np.int64),
        _np.frombuffer(dlat, dtype=_np.int64),
        _np.cumsum(_np.frombuffer(im_d, dtype=_np.uint8),
                   dtype=_np.int64),
        _np.cumsum(_np.frombuffer(dm_d, dtype=_np.uint8),
                   dtype=_np.int64),
        _np.cumsum(_np.frombuffer(l2_d, dtype=_np.uint8),
                   dtype=_np.int64),
    )
    cache[key] = entry
    return entry


def _branch_pass(cols: TraceColumns, lo: int, hi: int, cfg: TimingConfig):
    """Exact predictor/BTB/RAS sweep over control-flow records.

    Returns ``(mis, ptk, counters)`` where ``mis``/``ptk`` are
    per-record uint8 arrays and ``counters`` is a dict of cumulative
    int64 arrays (cond branches/mispredicts, brr resolved/taken,
    front/back redirects, fetch breaks).
    """
    key = ("branch", lo, hi, cfg.gshare_history_bits, cfg.bimodal_entries,
           cfg.chooser_entries, cfg.btb_entries, cfg.ras_entries,
           cfg.brr_resolve_at_decode, cfg.brr_uses_predictor)
    cache = _memo(cols)
    hit = cache.get(key)
    if hit is not None:
        return hit

    m = hi - lo
    wid_np = _np.frombuffer(cols.word_id, dtype=_np.int64)[lo:hi]
    kcw, _s1, _s2, _d, _l, is_ret = _np_tables(cols)
    kc = kcw[wid_np]
    ctl = _np.flatnonzero((kc >= _K_COND) & (kc <= _K_JR))

    mis_b = bytearray(m)
    ptk_b = bytearray(m)
    cond_d = bytearray(m)
    condmp_d = bytearray(m)
    brrres_d = bytearray(m)
    brrtk_d = bytearray(m)

    brr_front = cfg.brr_resolve_at_decode
    brr_predicted = cfg.brr_uses_predictor
    h_mask = (1 << cfg.gshare_history_bits) - 1
    g_tab = bytearray(b"\x01" * (1 << cfg.gshare_history_bits))
    g_mask = h_mask
    b_tab = bytearray(b"\x01" * cfg.bimodal_entries)
    b_mask = cfg.bimodal_entries - 1
    ch_tab = bytearray(b"\x01" * cfg.chooser_entries)
    ch_mask = cfg.chooser_entries - 1
    history = 0
    btb_mask = cfg.btb_entries - 1
    btb_tags = [-1] * cfg.btb_entries
    btb_targets = [0] * cfg.btb_entries
    ras_entries = cfg.ras_entries
    ras_stack = [0] * ras_entries
    ras_top = 0
    ras_depth = 0

    pcs, npcs, tks, wids = cols.pc, cols.next_pc, cols.taken, cols.word_id
    kc_np = kc
    for e in ctl.tolist():
        idx = lo + e
        pc = pcs[idx]
        next_pc = npcs[idx]
        tk = tks[idx]
        kcv = kc_np[e]
        mis = 0
        ptaken = False
        # -- verbatim transcription of the loop kernel's predict stage
        if kcv == _K_COND or (brr_predicted and kcv == _K_BRR):
            if kcv == _K_COND:
                cond_d[e] = 1
                resolve = 2
            else:
                brrres_d[e] = 1
                if tk:
                    brrtk_d[e] = 1
                resolve = 1 if brr_front else 2
            pc2 = pc >> 2
            g_idx = (pc2 ^ history) & g_mask
            g_ctr = g_tab[g_idx]
            b_idx = pc2 & b_mask
            b_ctr = b_tab[b_idx]
            g_pred = g_ctr >= 2
            b_pred = b_tab[b_idx] >= 2
            bti = pc2 & btb_mask
            if (g_pred if ch_tab[pc2 & ch_mask] >= 2 else b_pred):
                ptaken = btb_tags[bti] == pc
                if ptaken:
                    correct = tk and btb_targets[bti] == next_pc
                else:
                    correct = not tk
            else:
                correct = not tk
            if g_pred != b_pred:
                ci = pc2 & ch_mask
                c_ctr = ch_tab[ci]
                if g_pred == bool(tk):
                    if c_ctr < 3:
                        ch_tab[ci] = c_ctr + 1
                elif c_ctr > 0:
                    ch_tab[ci] = c_ctr - 1
            if tk:
                if g_ctr < 3:
                    g_tab[g_idx] = g_ctr + 1
            elif g_ctr > 0:
                g_tab[g_idx] = g_ctr - 1
            history = ((history << 1) | (1 if tk else 0)) & h_mask
            if tk:
                if b_ctr < 3:
                    b_tab[b_idx] = b_ctr + 1
            elif b_ctr > 0:
                b_tab[b_idx] = b_ctr - 1
            if tk:
                btb_tags[bti] = pc
                btb_targets[bti] = next_pc
            if not correct:
                mis = resolve
                if kcv == _K_COND:
                    condmp_d[e] = 1
        elif kcv == _K_BRR or kcv == _K_BRRA:
            brrres_d[e] = 1
            if tk:
                brrtk_d[e] = 1
            if brr_predicted:
                # Only BRRA reaches here; BTB-only prediction.
                bti = (pc >> 2) & btb_mask
                ptaken = btb_tags[bti] == pc
                if not ptaken:
                    mis = 1 if brr_front else 2
                btb_tags[bti] = pc
                btb_targets[bti] = next_pc
            elif tk:
                mis = 1 if brr_front else 2
        elif kcv == _K_JMP or kcv == _K_JAL:
            bti = (pc >> 2) & btb_mask
            ptaken = btb_tags[bti] == pc and btb_targets[bti] == next_pc
            if not ptaken:
                mis = 1
            btb_tags[bti] = pc
            btb_targets[bti] = next_pc
            if kcv == _K_JAL:
                ras_top = (ras_top + 1) % ras_entries
                ras_stack[ras_top] = pc + 4
                if ras_depth < ras_entries:
                    ras_depth += 1
        else:  # _K_JR
            if is_ret[wids[idx]]:
                if ras_depth == 0:
                    matched = False
                else:
                    matched = ras_stack[ras_top] == next_pc
                    ras_top = (ras_top - 1) % ras_entries
                    ras_depth -= 1
            else:
                bti = (pc >> 2) & btb_mask
                matched = (btb_tags[bti] == pc
                           and btb_targets[bti] == next_pc)
                btb_tags[bti] = pc
                btb_targets[bti] = next_pc
            if matched:
                ptaken = True
            else:
                mis = 2
        if mis:
            mis_b[e] = mis
        if ptaken:
            ptk_b[e] = 1

    mis_np = _np.frombuffer(bytes(mis_b), dtype=_np.uint8)
    ptk_np = _np.frombuffer(bytes(ptk_b), dtype=_np.uint8)
    csum = lambda b: _np.cumsum(_np.frombuffer(b, dtype=_np.uint8),
                                dtype=_np.int64)
    counters = {
        "cond": csum(bytes(cond_d)),
        "condmp": csum(bytes(condmp_d)),
        "brrres": csum(bytes(brrres_d)),
        "brrtk": csum(bytes(brrtk_d)),
        "front": _np.cumsum(mis_np == 1, dtype=_np.int64),
        "back": _np.cumsum(mis_np == 2, dtype=_np.int64),
        "breaks": _np.cumsum((mis_np == 0) & (ptk_np != 0),
                             dtype=_np.int64),
    }
    entry = (mis_np, ptk_np, counters)
    cache[key] = entry
    return entry


# ----------------------------------------------------------------------
# Issue-port bandwidth: exact allocation for non-monotonic requests.


def _alloc_issue(req, width: int):
    """Exact ``_Bandwidth`` outcome for ``req`` (arrival order).

    Cycles that never fill (``count < width`` including spill-in) keep
    ``issue == ready``; congested runs — maximal cycle intervals where
    requests could spill — are resolved by the reference allocator over
    just their members, which is exact because requests outside a run
    can neither consume nor contribute slots inside it.
    """
    if req.size == 0:
        return req.copy()
    rel = req - int(req.min())
    bins = _np.bincount(rel)
    over = bins - width
    if not (over > 0).any():
        return req  # no cycle oversubscribed: everyone keeps its slot
    cum = _np.cumsum(over)
    spill = cum - _np.minimum.accumulate(_np.minimum(cum, 0))
    congested = over > 0
    congested[1:] |= spill[:-1] > 0
    # Label each maximal congested run, map every request to its run
    # (or -1), and group the members of all runs with one stable sort
    # — stability preserves arrival order within a run, which is what
    # the reference allocator's outcome depends on.
    starts = congested.copy()
    starts[1:] &= ~congested[:-1]
    run_of_cycle = _np.where(congested, _np.cumsum(starts) - 1, -1)
    rid = run_of_cycle[rel]
    sel = _np.flatnonzero(rid >= 0)
    order = sel[_np.argsort(rid[sel], kind="stable")]
    bounds = _np.flatnonzero(_np.diff(rid[order])) + 1
    issue = req.copy()
    vals = req[order].tolist()
    out: List[int] = []
    lo_g = 0
    for hi_g in bounds.tolist() + [order.size]:
        counts: Dict[int, int] = {}
        for c in vals[lo_g:hi_g]:
            n = counts.get(c, 0)
            while n >= width:
                c += 1
                n = counts.get(c, 0)
            counts[c] = n + 1
            out.append(c)
        lo_g = hi_g
    issue[order] = out
    return issue


# ----------------------------------------------------------------------
# The kernel.


def _prep(cols: TraceColumns, lo: int, hi: int, cfg: TimingConfig,
          program, prewarm_code: bool) -> Dict:
    """Everything about a (window, config) pair that does not change
    across replays: expanded tables, event-pass products, dataflow
    last-writer links, deque-lag gather indices and the fetch-span
    structure.  Cached on the trace's columns."""
    key = ("prep", lo, hi, cfg, bool(prewarm_code))
    cache = _memo(cols)
    hit = cache.get(key)
    if hit is not None:
        return hit

    m = hi - lo
    wid_np = _np.frombuffer(cols.word_id, dtype=_np.int64)[lo:hi]
    kcw, src1w, src2w, destw, latw, _ret = _np_tables(cols)
    kc = kcw[wid_np]

    if cfg.brr_shared_lfsr and bool((kc == _K_BRR).any()):
        # The single-LFSR priority encoder serially couples the decode
        # of consecutive brr records; the loop kernel handles it.
        cache[key] = {"delegate": True}
        raise _Delegate()

    ifill, dlat, im_c, dm_c, l2_c = _cache_pass(
        cols, lo, hi, cfg, program, prewarm_code)
    mis, ptk, bcounters = _branch_pass(cols, lo, hi, cfg)

    ar = _np.arange(m, dtype=_np.int64)
    if cfg.brr_commits_at_decode:
        cad = (kc == _K_BRR) | (kc == _K_BRRA)
    else:
        cad = _np.zeros(m, dtype=bool)
    noncad = ~cad
    nc_idx = _np.flatnonzero(noncad)
    ar_nc = _np.arange(nc_idx.size, dtype=_np.int64)

    latv = _np.where(kc == _K_LOAD, dlat,
                     _np.where(kc == _K_STORE, 1, latw[wid_np]))
    lat_nc = latv[nc_idx]

    dstv = _np.where(noncad, destw[wid_np], -1)
    s1v = _np.where(noncad, src1w[wid_np], -1)
    s2v = _np.where(noncad, src2w[wid_np], -1)
    writer = dstv >= 0
    lw1 = _np.full(m, -1, dtype=_np.int64)
    lw2 = _np.full(m, -1, dtype=_np.int64)
    for r in range(16):
        wr = _np.flatnonzero(writer & (dstv == r))
        if wr.size == 0:
            continue
        for srcv, lw in ((s1v, lw1), (s2v, lw2)):
            rd = _np.flatnonzero(srcv == r)
            if rd.size == 0:
                continue
            pos = _np.searchsorted(wr, rd, side="left") - 1
            ok = pos >= 0
            lw[rd[ok]] = wr[pos[ok]]

    rob_cap = cfg.rob_entries
    rob_tgt = nc_idx[rob_cap:]
    rob_src = nc_idx[:max(0, nc_idx.size - rob_cap)]
    preg_budget = max(1, cfg.phys_regs - 16)
    wr_all = _np.flatnonzero(writer)
    preg_tgt = wr_all[preg_budget:]
    preg_src = wr_all[:max(0, wr_all.size - preg_budget)]

    # Fetch-span structure: a span starts at the window head, after
    # every redirecting/fetch-breaking record, and at every record
    # whose line fill stalls fetch.
    boundary = (mis > 0) | (ptk != 0)
    starts_mask = _np.zeros(m, dtype=bool)
    starts_mask[0] = True
    starts_mask[1:] |= boundary[:-1]
    starts_mask |= ifill > 0
    seg_starts = _np.flatnonzero(starts_mask)
    seg_id = _np.cumsum(starts_mask) - 1
    offdiv = (ar - seg_starts[seg_id]) // cfg.fetch_width
    seg_len = _np.diff(_np.append(seg_starts, m))
    prevrec = seg_starts[1:] - 1
    mis_prev = mis[prevrec]
    btype = _np.where(mis_prev > 0, mis_prev,
                      _np.where(ptk[prevrec] != 0, 3, 0))

    loads_c = _np.cumsum(kc == _K_LOAD, dtype=_np.int64)
    stores_c = _np.cumsum(kc == _K_STORE, dtype=_np.int64)

    entry = {
        "m": m, "kc": kc, "cad": cad, "nc_idx": nc_idx,
        "ar": ar, "ar_nc": ar_nc, "lat_nc": lat_nc,
        "lw1": lw1, "lw2": lw2,
        "rob_tgt": rob_tgt, "rob_src": rob_src,
        "preg_tgt": preg_tgt, "preg_src": preg_src,
        "seg_starts": seg_starts, "seg_id": seg_id, "offdiv": offdiv,
        "seg_len_list": seg_len.tolist(),
        "btype_list": btype.tolist(),
        "prevrec": prevrec,
        "ifill_start_list": ifill[seg_starts].tolist(),
        # Per-span closed-form offsets: fetch cycle of the span's last
        # record, and the cycle fetch would continue at, both relative
        # to the span's start cycle.
        "fl_off_list": ((seg_len - 1) // cfg.fetch_width).tolist(),
        "post_off_list": ((seg_len - 1) // cfg.fetch_width
                          + (seg_len % cfg.fetch_width == 0)).tolist(),
        "mis": mis, "ptk": ptk,
        "counters": {
            **bcounters,
            "loads": loads_c, "stores": stores_c,
            "imiss": im_c, "dmiss": dm_c, "l2miss": l2_c,
        },
    }
    cache[key] = entry
    return entry


def run_fastpath_vec(
    trace: RecordedTrace,
    i_skip: int,
    i_begin: int,
    i_end: int,
    config: Optional[TimingConfig] = None,
    program=None,
    prewarm_code: bool = True,
) -> TimingStats:
    """Replay records ``i_skip+1 .. i_end`` with the vectorized kernel.

    Same contract and snapshot-and-subtract schedule as
    :func:`repro.timing.fastpath.run_fastpath`; raises
    :class:`FastPathUnsupported` when numpy is unavailable or the
    trace is trap-emulated.  Windows inside the kernel's envelope but
    outside its convergence/exactness guarantees are transparently
    replayed by the loop kernel, so the result is always byte-identical
    to the golden model.
    """
    global last_iterations
    if _np is None:
        raise FastPathUnsupported("numpy is unavailable")
    cfg = config or TimingConfig()
    cols = trace.columns()
    if cols.has_trapped:
        raise FastPathUnsupported("trace contains trap-emulated records")
    if prewarm_code and program is None:
        raise ValueError("prewarm_code requires the program image")

    lo = i_skip + 1
    hi = i_end + 1
    m = hi - lo
    global last_kernel, last_iterations
    last_iterations = 0
    if m <= 0:
        last_kernel = "vector"
        stats = TimingStats()
        tap = _fp._stats_tap
        return tap(stats) if tap is not None else stats

    p = None
    try:
        p = _prep(cols, lo, hi, cfg, program, prewarm_code)
        if p.get("delegate"):
            # A previous replay of this (window, config) fell outside
            # the exactness envelope; skip straight to the loop kernel
            # instead of re-paying the failed vector attempt.
            raise _Delegate()
        fetch, decode, complete, commit, F_list = _solve(p, cfg)
    except _Delegate:
        if p is not None:
            p["delegate"] = True
        last_kernel = "loop"
        return _fp.run_fastpath(trace, i_skip, i_begin, i_end,
                                config=cfg, program=program,
                                prewarm_code=prewarm_code)
    last_kernel = "vector"
    return _assemble_stats(p, cfg, fetch, decode, commit,
                           lo, i_begin, m)


def _solve(p: Dict, cfg: TimingConfig):
    """The whole-window fixpoint.  Returns converged per-record cycle
    arrays; raises :class:`_Delegate` past the iteration caps or the
    issue-prune exactness envelope."""
    global last_iterations
    m = p["m"]
    ar, ar_nc = p["ar"], p["ar_nc"]
    nc_idx, lat_nc = p["nc_idx"], p["lat_nc"]
    lw1, lw2 = p["lw1"], p["lw2"]
    rob_tgt, rob_src = p["rob_tgt"], p["rob_src"]
    preg_tgt, preg_src = p["preg_tgt"], p["preg_src"]
    seg_id, offdiv = p["seg_id"], p["offdiv"]
    seg_len = p["seg_len_list"]
    btype = p["btype_list"]
    prevrec = p["prevrec"]
    ifill_at = p["ifill_start_list"]
    fl_off = p["fl_off_list"]
    post_off = p["post_off_list"]
    n_seg = len(seg_len)

    Wd, Wc = cfg.decode_width, cfg.commit_width
    Wi = cfg.issue_width
    fd = cfg.frontend_depth
    bp = cfg.backend_penalty
    prune_window = _Bandwidth.PRUNE_WINDOW

    # Warm start: a repeat replay of a memoised (window, config) seeds
    # the fixpoint with the previously converged state, so the loop
    # terminates after a single full verification pass.
    warm = p.get("warm")
    if warm is not None:
        decode, complete, commit, F_prev = warm
    else:
        zeros = _np.zeros(m, dtype=_np.int64)
        decode = zeros
        complete = zeros
        commit = zeros
        F_prev = None

    for outer in range(MAX_OUTER_ITERATIONS):
        # ---- fetch: sequential chain over spans, vector expansion ----
        if n_seg > 1:
            dec_b = decode[prevrec].tolist()
            comp_b = complete[prevrec].tolist()
        F_list = [0] * n_seg
        F = ifill_at[0]
        F_list[0] = F
        for k in range(1, n_seg):
            kp = k - 1
            fetch_last = F + fl_off[kp]
            post = F + post_off[kp]
            shift = 0 if F_prev is None else F - F_prev[kp]
            bt = btype[kp]
            if bt == 1:
                resume = dec_b[kp] + shift + 1
                floor_ = fetch_last + fd + 1
                if resume < floor_:
                    resume = floor_
            elif bt == 2:
                resume = comp_b[kp] + shift + 1
                floor_ = fetch_last + bp
                if resume < floor_:
                    resume = floor_
            elif bt == 3:
                resume = fetch_last + 1
            else:
                resume = 0
            F = (post if post > resume else resume) + ifill_at[k]
            F_list[k] = F
        F_np = _np.asarray(F_list, dtype=_np.int64)
        fetch = F_np[seg_id] + offdiv

        # ---- decode: p-scan with ROB / phys-reg release clamps ----
        ready = fetch + fd
        if rob_tgt.size:
            ready[rob_tgt] = _np.maximum(ready[rob_tgt], commit[rob_src])
        if preg_tgt.size:
            ready[preg_tgt] = _np.maximum(ready[preg_tgt],
                                          commit[preg_src])
        t = ar + _np.maximum.accumulate(Wd * ready - ar)
        decode_new = t // Wd

        # ---- execute: dataflow + issue-port fixpoint ----
        dec1 = decode_new + 1
        cp = _np.empty(m + 1, dtype=_np.int64)
        cp[m] = 0  # lw == -1 gathers this sentinel
        complete_inner = complete
        for _ in range(MAX_INNER_ITERATIONS):
            cp[:m] = complete_inner
            rex = _np.maximum(dec1, _np.maximum(cp[lw1], cp[lw2]))
            req = rex[nc_idx]
            if req.size > 1:
                # Exactness envelope: a request falling this far behind
                # the frontier could consult entries the golden
                # allocator has pruned.  Checking every pass also cuts
                # off diverging transients before they get expensive.
                amax = _np.maximum.accumulate(req)
                if bool((amax[:-1] - req[1:] >= prune_window - 1).any()):
                    raise _Delegate()
            issue_nc = _alloc_issue(req, Wi)
            complete_new = decode_new.copy()
            complete_new[nc_idx] = issue_nc + lat_nc
            if _np.array_equal(complete_new, complete_inner):
                break
            complete_inner = complete_new
        else:
            raise _Delegate()

        # ---- commit: p-scan over the non-decode-committed stream ----
        commit_new = decode_new.copy()
        if nc_idx.size:
            cnc = complete_new[nc_idx] + 1
            tnc = ar_nc + _np.maximum.accumulate(Wc * cnc - ar_nc)
            commit_new[nc_idx] = tnc // Wc

        if (F_prev == F_list
                and _np.array_equal(decode_new, decode)
                and _np.array_equal(complete_new, complete)
                and _np.array_equal(commit_new, commit)):
            if req.size > 1:
                # Exactness envelope of _alloc_issue: a request far
                # enough behind the allocation frontier could consult
                # entries the golden allocator has pruned.  One check
                # of the converged stream suffices — it equals the
                # stream the golden allocator saw.
                amax = _np.maximum.accumulate(issue_nc)
                if bool((amax[:-1] - req[1:] >= prune_window - 1).any()):
                    raise _Delegate()
            last_iterations = outer + 1
            p["warm"] = (decode_new, complete_new, commit_new, F_list)
            return fetch, decode_new, complete_new, commit_new, F_list
        decode, complete, commit = decode_new, complete_new, commit_new
        F_prev = F_list
    raise _Delegate()


def _assemble_stats(p: Dict, cfg: TimingConfig, fetch, decode, commit,
                    lo: int, i_begin: int, m: int) -> TimingStats:
    """Counter cumsums -> the golden snapshot-and-subtract schedule."""
    c = p["counters"]
    fd = cfg.frontend_depth
    cyc = _np.maximum.accumulate(commit) + 1

    rob_tgt, rob_src = p["rob_tgt"], p["rob_src"]
    if rob_tgt.size:
        dprev = _np.empty(m, dtype=_np.int64)
        dprev[0] = 0
        dprev[1:] = decode[:-1]
        ready_pre = _np.maximum(fetch + fd, dprev)
        stall = commit[rob_src] - ready_pre[rob_tgt]
        _np.maximum(stall, 0, out=stall)
        stall_full = _np.zeros(m, dtype=_np.int64)
        stall_full[rob_tgt] = stall
        rob_c = _np.cumsum(stall_full)
    else:
        rob_c = None

    def at(pos: int) -> Tuple[int, ...]:
        return (
            pos + 1,                        # instructions
            int(cyc[pos]),                  # cycles (final_commit + 1)
            int(c["cond"][pos]), int(c["condmp"][pos]),
            int(c["brrres"][pos]), int(c["brrtk"][pos]),
            int(c["front"][pos]), int(c["back"][pos]),
            0,                              # brr_packet_splits
            int(c["breaks"][pos]),
            int(rob_c[pos]) if rob_c is not None else 0,
            int(c["loads"][pos]), int(c["stores"][pos]),
            int(c["imiss"][pos]), int(c["dmiss"][pos]),
            int(c["l2miss"][pos]),
        )

    finals = at(m - 1)
    baseline = at(i_begin - lo) if i_begin >= lo else (0,) * 16
    diff = [f - b for f, b in zip(finals, baseline)]
    stats = TimingStats(
        instructions=diff[0], cycles=diff[1], cond_branches=diff[2],
        cond_mispredicts=diff[3], brr_resolved=diff[4], brr_taken=diff[5],
        frontend_redirects=diff[6], backend_redirects=diff[7],
        brr_packet_splits=diff[8], fetch_breaks=diff[9],
        rob_stall_cycles=diff[10], loads=diff[11], stores=diff[12],
        icache_misses=diff[13], dcache_misses=diff[14], l2_misses=diff[15],
    )
    tap = _fp._stats_tap
    return tap(stats) if tap is not None else stats


# ----------------------------------------------------------------------
# Multi-window batching.


def run_fastpath_vec_batch(
    trace: RecordedTrace,
    windows: Sequence[Tuple[int, int, int, Optional[TimingConfig]]],
    program=None,
    prewarm_code: bool = True,
) -> List[TimingStats]:
    """Replay every ``(i_skip, i_begin, i_end, config)`` window of one
    recorded trace in a single kernel invocation.

    All configs share one columnar decode and one set of word tables,
    and configs agreeing on cache geometry / predictor shape share the
    event pre-passes through the per-trace memo — the batched form of
    the sweep is what amortises the per-trace work the ISSUE's
    record-once/replay-many architecture calls for.  Results are
    byte-identical to sequential :func:`run_fastpath_vec` calls (pinned
    by ``tests/test_fastpath_golden.py``).
    """
    return [
        run_fastpath_vec(trace, i_skip, i_begin, i_end, config=config,
                         program=program, prewarm_code=prewarm_code)
        for (i_skip, i_begin, i_end, config) in windows
    ]
