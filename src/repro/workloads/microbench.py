"""The Section 5.3 checksum/character-distribution microbenchmark.

The paper compiles one C source once and post-processes the assembly
into every instrumentation variant so that "all the benchmark binaries
are generated with the same instructions, register usage, stack
allocations, and code layout".  We do the analogue: a single CFG for
the character-processing loop, passed through the Arnold-Ryder
transforms of :mod:`repro.instrument` to produce
``no-instrumentation``, ``full-instrumentation``, and the sampled
``cbs``/``brr`` x ``no-dup``/``full-dup`` variants across any sampling
interval.

The loop classifies each character (lower-case / upper-case / other)
with data-dependent branches and updates a checksum and per-class
distribution counts.  Edge-profile instrumentation sites sit on the
classifying branches' outcome edges (site 0: not-lower edge, 1: lower
edge, 2: upper edge, 3: other edge).

Markers delimit the measured region: the loop fires marker 1 once a
warm-up fraction of the text has been processed and marker 2 at loop
exit, so timing windows exclude cold-start and prologue/epilogue
effects ("for all of our experiments we exclude the program's prologue
and epilogue from timing simulation").
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..instrument.arnold_ryder import SamplingSpec, apply_framework
from ..instrument.cfg import Block, Cfg, Terminator
from ..isa.asm import assemble
from ..isa.program import Program
from ..sim.machine import Machine
from .text import _generate_text, reference_checksum, site_encounters

#: Memory layout.
TEXT_BASE = 0x20000
PROFILE_BASE = 0x10000
CHECKSUM_ADDR = 0x10100

#: Marker ids.
WARM_MARKER = 1
END_MARKER = 2

#: Site ids and their meaning.
SITES: Dict[int, str] = {
    0: "edge:head->mid (not lower)",
    1: "edge:head->lower",
    2: "edge:mid->upper",
    3: "edge:mid->other",
}

#: CFG block anchoring each site (the block whose label is the site's
#: sampling check — for brr variants, the ``brr`` instruction itself).
SITE_BLOCKS: Dict[int, str] = {
    0: "mid",
    1: "lower",
    2: "upper",
    3: "other",
}


def _site_lines(site_id: int) -> List[str]:
    """Edge-counter increment: the instrumentation payload."""
    offset = 4 * site_id
    return [
        f"lw r11, {offset}(r10)",
        "addi r11, r11, 1",
        f"sw r11, {offset}(r10)",
    ]


def build_cfg(n_chars: int, warm_chars: int) -> Cfg:
    """The fully instrumented character-processing CFG.

    Framework state initialisation (the cbs counter) is *not* part of
    this CFG — it belongs to the program preamble, before any sampling
    check can execute.
    """
    if not 0 <= warm_chars < n_chars:
        raise ValueError("warm-up must be shorter than the text")
    cfg = Cfg("mb", entry="entry")
    cfg.add(Block(
        "entry",
        body=[
            f"li r1, {TEXT_BASE}",
            f"li r2, {TEXT_BASE + n_chars}",
            "li r3, 0",
            f"li r10, {PROFILE_BASE}",
            f"li r8, {TEXT_BASE + warm_chars}",
        ],
        term=Terminator("fall", target="head"),
    ))
    cfg.add(Block(
        "head",
        body=[
            "lb r5, 0(r1)",
            "addi r1, r1, 1",
            "slti r6, r5, 97",
        ],
        # r5 >= 'a'  ->  r6 == 0  ->  lower-case path.
        term=Terminator("cond", op="beq", ra="r6", rb="r0",
                        taken="lower", target="mid"),
    ))
    mid = cfg.add(Block(
        "mid",
        body=["slti r6, r5, 65"],
        term=Terminator("cond", op="beq", ra="r6", rb="r0",
                        taken="upper", target="other"),
    ))
    mid.site_id, mid.site_lines = 0, _site_lines(0)
    other = cfg.add(Block(
        "other",
        body=["xor r3, r3, r5"],
        term=Terminator("jump", target="join"),
    ))
    other.site_id, other.site_lines = 3, _site_lines(3)
    upper = cfg.add(Block(
        "upper",
        body=["shli r7, r5, 1", "add r3, r3, r7"],
        term=Terminator("jump", target="join"),
    ))
    upper.site_id, upper.site_lines = 2, _site_lines(2)
    lower = cfg.add(Block(
        "lower",
        body=["add r3, r3, r5"],
        term=Terminator("fall", target="join"),
    ))
    lower.site_id, lower.site_lines = 1, _site_lines(1)
    cfg.add(Block(
        "join",
        body=[],
        term=Terminator("cond", op="beq", ra="r1", rb="r8",
                        taken="warm", target="latch"),
    ))
    cfg.add(Block(
        "latch",
        body=[],
        term=Terminator("cond", op="blt", ra="r1", rb="r2",
                        taken="head", target="exit"),
    ))
    cfg.add(Block(
        "warm",
        body=[f"marker {WARM_MARKER}", "li r8, 0"],
        term=Terminator("jump", target="latch"),
    ))
    cfg.add(Block(
        "exit",
        body=[f"marker {END_MARKER}", f"li r9, {CHECKSUM_ADDR}",
              "sw r3, 0(r9)"],
        term=Terminator("halt"),
    ))
    cfg.validate()
    return cfg


@dataclass
class Microbench:
    """One built variant of the microbenchmark."""

    program: Program
    text: bytes
    variant: str
    interval: Optional[int]
    include_payload: bool
    n_chars: int
    warm_chars: int

    @property
    def measured_text(self) -> bytes:
        """Characters inside the marker-delimited window."""
        return self.text[self.warm_chars:]

    @property
    def measured_sites(self) -> int:
        """Instrumentation sites encountered inside the window."""
        return site_encounters(self.measured_text)

    @property
    def expected_checksum(self) -> int:
        return reference_checksum(self.text)

    def load_text(self, machine: Machine) -> None:
        """Memory-setup callback for the timing runner."""
        machine.memory.write_bytes(TEXT_BASE, self.text)

    def make_machine(self, brr_unit=None, memory_size: int = 1 << 20) -> Machine:
        machine = Machine(self.program, memory_size=memory_size,
                          brr_unit=brr_unit)
        self.load_text(machine)
        return machine

    def read_results(self, machine: Machine):
        """(checksum, per-site edge counts) after a run."""
        checksum = machine.memory.load_word(CHECKSUM_ADDR)
        counts = [machine.memory.load_word(PROFILE_BASE + 4 * s)
                  for s in sorted(SITES)]
        return checksum, counts

    @staticmethod
    def branch_biases(counts):
        """Branch biases reconstructed from the edge profile.

        The paper's stated purpose for the microbenchmark's
        instrumentation: "we can collect edge profiles to compute
        branch biases".  Returns the taken probability of the two
        classifying branches: branch 1 (``head``: lower-case?) and
        branch 2 (``mid``: upper-case?).
        """
        not_lower, lower, upper, other = counts
        b1_total = lower + not_lower
        b2_total = upper + other
        if b1_total == 0 or b2_total == 0:
            raise ValueError("edge profile too sparse to compute biases")
        return {
            "head_taken_lower": lower / b1_total,
            "mid_taken_upper": upper / b2_total,
        }

    def brr_site_bindings(self):
        """Per-site (brr address, counter address) bindings for the
        convergent-profiling controller.  Only meaningful for the
        ``brr`` + ``no-dup`` variant, where each site's check block is
        exactly one ``brr`` instruction at the site's label."""
        if self.variant != "brr+no-dup":
            raise ValueError(
                f"site bindings need the brr+no-dup variant, "
                f"not {self.variant!r}"
            )
        from ..sampling.convergent_isa import SiteBinding

        return {
            site_id: SiteBinding(
                brr_addr=self.program.address_of(f"mb__{block}"),
                counter_addr=PROFILE_BASE + 4 * site_id,
            )
            for site_id, block in SITE_BLOCKS.items()
        }


def _build_microbench(
    n_chars: int = 2000,
    variant: str = "none",
    kind: Optional[str] = None,
    interval: int = 1024,
    include_payload: bool = True,
    warm_fraction: float = 0.25,
    seed: int = 0,
    text: Optional[bytes] = None,
    counter_in_register: bool = False,
) -> Microbench:
    """Build one microbenchmark variant.

    ``variant``: ``"none"``, ``"full"``, ``"no-dup"`` or ``"full-dup"``
    (the latter two need ``kind`` = ``"cbs"`` or ``"brr"``).
    ``counter_in_register`` selects Section 2's register-resident
    placement for the cbs counter.
    """
    if text is None:
        text = _generate_text(n_chars, seed=seed)
    elif len(text) != n_chars:
        raise ValueError("explicit text length must equal n_chars")
    warm_chars = max(1, int(n_chars * warm_fraction))
    spec = None
    if variant in ("no-dup", "full-dup"):
        if kind is None:
            raise ValueError("sampled variants need kind='cbs' or 'brr'")
        spec = SamplingSpec(kind=kind, interval=interval,
                            counter_in_register=counter_in_register)
    cfg = build_cfg(n_chars, warm_chars)
    transformed = apply_framework(cfg, variant, spec=spec,
                                  include_payload=include_payload)
    # Preamble: framework state init runs before any sampling check.
    preamble = (spec.init_lines() if spec is not None else [])
    entry_label = transformed.label(transformed.entry)
    source = "\n".join(preamble + [f"jmp {entry_label}"] + transformed.lower())
    program = assemble(source)
    return Microbench(
        program=program,
        text=text,
        variant=variant if spec is None else f"{kind}+{variant}",
        interval=interval if spec is not None else None,
        include_payload=include_payload,
        n_chars=n_chars,
        warm_chars=warm_chars,
    )


def build_microbench(
    n_chars: int = 2000,
    variant: str = "none",
    kind: Optional[str] = None,
    interval: int = 1024,
    include_payload: bool = True,
    warm_fraction: float = 0.25,
    seed: int = 0,
    text: Optional[bytes] = None,
    counter_in_register: bool = False,
) -> Microbench:
    """Deprecated shim over the workload registry; see
    :func:`repro.workloads.registry.get_workload`."""
    warnings.warn(
        "build_microbench() is deprecated; use "
        "get_workload('microbench', ...).raw instead",
        DeprecationWarning, stacklevel=2)
    return _build_microbench(
        n_chars, variant=variant, kind=kind, interval=interval,
        include_payload=include_payload, warm_fraction=warm_fraction,
        seed=seed, text=text, counter_in_register=counter_in_register)
