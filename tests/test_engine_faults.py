"""Fault-tolerance tests for the experiment engine.

Drives the deterministic fault-injection seam (`repro.engine.faults`)
through every failure path the engine claims to survive: in-attempt
exceptions, SIGKILL'd pool workers (``BrokenProcessPool``), hung
windows against ``timeout``, retry exhaustion under each failure
policy, and crash-safe resume from a half-finished run.  The
load-bearing property throughout: a faulted-then-retried run produces
**byte-identical** payloads to a clean run.
"""

import json

import pytest

from repro.engine import (
    EngineConfig,
    ExperimentEngine,
    InjectedWorkerFault,
    ResultCache,
    RunRecorder,
    TraceStore,
    WindowFailure,
    WindowSpec,
    completed_keys,
    is_failure,
    read_run_log,
    should_inject,
)


def _specs():
    """A cheap mixed batch (accuracy + timing windows)."""
    from repro.experiments import accuracy_window_spec, microbench_window_spec
    from repro.workloads.dacapo import spec_by_name

    return [
        accuracy_window_spec(spec_by_name("fop"), 1 << 10,
                             ("random",), 0.003, seed=0),
        accuracy_window_spec(spec_by_name("antlr"), 1 << 10,
                             ("sw",), 0.003, seed=1),
        microbench_window_spec(500, "full-dup", seed=1, kind="brr",
                               interval=64, lfsr_seed=64),
        microbench_window_spec(500, "none", seed=1),
    ]


def _canonical(payloads):
    return [json.dumps(p, sort_keys=True) for p in payloads]


class TestInjectionDeterminism:
    def test_pure_function_of_key_and_attempt(self):
        assert should_inject("abc", 0, 0.5) == should_inject("abc", 0, 0.5)

    def test_rate_zero_never_rate_one_bounds(self):
        keys = [f"key{i}" for i in range(200)]
        assert not any(should_inject(k, 0, 0.0) for k in keys)
        hits = sum(should_inject(k, 0, 0.3) for k in keys)
        # Deterministic, but statistically ~60 of 200; wide tolerance.
        assert 30 <= hits <= 90

    def test_retried_attempt_hashes_differently(self):
        # For a fair rate the fault schedule must vary per attempt,
        # otherwise retry could never converge.
        keys = [f"key{i}" for i in range(100)]
        flips = sum(should_inject(k, 0, 0.5) != should_inject(k, 1, 0.5)
                    for k in keys)
        assert flips > 20


class TestSerialFaultRecovery:
    def test_retried_run_is_byte_identical(self, tmp_path):
        specs = _specs()
        clean = ExperimentEngine(cache=ResultCache(tmp_path / "clean"))
        faulty = ExperimentEngine(
            config=EngineConfig(fault_rate=0.4, retries=8, backoff=0.0),
            cache=ResultCache(tmp_path / "faulty"))

        clean_payloads = clean.run(specs)
        faulty_payloads = faulty.run(specs)

        assert _canonical(clean_payloads) == _canonical(faulty_payloads)
        summary = faulty.summary()
        assert summary["retries"] > 0
        assert summary["failures"] == 0

    def test_attempts_logged_per_window(self, tmp_path):
        specs = _specs()[:2]
        recorder = RunRecorder(tmp_path / "run.jsonl")
        engine = ExperimentEngine(
            config=EngineConfig(fault_rate=0.4, retries=8, backoff=0.0),
            cache=ResultCache(tmp_path / "c"), recorder=recorder)
        engine.run(specs)
        _, records = read_run_log(tmp_path / "run.jsonl")
        assert all(r["attempts"] >= 1 for r in records)
        assert sum(r["attempts"] - 1 for r in records) \
            == engine.summary()["retries"]

    def test_raise_policy_fails_fast(self, tmp_path):
        engine = ExperimentEngine(
            config=EngineConfig(fault_rate=0.999, retries=8,
                                failure_policy="raise"),
            cache=ResultCache(tmp_path))
        with pytest.raises(InjectedWorkerFault):
            engine.run(_specs()[:1])

    def test_retry_exhaustion_raises_under_retry_policy(self, tmp_path):
        engine = ExperimentEngine(
            config=EngineConfig(fault_rate=0.999, retries=2, backoff=0.0,
                                failure_policy="retry"),
            cache=ResultCache(tmp_path))
        with pytest.raises(InjectedWorkerFault):
            engine.run(_specs()[:1])

    def test_skip_policy_returns_typed_placeholder(self, tmp_path):
        spec = _specs()[0]
        engine = ExperimentEngine(
            config=EngineConfig(fault_rate=0.999, retries=2, backoff=0.0,
                                failure_policy="skip"),
            cache=ResultCache(tmp_path))
        payload = engine.run([spec])[0]
        assert is_failure(payload)
        assert isinstance(payload, WindowFailure)
        assert payload.key == spec.cache_key
        assert payload.attempts == 3
        assert "injected fault" in payload.error
        # Duck-typed payload access answers None, not KeyError.
        assert payload.get("cycles") is None
        assert engine.summary()["failures"] == 1
        # Failures are never cached: a healthy rerun must recompute.
        assert engine.cache.get(spec) is None

    def test_non_transient_error_is_never_retried(self, tmp_path):
        recorder = RunRecorder()
        engine = ExperimentEngine(
            config=EngineConfig(retries=5, failure_policy="skip"),
            cache=ResultCache(tmp_path), recorder=recorder)
        payload = engine.run([WindowSpec.make("no-such-kind", x=1)])[0]
        assert is_failure(payload)
        assert payload.attempts == 1  # ValueError burned no retries


class TestPoolFaultRecovery:
    def test_injected_exceptions_are_byte_identical(self, tmp_path):
        specs = _specs()
        clean = ExperimentEngine(cache=ResultCache(tmp_path / "clean"))
        faulty = ExperimentEngine(
            config=EngineConfig(jobs=2, fault_rate=0.4, retries=8,
                                backoff=0.0),
            cache=ResultCache(tmp_path / "faulty"))
        assert _canonical(clean.run(specs)) == _canonical(faulty.run(specs))
        assert faulty.summary()["failures"] == 0

    def test_sigkilled_worker_does_not_abort_run(self, tmp_path,
                                                 monkeypatch):
        """A worker dying mid-window (BrokenProcessPool) rebuilds the
        pool and retries; the run completes byte-identically."""
        monkeypatch.setenv("REPRO_FAULT_MODE", "kill")
        specs = _specs()
        clean = ExperimentEngine(cache=ResultCache(tmp_path / "clean"))
        faulty = ExperimentEngine(
            # A pool crash cannot be attributed to one window, so every
            # in-flight window burns an attempt; budget accordingly.
            config=EngineConfig(jobs=2, fault_rate=0.25, retries=25,
                                backoff=0.0),
            cache=ResultCache(tmp_path / "faulty"))
        assert _canonical(clean.run(specs)) == _canonical(faulty.run(specs))
        assert faulty.summary()["failures"] == 0

    def test_hung_window_times_out_and_skips(self, tmp_path, monkeypatch):
        """A hung worker trips the per-window deadline; with ``skip``
        and no retries the window degrades to a placeholder instead of
        blocking the run forever."""
        monkeypatch.setenv("REPRO_FAULT_MODE", "hang")
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "60")
        specs = _specs()[:2]
        engine = ExperimentEngine(
            config=EngineConfig(jobs=2, fault_rate=0.999, retries=0,
                                timeout=0.5, failure_policy="skip"),
            cache=ResultCache(tmp_path))
        payloads = engine.run(specs)
        assert all(is_failure(p) for p in payloads)
        assert all("exceeded 0.5s" in p.error for p in payloads)
        assert engine.summary()["failures"] == 2

    def test_completed_windows_survive_a_crashed_batch(self, tmp_path):
        """Crash-safe incremental progress: windows cached before a
        fatal failure stay durable, so the retried run only re-executes
        the rest (the resume invariant)."""
        base = _specs()
        # Order so the batch completes some windows before the first
        # deterministic fault (rate 0.4 faults the accuracy windows'
        # first attempts, not the microbench ones).
        specs = [base[2], base[3], base[0]]
        cache = ResultCache(tmp_path / "c")
        doomed = ExperimentEngine(
            config=EngineConfig(fault_rate=0.4, retries=0,
                                failure_policy="raise"),
            cache=cache)
        with pytest.raises(InjectedWorkerFault):
            doomed.run(specs)
        survivors = sum(cache.get(s) is not None for s in specs)
        assert 0 < survivors < len(specs)

        healthy = ExperimentEngine(cache=cache)
        healthy.run(specs)
        assert healthy.summary()["cache_hits"] == survivors


class TestResumeFromRunLog:
    def test_resume_counts_previously_completed_windows(self, tmp_path):
        specs = _specs()
        cache_dir = tmp_path / "cache"
        log = tmp_path / "run.jsonl"

        first = ExperimentEngine(cache=ResultCache(cache_dir),
                                 recorder=RunRecorder(log))
        first.run(specs[:2])  # "interrupted" after two windows

        resumed = ExperimentEngine(
            config=EngineConfig(resume_from=str(log)),
            cache=ResultCache(cache_dir), recorder=RunRecorder(log))
        resumed.run(specs)

        assert resumed.resume_keys == {s.cache_key for s in specs[:2]}
        summary = resumed.summary()
        assert summary["cache_hits"] == 2
        assert summary["cache_misses"] == 2
        assert summary["resumed"] == 2

    def test_completed_keys_ignores_failures(self):
        records = [{"key": "a", "cache": "miss"},
                   {"key": "b", "cache": "hit"},
                   {"key": "c", "cache": "failed"}]
        assert completed_keys(records) == {"a", "b"}

    def test_read_run_log_tolerates_torn_tail(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_text('{"record_type": "run_meta", "command": "x", '
                       '"argv": []}\n'
                       '{"key": "a", "cache": "miss"}\n'
                       '{"key": "b", "ca')  # torn mid-write
        meta, records = read_run_log(log)
        assert meta["command"] == "x"
        assert [r["key"] for r in records] == ["a"]

    def test_read_run_log_missing_file(self, tmp_path):
        meta, records = read_run_log(tmp_path / "nope.jsonl")
        assert meta is None and records == []


class TestTracePages:
    """Shared-memory trace pages: the parent registry is the single
    unlink authority, so neither a clean pool shutdown nor a
    fault-forced pool rebuild may leak ``/dev/shm`` segments."""

    def _timing_specs(self):
        from repro.experiments import microbench_window_spec

        return [
            microbench_window_spec(500, "full-dup", seed=1, kind="brr",
                                   interval=64, lfsr_seed=64),
            microbench_window_spec(500, "full-dup", seed=2, kind="cbs",
                                   interval=64),
        ]

    def _warm_store(self, tmp_path, specs):
        """Record the traces serially so the pooled run can page them."""
        store = TraceStore(tmp_path / "traces", enabled=True)
        warm = ExperimentEngine(cache=ResultCache(tmp_path / "warm"),
                                trace_store=store)
        return store, warm.run(specs)

    def test_shared_trace_equivalent_then_unlinked(self):
        from repro.engine import shm_pages
        from repro.engine.windows import MATERIALS
        from repro.timing.runner import record_window

        spec = self._timing_specs()[0]
        materials = MATERIALS[spec.kind](spec.params_dict())
        trace = record_window(materials["program"], materials["end"],
                              brr_unit=materials["brr_unit"],
                              setup=materials["setup"])
        registry = shm_pages.TracePageRegistry()
        name = registry.publish("key", trace)
        if name is None:
            pytest.skip("shared memory unavailable on this platform")
        shared = shm_pages.attach(name)
        assert shared is not None
        assert len(shared) == len(trace)
        assert shared.markers == trace.markers
        assert shared.nbytes == trace.nbytes
        ref, cols = trace.columns(), shared.columns()
        assert list(cols.pc) == list(ref.pc)
        assert list(cols.word_id) == list(ref.word_id)
        assert list(cols.next_pc) == list(ref.next_pc)
        assert bytes(cols.taken) == bytes(ref.taken)
        assert list(cols.mem_addr) == list(ref.mem_addr)
        assert cols.instrs == ref.instrs
        assert list(shared.records()) == list(trace.records())
        shared.close()
        assert registry.unlink_all() == 1
        assert shm_pages.attach(name) is None  # gone for good
        assert registry.unlink_all() == 0      # and idempotent

    def test_pooled_run_with_pages_leaves_no_segments(self, tmp_path):
        from repro.engine import shm_pages

        before = set(shm_pages.leaked_pages())
        specs = self._timing_specs()
        store, serial_payloads = self._warm_store(tmp_path, specs)
        pooled = ExperimentEngine(
            config=EngineConfig(jobs=2),
            cache=ResultCache(tmp_path / "pooled"),
            trace_store=store)
        assert _canonical(pooled.run(specs)) == _canonical(serial_payloads)
        assert set(shm_pages.leaked_pages()) <= before

    def test_pool_rebuild_does_not_leak_pages(self, tmp_path, monkeypatch):
        from repro.engine import shm_pages

        monkeypatch.setenv("REPRO_FAULT_MODE", "kill")
        before = set(shm_pages.leaked_pages())
        specs = self._timing_specs()
        store, clean_payloads = self._warm_store(tmp_path, specs)
        faulty = ExperimentEngine(
            config=EngineConfig(jobs=2, fault_rate=0.4, retries=25,
                                backoff=0.0),
            cache=ResultCache(tmp_path / "faulty"),
            trace_store=store)
        assert _canonical(faulty.run(specs)) == _canonical(clean_payloads)
        assert faulty.summary()["failures"] == 0
        assert set(shm_pages.leaked_pages()) <= before
