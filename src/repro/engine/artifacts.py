"""Structured run artifacts: the machine-readable bench trajectory.

Every window the engine executes (or serves from cache) produces one
:class:`WindowRecord` — spec identity, wall time, cycles/instructions
where the window carries timing stats, cache hit/miss/failed, attempt
count and the worker that ran it.  A :class:`RunRecorder` accumulates
the records, keeps aggregate counters for ``--json`` summaries and
optionally appends each record as one JSONL line to a log file
(``BENCH_*.jsonl``), which is what CI uploads as the run artifact.

The log doubles as the engine's resume ledger: the CLI writes one
``run_meta`` line (command, argv, resolved engine config) at the top
of each run, and :func:`read_run_log` / :func:`completed_keys` parse
the file back — tolerating a torn final line from an interrupted run —
so ``repro resume <run.jsonl>`` can replay the original invocation and
execute only the windows without durably cached results.

Every line carries a ``crc`` field — the CRC32 of its canonical
serialisation (``docs/integrity.md``) — so the reader distinguishes a
*torn* line (unparseable tail of a killed run: expected, skipped with
a note) from a *bit-rotted* one (parseable JSON whose checksum no
longer matches: also skipped, but reported as corruption).  Either way
a damaged line is never trusted: ``repro resume`` re-executes its
window instead of mis-counting it as complete.  Lines without ``crc``
(pre-integrity ledgers) stay readable.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from .integrity import LedgerReport, check_ledger_line, ledger_line_crc

#: ``record_type`` of the run-level metadata line in a JSONL log.
RUN_META_TYPE = "run_meta"

#: ``record_type`` of a fast-path validation divergence line.
VALIDATION_TYPE = "validation"

#: ``record_type`` of a sampling-plan telemetry line (one per
#: explicitly planned :meth:`~repro.engine.core.ExperimentEngine.run_plan`
#: call: the plan, windows_run/windows_population and per-stratum CI
#: half-widths).
PLAN_TYPE = "plan"


@dataclass
class WindowRecord:
    """One executed (or cache-served) window."""

    key: str
    kind: str
    label: str
    cache: str            # "hit" | "miss"
    wall_s: float
    worker: Optional[int]  # pid of the executing worker; None for hits
    cycles: Optional[int]
    instructions: Optional[int]
    ts: float
    #: Trace-store usage for timed windows: "hit" (replayed a stored
    #: functional stream), "miss" (recorded it), "off" (lock-step
    #: fallback), or None (untimed window or result-cache hit).
    trace: Optional[str] = None
    #: Encoded size of the window's functional trace, where one exists.
    trace_bytes: Optional[int] = None
    #: Functional ``Machine.step()`` calls this window actually paid —
    #: 0 on a trace hit, the full stream length on a miss or lock-step
    #: run.  The record/replay speedup criterion is audited from this.
    functional_steps: Optional[int] = None
    #: Which timing implementation ran the window: "fast" (batched
    #: columnar kernel), "golden" (per-record replay loop), "lockstep"
    #: (no trace store), or None (untimed window or result-cache hit).
    timing_path: Optional[str] = None
    #: Replay throughput in trace records per second (replays only).
    replay_records_per_s: Optional[float] = None
    #: Execution attempts this window took (1 = first try; ``None`` on
    #: cache hits, which execute nothing).
    attempts: Optional[int] = None
    #: Last error, for ``cache == "failed"`` placeholder records.
    error: Optional[str] = None
    #: Fast-path watchdog outcome for this window: "pass" (golden
    #: cross-check matched), "divergence" (it did not — see the typed
    #: ``validation`` record logged alongside), or None (not sampled).
    validation: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class RunRecorder:
    """Collects window records; optionally streams them as JSONL."""

    def __init__(self, log_path: Optional[pathlib.Path] = None) -> None:
        self.log_path = pathlib.Path(log_path) if log_path else None
        self.records: List[WindowRecord] = []
        self.validations: List[Dict[str, Any]] = []
        self.plans: List[Dict[str, Any]] = []
        self.meta: Optional[Dict[str, Any]] = None
        self._started = time.time()
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)

    def _append_line(self, payload: Dict[str, Any]) -> None:
        if self.log_path is None:
            return
        payload = dict(payload, crc=ledger_line_crc(payload))
        with open(self.log_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
            handle.write("\n")

    def write_meta(self, meta: Dict[str, Any]) -> None:
        """Log the run-level metadata (command, argv, engine config)
        that ``repro resume`` replays an interrupted run from."""
        self.meta = dict(meta)
        self._append_line(dict(meta, record_type=RUN_META_TYPE))

    def record(self, record: WindowRecord) -> None:
        self.records.append(record)
        self._append_line(record.to_dict())

    def write_validation(self, detail: Dict[str, Any]) -> None:
        """Log one typed fast-path divergence record (the watchdog's
        out-of-band evidence line)."""
        self.validations.append(dict(detail))
        self._append_line(dict(detail, record_type=VALIDATION_TYPE))

    def write_plan(self, detail: Dict[str, Any]) -> None:
        """Log one sampling-plan telemetry record (plan identity,
        windows_run/windows_population, per-stratum CI half-widths)."""
        self.plans.append(dict(detail))
        self._append_line(dict(detail, record_type=PLAN_TYPE))

    def summary(self) -> Dict[str, Any]:
        """Aggregate view of the run so far, for ``--json`` output."""
        hits = sum(1 for r in self.records if r.cache == "hit")
        failures = sum(1 for r in self.records if r.cache == "failed")
        misses = len(self.records) - hits - failures
        return {
            "plans": [dict(plan) for plan in self.plans],
            "windows": len(self.records),
            "cache_hits": hits,
            "cache_misses": misses,
            "failures": failures,
            "retries": sum(max(0, (r.attempts or 1) - 1)
                           for r in self.records),
            "window_wall_s": round(sum(r.wall_s for r in self.records), 4),
            "elapsed_s": round(time.time() - self._started, 4),
            "simulated_cycles": sum(r.cycles or 0 for r in self.records),
            "simulated_instructions": sum(
                r.instructions or 0 for r in self.records),
            "workers": sorted({r.worker for r in self.records
                               if r.worker is not None}),
            "trace_hits": sum(1 for r in self.records if r.trace == "hit"),
            "trace_misses": sum(1 for r in self.records
                                if r.trace == "miss"),
            "functional_steps": sum(r.functional_steps or 0
                                    for r in self.records),
            "fastpath_windows": sum(1 for r in self.records
                                    if r.timing_path == "fast"),
            "goldenpath_windows": sum(1 for r in self.records
                                      if r.timing_path == "golden"),
            "validation_passes": sum(1 for r in self.records
                                     if r.validation == "pass"),
            "validation_divergences": sum(1 for r in self.records
                                          if r.validation == "divergence"),
        }


# ----------------------------------------------------------------------
# Reading a run log back: the resume path.


def read_run_log_checked(path) -> Tuple[Optional[Dict[str, Any]],
                                        List[Dict[str, Any]],
                                        LedgerReport]:
    """Parse a run JSONL into ``(meta, window_records, report)``.

    Interrupted runs may end in a torn, half-written line, and a
    stored ledger can bit-rot in place; both are *skipped* — never
    trusted — and tallied in the returned
    :class:`~repro.engine.integrity.LedgerReport`, so a resume can
    warn about exactly what it ignored.  Returns ``(None, [],
    empty report)`` for a missing or unreadable file.
    """
    meta: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    report = LedgerReport(path=str(path))
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError:
        return None, [], report
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        report.lines += 1
        try:
            obj = json.loads(line)
        except ValueError:
            report.torn += 1  # torn tail line from an interrupted run
            continue
        if not isinstance(obj, dict):
            report.torn += 1
            continue
        status = check_ledger_line(obj)
        if status == "corrupt":
            report.corrupt += 1  # bit rot: skip, never trust
            continue
        report.ok += int(status == "ok")
        report.legacy += int(status == "legacy")
        record_type = obj.get("record_type")
        if record_type == RUN_META_TYPE:
            if meta is None:
                meta = obj
        elif record_type in (VALIDATION_TYPE, PLAN_TYPE):
            pass  # evidence/telemetry lines, not window records
        else:
            records.append(obj)
    return meta, records, report


def read_run_log(path) -> Tuple[Optional[Dict[str, Any]],
                                List[Dict[str, Any]]]:
    """:func:`read_run_log_checked` without the integrity report."""
    meta, records, _report = read_run_log_checked(path)
    return meta, records


def completed_keys(records: List[Dict[str, Any]]) -> Set[str]:
    """Spec digests the logged run finished (hit or executed miss) —
    the windows a resume can expect to find in the durable cache."""
    return {record["key"] for record in records
            if "key" in record and record.get("cache") in ("hit", "miss")}
