"""Tests for the Arnold-Ryder transformations.

The decisive property (paper Section 4.1: the rewrite "retain[s] the
desired functionality") is functional equivalence: every variant of an
instrumented loop computes the same program result, and the sampled
profiles approximate the full profile at the configured rate.
"""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.instrument.arnold_ryder import (
    SamplingSpec,
    apply_framework,
    full_duplication,
    full_instrumentation,
    no_duplication,
    strip_instrumentation,
)
from repro.instrument.cfg import Block, Cfg, Terminator
from repro.isa.asm import assemble
from repro.sim.machine import Machine

PROFILE_BASE = 0x8000
ITERS = 64


def counting_loop():
    """A loop whose body has two instrumented blocks; r3 accumulates a
    checksum, profile counters live at PROFILE_BASE."""
    cfg = Cfg("t", entry="entry")
    cfg.add(Block("entry",
                  body=[f"li r10, {PROFILE_BASE}", f"li r1, {ITERS}",
                        "li r3, 0"],
                  term=Terminator("fall", target="head")))
    cfg.add(Block("head", body=["andi r6, r1, 1"],
                  term=Terminator("cond", op="beq", ra="r6", rb="r0",
                                  taken="even", target="odd")))
    odd = cfg.add(Block("odd", body=["addi r3, r3, 1"],
                        term=Terminator("jump", target="latch")))
    odd.site_id, odd.site_lines = 0, [
        "lw r11, 0(r10)", "addi r11, r11, 1", "sw r11, 0(r10)"]
    even = cfg.add(Block("even", body=["addi r3, r3, 100"],
                         term=Terminator("fall", target="latch")))
    even.site_id, even.site_lines = 1, [
        "lw r11, 4(r10)", "addi r11, r11, 1", "sw r11, 4(r10)"]
    cfg.add(Block("latch", body=["addi r1, r1, -1"],
                  term=Terminator("cond", op="bne", ra="r1", rb="r0",
                                  taken="head", target="exit")))
    cfg.add(Block("exit", term=Terminator("halt")))
    return cfg


def run_variant(duplication, kind=None, interval=8, include_payload=True,
                unit=None):
    cfg = counting_loop()
    spec = SamplingSpec(kind=kind, interval=interval) if kind else None
    out = apply_framework(cfg, duplication, spec=spec,
                          include_payload=include_payload)
    preamble = spec.init_lines() if spec else []
    entry = out.label(out.entry)
    source = "\n".join(preamble + [f"jmp {entry}"] + out.lower())
    machine = Machine(assemble(source), brr_unit=unit)
    machine.run(max_steps=200_000)
    counts = (machine.memory.load_word(PROFILE_BASE),
              machine.memory.load_word(PROFILE_BASE + 4))
    return machine.regs[3], counts, machine


EXPECTED_R3 = (ITERS // 2) * 101  # 32 odd (+1) and 32 even (+100)


class TestBaselines:
    def test_strip_removes_sites(self):
        stripped = strip_instrumentation(counting_loop())
        assert not stripped.instrumented_blocks()
        result, counts, __ = run_variant("none")
        assert result == EXPECTED_R3
        assert counts == (0, 0)

    def test_full_instrumentation_counts_everything(self):
        result, counts, __ = run_variant("full")
        assert result == EXPECTED_R3
        assert counts == (ITERS // 2, ITERS // 2)

    def test_full_instrumentation_is_copy(self):
        cfg = counting_loop()
        copy = full_instrumentation(cfg)
        copy.block("odd").site_lines.append("nop")
        assert "nop" not in cfg.block("odd").site_lines


class TestNoDuplication:
    @pytest.mark.parametrize("kind", ["cbs", "brr"])
    def test_functional_equivalence(self, kind):
        unit = HardwareCounterUnit() if kind == "brr" else None
        result, counts, __ = run_variant("no-dup", kind=kind, unit=unit)
        assert result == EXPECTED_R3

    def test_cbs_samples_exactly_at_interval(self):
        """Sites encountered: 64 (one per iteration, alternating);
        interval 8 -> exactly 8 samples."""
        __, counts, __ = run_variant("no-dup", kind="cbs", interval=8)
        assert sum(counts) == ITERS // 8
        # Footnote 7 resonance: odd/even alternate and 8 is even, so
        # every sample hits the same parity.
        assert 0 in counts

    def test_brr_hw_counter_samples_at_interval(self):
        __, counts, __ = run_variant("no-dup", kind="brr",
                                     unit=HardwareCounterUnit())
        assert sum(counts) == ITERS // 8

    def test_brr_lfsr_samples_roughly_at_rate(self):
        __, counts, __ = run_variant("no-dup", kind="brr", interval=4,
                                     unit=BranchOnRandomUnit())
        assert 2 <= sum(counts) <= 36  # expectation 16 of 64

    def test_payload_can_be_omitted(self):
        result, counts, __ = run_variant("no-dup", kind="cbs",
                                         include_payload=False)
        assert result == EXPECTED_R3
        assert counts == (0, 0)

    def test_brr_sample_path_out_of_line(self):
        cfg = counting_loop()
        out = no_duplication(cfg, SamplingSpec("brr", interval=8))
        order = out.order
        # The sampled blocks come after every normal block (Figure 8).
        smp_positions = [i for i, n in enumerate(order) if n.endswith("__smp")]
        normal_positions = [i for i, n in enumerate(order)
                            if not n.endswith("__smp")]
        assert min(smp_positions) > max(normal_positions)

    def test_brr_uses_single_check_instruction(self):
        out = no_duplication(counting_loop(), SamplingSpec("brr"))
        check = out.block("odd")
        assert check.body == []
        assert check.term.kind == "brr"

    def test_cbs_check_shape_matches_figure4(self):
        out = no_duplication(counting_loop(), SamplingSpec("cbs"))
        check = out.block("odd")
        assert check.body == ["lw r12, 0(r13)"]
        assert check.term.kind == "cond" and check.term.op == "beq"
        resume = out.block("odd__res")
        assert resume.body[:2] == ["addi r12, r12, -1", "sw r12, 0(r13)"]
        sample = out.block("odd__smp")
        assert sample.body[-1] == "lw r12, 4(r13)"


class TestFullDuplication:
    @pytest.mark.parametrize("kind", ["cbs", "brr"])
    def test_functional_equivalence(self, kind):
        unit = HardwareCounterUnit() if kind == "brr" else None
        result, counts, __ = run_variant("full-dup", kind=kind, unit=unit)
        assert result == EXPECTED_R3

    def test_checking_version_has_no_instrumentation(self):
        out = full_duplication(counting_loop(), SamplingSpec("cbs"))
        assert not out.block("odd").site_lines
        assert out.block("odd__dup").site_lines

    def test_check_at_entry_and_header(self):
        out = full_duplication(counting_loop(), SamplingSpec("brr"))
        assert "entry__chk" in out
        assert "head__chk" in out
        assert out.entry == "entry__chk"

    def test_dup_backedge_returns_to_check(self):
        out = full_duplication(counting_loop(), SamplingSpec("brr"))
        dup_latch = out.block("latch__dup")
        assert dup_latch.term.taken == "head__chk"
        # Forward edges stay within the duplicate.
        assert dup_latch.term.target == "exit__dup"

    def test_sampling_rate_counts_regions(self):
        """Full-dup's counter ticks per region entry (1/iteration), so
        at interval 8 about ITERS/8 instrumented passes happen — each
        collecting the sites of one acyclic path (1 site here)."""
        __, counts, __ = run_variant("full-dup", kind="cbs", interval=8)
        assert 6 <= sum(counts) <= 10

    def test_payload_can_be_omitted(self):
        result, counts, __ = run_variant("full-dup", kind="brr",
                                         include_payload=False,
                                         unit=HardwareCounterUnit())
        assert result == EXPECTED_R3
        assert counts == (0, 0)

    def test_amortization_fewer_checks_than_no_dup(self):
        """The point of Full-Duplication: fewer dynamic checks.  Here
        the loop body has one site per iteration and full-dup also has
        one check per iteration, but a two-site straightline body shows
        the amortisation."""
        cfg = counting_loop()
        spec = SamplingSpec("brr", interval=8)
        nodup = no_duplication(cfg, spec)
        fulldup = full_duplication(cfg, spec)
        nodup_checks = sum(1 for b in nodup.blocks() if b.term.kind == "brr")
        fulldup_checks = sum(1 for b in fulldup.blocks()
                             if b.term.kind == "brr")
        assert nodup_checks == 2   # one per site
        assert fulldup_checks == 2  # entry + single loop header


class TestDispatcher:
    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            apply_framework(counting_loop(), "triple-dup")

    def test_sampled_mode_requires_spec(self):
        with pytest.raises(ValueError):
            apply_framework(counting_loop(), "no-dup")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SamplingSpec("magic")
        with pytest.raises(Exception):
            SamplingSpec("cbs", interval=1000)  # not a power of two

    def test_brr_needs_no_init(self):
        assert SamplingSpec("brr").init_lines() == []
        assert len(SamplingSpec("cbs").init_lines()) == 5
