"""The unified workload registry and the legacy deprecation shims.

Every family round-trips through ``get_workload`` producing results
byte-identical to its legacy entry point, and each legacy entry point
emits exactly one :class:`DeprecationWarning` while delegating.
"""

import warnings

import numpy as np
import pytest

from repro.workloads import dacapo, microbench, text
from repro.workloads.registry import (
    FAMILIES,
    get_workload,
    list_workloads,
)


class TestRegistrySurface:
    def test_all_families_registered(self):
        assert set(FAMILIES) == {"dacapo", "microbench", "text",
                                 "adversarial"}
        names = list_workloads()
        assert set(FAMILIES) <= set(names)
        assert "jython" in names  # the dacapo shortcuts ride along

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_workload("not-a-workload")

    def test_functional_keys_carry_family_and_knobs(self):
        workload = get_workload("text", n_chars=100, seed=3)
        key = workload.functional_key()
        assert key["family"] == "text"
        assert key["knobs"]["n_chars"] == 100

    def test_functional_keys_distinguish_knobs(self):
        one = get_workload("adversarial", scheme="cbs", density=0.25)
        other = get_workload("adversarial", scheme="cbs", density=0.5)
        assert one.functional_key() != other.functional_key()


class TestRoundTrips:
    def test_text_matches_legacy(self):
        workload = get_workload("text", n_chars=500, seed=2)
        with pytest.warns(DeprecationWarning):
            legacy = text.generate_text(n_chars=500, seed=2)
        assert workload.raw == legacy
        assert workload.events().tolist() == list(legacy)

    def test_microbench_matches_legacy(self):
        workload = get_workload("microbench", n_chars=400, variant="no-dup",
                                kind="cbs", interval=64, seed=1)
        with pytest.warns(DeprecationWarning):
            legacy = microbench.build_microbench(
                n_chars=400, variant="no-dup", kind="cbs", interval=64,
                seed=1)
        assert list(workload.program().words) == list(legacy.program.words)

    def test_dacapo_matches_legacy(self):
        workload = get_workload("jython", scale=0.01, seed=0)
        with pytest.warns(DeprecationWarning):
            spec = dacapo.spec_by_name("jython")
        assert workload.raw == spec
        with pytest.warns(DeprecationWarning):
            legacy_events = dacapo.generate_events(spec, scale=0.01, seed=0)
        assert np.array_equal(workload.events(), legacy_events)

    def test_dacapo_qualified_name(self):
        assert (get_workload("dacapo:jython", scale=0.01).raw
                == get_workload("jython", scale=0.01).raw)

    def test_adversarial_matches_builder(self):
        from repro.workloads.adversarial import build_adversarial

        workload = get_workload("adversarial", scheme="mixed", seed=4,
                                blocks=8)
        direct = build_adversarial(scheme="mixed", seed=4, blocks=8)
        assert list(workload.program().words) == list(direct.program().words)


class TestShimsWarnOnce:
    @pytest.mark.parametrize("call", [
        lambda: text.generate_text(n_chars=50),
        lambda: microbench.build_microbench(n_chars=200),
        lambda: dacapo.spec_by_name("jython"),
        lambda: dacapo.generate_events(dacapo._spec_by_name("jython"),
                                       scale=0.005),
    ])
    def test_one_deprecation_warning(self, call):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "get_workload" in str(deprecations[0].message)

    def test_event_chunks_stays_quiet(self):
        spec = get_workload("jython").spec
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            next(iter(dacapo.event_chunks(spec, scale=0.005)))
