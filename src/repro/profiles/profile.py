"""Profiles: per-key sample counts and the overlap accuracy metric.

Section 4.1 measures profile quality as the *overlap percentage*:

    accuracy = sum_i min(f_full(i), f_sampled(i))

where ``f_full(i)`` and ``f_sampled(i)`` are the fraction of all
collected samples attributed to method ``i`` in the full and sampled
profiles.  A perfect sampling scores 100%.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Mapping, Optional


class Profile:
    """A multiset of profile samples keyed by method (or edge, etc.)."""

    def __init__(self, counts: Optional[Mapping[Hashable, int]] = None) -> None:
        self._counts: Counter = Counter()
        if counts:
            for key, value in counts.items():
                if value < 0:
                    raise ValueError(f"negative count for {key!r}")
                if value:
                    self._counts[key] = int(value)

    @classmethod
    def from_events(cls, events: Iterable[Hashable]) -> "Profile":
        profile = cls()
        profile._counts.update(events)
        return profile

    @classmethod
    def from_array(cls, counts) -> "Profile":
        """Build from an indexable of per-key counts (e.g. np.bincount
        output); keys are the array indices."""
        return cls({index: int(value) for index, value in enumerate(counts)
                    if value})

    def add(self, key: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[key] += count

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def keys(self):
        return self._counts.keys()

    def items(self):
        return self._counts.items()

    def fraction(self, key: Hashable) -> float:
        total = self.total
        return self._counts.get(key, 0) / total if total else 0.0

    def fractions(self) -> Dict[Hashable, float]:
        total = self.total
        if not total:
            return {}
        return {key: value / total for key, value in self._counts.items()}

    def top(self, n: int):
        """The ``n`` most frequent keys with their fractions."""
        total = self.total
        return [(key, value / total)
                for key, value in self._counts.most_common(n)]

    def merged(self, other: "Profile") -> "Profile":
        """A new profile combining both sample sets (multi-run
        aggregation)."""
        merged = Profile(self._counts)
        merged._counts.update(other._counts)
        return merged

    def to_dict(self):
        """Plain-dict form for serialisation."""
        return dict(self._counts)

    @classmethod
    def from_dict(cls, data) -> "Profile":
        return cls(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Profile({len(self)} keys, {self.total} samples)"


def overlap_accuracy(full: Profile, sampled: Profile) -> float:
    """Overlap percentage between a full and a sampled profile (0..100).

    An empty sampled profile scores 0 (nothing was learned); comparing
    against an empty full profile is an error.
    """
    full_total = full.total
    if full_total == 0:
        raise ValueError("full profile is empty")
    if sampled.total == 0:
        return 0.0
    sampled_fractions = sampled.fractions()
    overlap = 0.0
    for key, count in full.items():
        f_full = count / full_total
        overlap += min(f_full, sampled_fractions.get(key, 0.0))
    return 100.0 * overlap
