"""Property test: transform-invariance of program semantics.

Hypothesis generates random structured programs (nested loops,
diamonds, instrumented blocks); every Arnold-Ryder variant of each
program must compute the identical architectural result.  This is the
strongest form of the paper's "retaining the desired functionality"
claim, checked over the whole transform space rather than hand-picked
examples.
"""

from hypothesis import given, settings, strategies as st

from repro.core.brr import HardwareCounterUnit
from repro.instrument.arnold_ryder import SamplingSpec, apply_framework
from repro.instrument.cfg import Block, Cfg, Terminator
from repro.isa.asm import assemble
from repro.sim.machine import Machine

# A structured program is a tree of constructs; each leaf contributes
# distinct arithmetic so any control-flow corruption changes r3.
construct = st.deferred(lambda: st.one_of(
    st.tuples(st.just("work"), st.integers(1, 4)),
    st.tuples(st.just("site"), st.integers(1, 4)),
    st.tuples(st.just("diamond"), construct_list),
    st.tuples(st.just("loop"), st.integers(2, 4), construct_list),
))
construct_list = st.lists(construct, min_size=1, max_size=3)


class _Builder:
    """Lower a construct tree to a Cfg with instrumented blocks."""

    def __init__(self):
        self.cfg = Cfg("p", entry="b0")
        self.counter = 0
        self.site_counter = 0
        self.loop_depth = 0

    def fresh(self):
        self.counter += 1
        return f"b{self.counter}"

    def build(self, tree):
        entry = Block("b0", body=["li r3, 1"])
        self.cfg.add(entry)
        last = self.emit(entry, tree)
        exit_name = self.fresh()
        last.term = Terminator("fall", target=exit_name)
        self.cfg.add(Block(exit_name, term=Terminator("halt")))
        self.cfg.validate()
        return self.cfg

    def emit(self, current, constructs):
        for item in constructs:
            kind = item[0]
            if kind == "work":
                current.body.extend(
                    [f"addi r3, r3, {item[1]}", "xori r3, r3, 3"])
            elif kind == "site":
                # Split so the site anchors a block top.
                name = self.fresh()
                block = Block(name, body=[f"addi r3, r3, {item[1] * 5}"])
                block.site_id = self.site_counter
                block.site_lines = ["addi r9, r9, 1"]
                self.site_counter += 1
                current.term = Terminator("fall", target=name)
                self.cfg.add(block)
                current = block
            elif kind == "diamond":
                left, join = self.fresh(), self.fresh()
                right = self.fresh()
                current.body.append("andi r2, r3, 1")
                current.term = Terminator("cond", op="beq", ra="r2",
                                          rb="r0", taken=left, target=right)
                right_block = self.cfg.add(Block(
                    right, body=["addi r3, r3, 7"],
                    term=Terminator("jump", target=join)))
                left_block = self.cfg.add(Block(
                    left, body=["addi r3, r3, 11"]))
                inner_last = self.emit(left_block, item[1])
                inner_last.term = Terminator("fall", target=join)
                current = self.cfg.add(Block(join))
            elif kind == "loop":
                if self.loop_depth >= 2:
                    # Register budget: flatten deeper loops to work.
                    current.body.extend(["addi r3, r3, 2"] * item[1])
                    continue
                reg = "r5" if self.loop_depth == 0 else "r6"
                head, latch, after = self.fresh(), self.fresh(), self.fresh()
                current.body.append(f"li {reg}, {item[1]}")
                current.term = Terminator("fall", target=head)
                head_block = self.cfg.add(Block(head))
                self.loop_depth += 1
                body_last = self.emit(head_block, item[2])
                self.loop_depth -= 1
                body_last.term = Terminator("fall", target=latch)
                self.cfg.add(Block(
                    latch, body=[f"addi {reg}, {reg}, -1"],
                    term=Terminator("cond", op="bne", ra=reg, rb="r0",
                                    taken=head, target=after)))
                current = self.cfg.add(Block(after))
        return current


VARIANTS = [
    ("none", None, None),
    ("full", None, None),
    ("no-dup", "cbs", False),
    ("no-dup", "brr", False),
    ("full-dup", "cbs", False),
    ("full-dup", "brr", False),
    ("no-dup", "cbs", True),
    ("full-dup", "cbs", True),
]


def run_variant(cfg, variant, kind, register_counter, interval):
    spec = None
    if kind is not None:
        spec = SamplingSpec(kind=kind, interval=interval,
                            counter_in_register=bool(register_counter))
    out = apply_framework(cfg, variant, spec=spec)
    preamble = spec.init_lines() if spec else []
    source = "\n".join(
        preamble + [f"jmp {out.label(out.entry)}"] + out.lower())
    unit = HardwareCounterUnit() if kind == "brr" else None
    machine = Machine(assemble(source), brr_unit=unit)
    machine.run(max_steps=300_000)
    return machine.regs[3]


@settings(max_examples=30, deadline=None)
@given(tree=construct_list, interval_log=st.integers(1, 4))
def test_all_variants_compute_identical_results(tree, interval_log):
    interval = 1 << interval_log
    reference = None
    for variant, kind, register_counter in VARIANTS:
        cfg = _Builder().build(tree)  # fresh CFG per variant
        result = run_variant(cfg, variant, kind, register_counter, interval)
        if reference is None:
            reference = result
        else:
            assert result == reference, (variant, kind, register_counter)
