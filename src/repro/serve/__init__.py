"""``repro serve`` — a multi-tenant simulation service over ``repro.api``.

One process serves every figure of the paper's evaluation over
HTTP/JSON (stdlib only — ``asyncio`` + hand-rolled HTTP/1.1, no third
party dependencies).  Incoming requests are validated against the
``repro.api`` façade's command surface, canonicalised into a request
key, **coalesced** (concurrent identical requests share a single
computation) and queued into a bounded worker pool that executes them
through one shared :class:`~repro.engine.core.ExperimentEngine` — so
N tenants asking for the same figure pay for it once, and everything
they don't share still flows through the three-tier result store
(memory LRU → disk → optional shared backend, ``docs/engine.md``).

``GET /healthz`` answers liveness; ``GET /statsz`` surfaces the serve
counters (requests/coalesced/simulations/errors) next to both stores'
per-tier telemetry — the same counters the engine folds into its JSONL
run summaries.  See ``docs/serve.md`` for the wire protocol.
"""

from .chaos import (
    FAULT_MODES,
    ChaosReport,
    FaultyBackend,
    format_chaos,
    run_chaos_serve,
)
from .http import ReproServer, ServerThread, ShutdownLeak
from .service import (
    COMMANDS,
    DeadlineExceeded,
    RequestError,
    ServeCounters,
    Shed,
    SimulationService,
    TenantCounters,
    request_key,
)

__all__ = [
    "COMMANDS",
    "ChaosReport",
    "DeadlineExceeded",
    "FAULT_MODES",
    "FaultyBackend",
    "format_chaos",
    "run_chaos_serve",
    "ReproServer",
    "RequestError",
    "ServeCounters",
    "ServerThread",
    "Shed",
    "ShutdownLeak",
    "SimulationService",
    "TenantCounters",
    "request_key",
]
