"""Branch prediction structures for the timing model.

The configuration follows Section 5.1: a tournament predictor pairing
a 16-bit gshare with a 64k-entry bimodal table, a 1024-entry BTB and a
32-entry return address stack.  All tables use 2-bit saturating
counters.

These structures are where two of the paper's overhead sources live:
counter-based sampling branches consume predictor entries, alias with
program branches, and dilute the global history with low-entropy
outcomes, whereas branch-on-random instructions are "never entered ...
into the branch prediction hardware" and therefore cannot pollute it.
"""

from __future__ import annotations

from typing import List, Optional


def _is_pow2(n: int) -> bool:
    return n > 0 and not n & (n - 1)


class TwoBitTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, entries: int, init: int = 1) -> None:
        if not _is_pow2(entries):
            raise ValueError(f"table entries must be a power of two: {entries}")
        self.entries = entries
        self.mask = entries - 1
        self.table: List[int] = [init] * entries

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self.mask
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1


class Bimodal:
    """PC-indexed 2-bit counter predictor."""

    def __init__(self, entries: int) -> None:
        self.table = TwoBitTable(entries)

    @staticmethod
    def _index(pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)


class Gshare:
    """Global-history-XOR-PC predictor.

    The global history register is shared machine state: every
    conditional branch the front end predicts shifts its outcome in.
    Sampling branches from a counter-based framework therefore consume
    history bits (the paper's "effective reduction in the global
    history length").
    """

    def __init__(self, history_bits: int) -> None:
        if not 1 <= history_bits <= 24:
            raise ValueError(f"unreasonable history length: {history_bits}")
        self.history_bits = history_bits
        self.history = 0
        self._hist_mask = (1 << history_bits) - 1
        self.table = TwoBitTable(1 << history_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self.history

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Update the counter then shift the outcome into history."""
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | int(taken)) & self._hist_mask


class Tournament:
    """Chooser-arbitrated gshare/bimodal pair (Section 5.1)."""

    def __init__(
        self,
        gshare_history_bits: int = 16,
        bimodal_entries: int = 1 << 16,
        chooser_entries: int = 1 << 12,
    ) -> None:
        self.gshare = Gshare(gshare_history_bits)
        self.bimodal = Bimodal(bimodal_entries)
        # Chooser counters: >=2 selects gshare.
        self.chooser = TwoBitTable(chooser_entries, init=1)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        if self.chooser.predict(pc >> 2):
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train both components; move the chooser toward whichever
        component was correct when they disagree."""
        g_correct = self.gshare.predict(pc) == taken
        b_correct = self.bimodal.predict(pc) == taken
        if g_correct != b_correct:
            self.chooser.update(pc >> 2, g_correct)
        self.gshare.update(pc, taken)
        self.bimodal.update(pc, taken)

    def record(self, correct: bool) -> None:
        self.predictions += 1
        if not correct:
            self.mispredictions += 1

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class Btb:
    """Direct-mapped branch target buffer with full tags."""

    def __init__(self, entries: int) -> None:
        if not _is_pow2(entries):
            raise ValueError(f"BTB entries must be a power of two: {entries}")
        self.mask = entries - 1
        self.tags: List[Optional[int]] = [None] * entries
        self.targets: List[int] = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        index = (pc >> 2) & self.mask
        if self.tags[index] == pc:
            self.hits += 1
            return self.targets[index]
        self.misses += 1
        return None

    def insert(self, pc: int, target: int) -> None:
        index = (pc >> 2) & self.mask
        self.tags[index] = pc
        self.targets[index] = target


class ReturnAddressStack:
    """Fixed-depth RAS; overflow wraps (oldest entry overwritten)."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self.entries = entries
        self._stack: List[int] = [0] * entries
        self._top = 0
        self._depth = 0

    def push(self, return_addr: int) -> None:
        self._top = (self._top + 1) % self.entries
        self._stack[self._top] = return_addr
        self._depth = min(self._depth + 1, self.entries)

    def pop(self) -> Optional[int]:
        if self._depth == 0:
            return None
        value = self._stack[self._top]
        self._top = (self._top - 1) % self.entries
        self._depth -= 1
        return value
