"""The simulation service: validation, coalescing, and the work queue.

This module is the protocol-independent half of ``repro serve`` — it
knows nothing about HTTP.  :class:`SimulationService` maps validated
``(command, params)`` requests onto the :mod:`repro.api` façade:

* **whitelist** — :data:`COMMANDS` enumerates exactly the façade
  functions the service exposes and, per command, the parameters a
  tenant may set with their coercers.  Anything else is a
  :class:`RequestError`, never an arbitrary call;
* **canonical keys** — :func:`request_key` folds the command and the
  *resolved* parameters (defaults applied, values coerced) into one
  canonical JSON string, so ``{"scale": 2}`` and ``{"scale": 2.0}``
  coalesce and differently-ordered dicts hash the same;
* **coalescing** — concurrent identical requests share one in-flight
  computation: the first takes the slot, the rest await the same
  future and count as ``coalesced``.  Results are *not* cached here —
  the engine's tiered result store already memoises at window
  granularity, which is the durable, integrity-checked place for it;
* **the queue** — an ``asyncio`` semaphore bounds how many distinct
  computations run at once (``workers``); each runs in a thread so the
  event loop stays responsive while the engine fans windows out to its
  own process pool (per-request :class:`~repro.engine.spec.WindowSpec`
  sharding happens inside the experiments, exactly as it does for the
  CLI).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..engine import ExperimentEngine


class RequestError(ValueError):
    """A request the service refuses: unknown command, unknown or
    uncoercible parameter.  Maps to HTTP 400."""


def _as_float(value: Any) -> float:
    return float(value)


def _as_int(value: Any) -> int:
    # Reject silent truncation ("4000.5" is a typo, not an int).
    number = float(value)
    if number != int(number):
        raise ValueError(f"not an integer: {value!r}")
    return int(number)


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


def _as_seed_list(value: Any) -> Tuple[int, ...]:
    """Seeds arrive as a JSON list or a comma-separated query string."""
    if isinstance(value, str):
        parts = [part for part in value.split(",") if part.strip()]
        return tuple(_as_int(part) for part in parts)
    if isinstance(value, (list, tuple)):
        return tuple(_as_int(item) for item in value)
    return (_as_int(value),)


def _as_choice(*options: str) -> Callable[[Any], str]:
    def coerce(value: Any) -> str:
        text = str(value).strip().lower()
        if text not in options:
            raise ValueError(f"must be one of {options}, got {value!r}")
        return text
    return coerce


def _as_plan(value: Any) -> str:
    """Sampling plans canonicalise before coalescing, so
    ``fraction:0.25`` and ``fraction:0.250`` share one computation."""
    from ..stats import SamplingPlan

    return SamplingPlan.parse(str(value)).canonical()


#: command -> {param -> coercer}.  The façade functions themselves
#: supply the defaults; the service only validates and coerces what a
#: tenant explicitly sets.
COMMANDS: Dict[str, Dict[str, Callable[[Any], Any]]] = {
    "figure9": {"scale": _as_float, "seeds": _as_seed_list,
                "sample": _as_plan, "seed": _as_int},
    "figure10": {"scale": _as_float, "seeds": _as_seed_list,
                 "sample": _as_plan, "seed": _as_int},
    "figure12": {"scale": _as_float, "interval": _as_int,
                 "sample": _as_plan, "seed": _as_int},
    "figure13": {"scale": _as_int, "sample": _as_plan, "seed": _as_int},
    "figure14": {"scale": _as_int, "sample": _as_plan, "seed": _as_int},
    "figure2": {"scale": _as_int, "seed": _as_int},
    "sensitivity": {"scale": _as_float, "chars": _as_int},
    "cost": {},
    "scorecard": {"quick": _as_bool},
    # Every knob that changes the generated programs must be listed
    # here: request_key() folds only whitelisted (coerced) parameters
    # into the coalescing key, so an omitted knob would let two
    # different computations coalesce onto one result.
    "fuzz": {"windows": _as_int, "seed": _as_int,
             "scheme": _as_choice("cbs", "brr", "mixed"),
             "blocks": _as_int, "shrink": _as_bool},
    "entropy": {"scale": _as_int, "stride": _as_int,
                "sample": _as_plan, "seed": _as_int},
}


def validate_request(command: str,
                     params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The resolved, coerced parameter dict for ``command``; raises
    :class:`RequestError` on anything outside the whitelist."""
    allowed = COMMANDS.get(command)
    if allowed is None:
        raise RequestError(
            f"unknown command {command!r}; known: {sorted(COMMANDS)}")
    resolved: Dict[str, Any] = {}
    for name, value in (params or {}).items():
        coerce = allowed.get(name)
        if coerce is None:
            raise RequestError(
                f"unknown parameter {name!r} for {command!r}; "
                f"allowed: {sorted(allowed)}")
        try:
            resolved[name] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"bad value for {command}.{name}: {exc}") from exc
    return resolved


def request_key(command: str, params: Dict[str, Any]) -> str:
    """Canonical identity of a request — the coalescing key."""
    def _plain(value: Any) -> Any:
        if isinstance(value, tuple):
            return list(value)
        return value

    return json.dumps(
        {"command": command,
         "params": {name: _plain(value)
                    for name, value in sorted(params.items())}},
        sort_keys=True, separators=(",", ":"))


@dataclass
class ServeCounters:
    """Service-level telemetry, surfaced at ``/statsz`` and in the
    server's JSONL ledger."""

    #: Requests accepted (validation passed).
    requests: int = 0
    #: Requests that attached to an already-in-flight computation.
    coalesced: int = 0
    #: Distinct computations actually executed.
    simulations: int = 0
    #: Computations that raised (the error is shared by every waiter).
    errors: int = 0
    #: Requests rejected at validation (HTTP 400s).
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class ServeResult:
    """What one request answers with: the façade result plus whether
    this waiter's computation was shared."""

    command: str
    params: Dict[str, Any]
    data: Any
    text: str
    coalesced: bool = False

    def document(self) -> Dict[str, Any]:
        """The deterministic response body.  ``coalesced`` is
        deliberately excluded: concurrent identical requests must
        receive byte-identical responses."""
        params = {name: (list(value) if isinstance(value, tuple) else value)
                  for name, value in self.params.items()}
        return {"command": self.command, "params": params,
                "data": self.data, "text": self.text}


class SimulationService:
    """Validated, coalesced request execution over one shared engine."""

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 workers: int = 1) -> None:
        if engine is None:
            engine = ExperimentEngine()
        self.engine = engine
        self.counters = ServeCounters()
        self._workers = max(1, workers)
        self._slots: Optional[asyncio.Semaphore] = None
        #: request key -> the future every coalesced waiter shares.
        self._inflight: Dict[str, "asyncio.Future[ServeResult]"] = {}
        #: Serialises engine access across worker threads: the façade
        #: installs the engine as the process default around each call,
        #: and the engine's recorder/counters are not thread-safe.
        self._engine_lock = threading.Lock()

    def _slot(self) -> asyncio.Semaphore:
        # Created lazily so the service binds to the serving loop, not
        # to whichever loop happened to be current at construction.
        if self._slots is None:
            self._slots = asyncio.Semaphore(self._workers)
        return self._slots

    # -- execution ------------------------------------------------------

    def _run_sync(self, command: str, params: Dict[str, Any]) -> ServeResult:
        """One actual simulation (worker thread; counted)."""
        from .. import api

        runner = getattr(api, f"run_{command}")
        with self._engine_lock:
            self.counters.simulations += 1
            result = runner(engine=self.engine, **params)
        return ServeResult(command=command, params=dict(params),
                           data=result.data, text=result.text)

    async def _execute(self, key: str, command: str,
                       params: Dict[str, Any]) -> ServeResult:
        loop = asyncio.get_event_loop()
        try:
            async with _acquire(self._slot()):
                return await loop.run_in_executor(
                    None, self._run_sync, command, params)
        except Exception:
            self.counters.errors += 1
            raise
        finally:
            self._inflight.pop(key, None)

    async def submit(self, command: str,
                     params: Optional[Dict[str, Any]] = None) -> ServeResult:
        """Validate, coalesce and execute one request.

        Raises :class:`RequestError` on validation failure; any other
        exception is whatever the underlying computation raised (every
        coalesced waiter observes the same one).
        """
        try:
            resolved = validate_request(command, params)
        except RequestError:
            self.counters.rejected += 1
            raise
        self.counters.requests += 1
        key = request_key(command, resolved)
        future = self._inflight.get(key)
        if future is not None:
            self.counters.coalesced += 1
            # shield: one waiter being cancelled must not cancel the
            # computation the other waiters share.
            result = await asyncio.shield(future)
            return dataclasses.replace(result, coalesced=True)
        task = asyncio.ensure_future(self._execute(key, command, resolved))
        self._inflight[key] = task
        return await asyncio.shield(task)

    # -- telemetry ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/statsz`` document: serve counters, per-tier store
        telemetry, and the engine's run summary."""
        return {
            "serve": dict(self.counters.as_dict(),
                          inflight=len(self._inflight),
                          workers=self._workers),
            "stores": {
                "results": self.engine.cache.tier_counters(),
                "traces": self.engine.trace_store.tier_counters(),
            },
            "engine": self.engine.summary(),
        }


class _acquire:
    """``async with`` adapter for a semaphore (3.9-compatible)."""

    def __init__(self, semaphore: asyncio.Semaphore) -> None:
        self._semaphore = semaphore

    async def __aenter__(self) -> None:
        await self._semaphore.acquire()

    async def __aexit__(self, *exc_info: Any) -> None:
        self._semaphore.release()
