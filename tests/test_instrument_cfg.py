"""Tests for the CFG IR."""

import pytest

from repro.instrument.cfg import Block, Cfg, CfgError, Terminator
from repro.isa.asm import assemble


def diamond():
    """entry -> (left | right) -> join(halt), with a site on left."""
    cfg = Cfg("f", entry="entry")
    cfg.add(Block("entry", body=["li r1, 1"],
                  term=Terminator("cond", op="beq", ra="r1", rb="r0",
                                  taken="left", target="right")))
    cfg.add(Block("right", body=["addi r2, r2, 1"],
                  term=Terminator("jump", target="join")))
    left = cfg.add(Block("left", body=["addi r2, r2, 2"],
                         term=Terminator("fall", target="join")))
    left.site_id, left.site_lines = 0, ["addi r9, r9, 1"]
    cfg.add(Block("join", term=Terminator("halt")))
    return cfg


def loop():
    """entry -> head -> body -> latch -(back)-> head | exit."""
    cfg = Cfg("g", entry="entry")
    cfg.add(Block("entry", body=["li r1, 5"],
                  term=Terminator("fall", target="head")))
    cfg.add(Block("head", body=["addi r1, r1, -1"],
                  term=Terminator("fall", target="latch")))
    cfg.add(Block("latch",
                  term=Terminator("cond", op="bne", ra="r1", rb="r0",
                                  taken="head", target="exit")))
    cfg.add(Block("exit", term=Terminator("halt")))
    return cfg


class TestTerminator:
    def test_unknown_kind(self):
        with pytest.raises(CfgError):
            Terminator("banana")

    def test_jump_needs_target(self):
        with pytest.raises(CfgError):
            Terminator("jump")

    def test_cond_needs_fields(self):
        with pytest.raises(CfgError):
            Terminator("cond", taken="a", target="b")

    def test_brr_needs_freq(self):
        with pytest.raises(CfgError):
            Terminator("brr", taken="a", target="b")

    def test_successors(self):
        assert Terminator("halt").successors() == ()
        assert Terminator("ret").successors() == ()
        assert Terminator("jump", target="x").successors() == ("x",)
        t = Terminator("cond", op="beq", ra="r1", rb="r0",
                       taken="a", target="b")
        assert t.successors() == ("a", "b")
        b = Terminator("brr", freq="1/4", taken="s", target="r")
        assert b.successors() == ("s", "r")
        assert Terminator("brra", target="z").successors() == ("z",)

    def test_retargeted(self):
        t = Terminator("cond", op="beq", ra="r1", rb="r0",
                       taken="a", target="b")
        m = t.retargeted({"a": "a2"})
        assert m.taken == "a2" and m.target == "b"


class TestCfg:
    def test_duplicate_block_rejected(self):
        cfg = Cfg("f", entry="a")
        cfg.add(Block("a"))
        with pytest.raises(CfgError):
            cfg.add(Block("a"))

    def test_missing_block(self):
        with pytest.raises(CfgError):
            Cfg("f", entry="a").block("a")

    def test_validate_missing_entry(self):
        cfg = Cfg("f", entry="nope")
        cfg.add(Block("a"))
        with pytest.raises(CfgError):
            cfg.validate()

    def test_validate_dangling_successor(self):
        cfg = Cfg("f", entry="a")
        cfg.add(Block("a", term=Terminator("jump", target="ghost")))
        with pytest.raises(CfgError):
            cfg.validate()

    def test_backedges(self):
        assert loop().backedges() == {("latch", "head")}
        assert diamond().backedges() == set()

    def test_instrumented_blocks(self):
        assert [b.name for b in diamond().instrumented_blocks()] == ["left"]

    def test_map_blocks(self):
        renamed = diamond().map_blocks(lambda n: n + "_x")
        assert renamed.entry == "entry_x"
        assert "left_x" in renamed
        assert renamed.block("entry_x").term.taken == "left_x"
        # Deep copy: sites preserved, original untouched.
        assert renamed.block("left_x").site_id == 0

    def test_contains_and_len(self):
        cfg = diamond()
        assert "left" in cfg and "ghost" not in cfg
        assert len(cfg) == 4


class TestLowering:
    def test_diamond_assembles_and_runs(self):
        from repro.sim.machine import Machine

        source = "\n".join(diamond().lower())
        machine = Machine(assemble(source))
        machine.run()
        # entry: r1=1 -> beq r1,r0 not taken -> right path.
        assert machine.regs[2] == 1

    def test_loop_assembles_and_runs(self):
        from repro.sim.machine import Machine

        source = "\n".join(loop().lower())
        machine = Machine(assemble(source))
        machine.run()
        assert machine.regs[1] == 0

    def test_fallthrough_avoids_jump(self):
        lines = loop().lower()
        # entry falls through to head: no jmp between them.
        entry_index = lines.index("g__entry:")
        head_index = lines.index("g__head:")
        assert all("jmp" not in line
                   for line in lines[entry_index:head_index])

    def test_out_of_order_fallthrough_gets_jump(self):
        cfg = Cfg("f", entry="a")
        cfg.add(Block("a", term=Terminator("fall", target="c")))
        cfg.add(Block("b", term=Terminator("halt")))
        cfg.add(Block("c", term=Terminator("halt")))
        lines = cfg.lower()
        assert "jmp f__c" in lines

    def test_site_lines_emitted_inline(self):
        lines = diamond().lower()
        left_index = lines.index("f__left:")
        assert lines[left_index + 1] == "addi r9, r9, 1"

    def test_brr_terminator_lowering(self):
        cfg = Cfg("f", entry="a")
        cfg.add(Block("a", term=Terminator("brr", freq="1/8",
                                           taken="s", target="b")))
        cfg.add(Block("b", term=Terminator("halt")))
        cfg.add(Block("s", term=Terminator("brra", target="b")))
        lines = cfg.lower()
        assert "brr 1/8, f__s" in lines
        assert "brra f__b" in lines
        # And it assembles.
        assemble("\n".join(lines))
