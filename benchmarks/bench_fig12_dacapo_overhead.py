"""Figure 12: framework overhead on the JVM workloads at period 1024.

Paper result (Full-Duplication, period 1024): counter-based sampling
averages almost 5% overhead; branch-on-random achieves 0.64% — almost
an order of magnitude less.  Our substitute JVM reproduces the cbs
average and the direction/regime of the gap (see EXPERIMENTS.md for
the fidelity notes on the brr floor).
"""


from _shared import JVM_SCALE, run_once, report

from repro.experiments import figure12, format_fig12_rows


def test_figure12(benchmark):
    rows = run_once(benchmark, lambda: figure12(scale=JVM_SCALE))

    report(format_fig12_rows(rows))

    average = rows[-1]
    assert average.benchmark == "average"
    # Counter-based sampling: a substantial, Figure 12-sized overhead.
    assert 2.0 <= average.cbs_overhead <= 12.0
    # branch-on-random: several-fold cheaper on every benchmark's
    # average, and absolutely small.
    assert average.brr_overhead < average.cbs_overhead / 2
    assert average.brr_overhead < 3.0
    # jython (tight interpreter loops) is the costliest for counters.
    by_name = {r.benchmark: r for r in rows}
    assert by_name["jython"].cbs_overhead >= max(
        by_name[n].cbs_overhead
        for n in ("bloat", "fop", "lusearch")
    )
