"""Mini-JVM substrate: program model, baseline compiler, workloads."""

from .benchmarks import (
    FIGURE12_BENCHMARKS,
    MEASURE_BEGIN,
    MEASURE_END,
    build_bloat,
    build_fop,
    build_jython,
    build_luindex,
    build_lusearch,
)
from .compiler import (
    PROFILE_BASE,
    STACK_TOP,
    CompiledJvm,
    compile_program,
    method_label,
)
from .model import (
    Call,
    JvmError,
    JvmProgram,
    Loop,
    Marker,
    MethodSpec,
    Stmt,
    Work,
)

__all__ = [
    "FIGURE12_BENCHMARKS",
    "MEASURE_BEGIN",
    "MEASURE_END",
    "build_bloat",
    "build_fop",
    "build_jython",
    "build_luindex",
    "build_lusearch",
    "PROFILE_BASE",
    "STACK_TOP",
    "CompiledJvm",
    "compile_program",
    "method_label",
    "Call",
    "JvmError",
    "JvmProgram",
    "Loop",
    "Marker",
    "MethodSpec",
    "Stmt",
    "Work",
]
