"""JVM compiler with the register-resident cbs counter."""

import pytest

from repro.jvm import (
    Call,
    JvmProgram,
    Loop,
    Marker,
    MethodSpec,
    Work,
    compile_program,
)
from repro.sim.machine import Machine
from repro.timing.runner import overhead_percent, time_window


def program(outer=16):
    """Loop body with a period-3 check pattern (head, leaf, leaf2).

    A single-callee loop gives the checks a period-2 pattern, and a
    power-of-two counter interval then resonates with it — every
    sample lands on the header check and the method payloads never
    run.  That is footnote 7's pathology showing up in our own test
    rig; three checks per iteration keep the counter rotating.
    """
    return JvmProgram({
        "main": MethodSpec("main", [
            Marker(1),
            Loop(outer, [Call("leaf"), Call("leaf2")]),
            Marker(2),
        ]),
        "leaf": MethodSpec("leaf", [Work(20)]),
        "leaf2": MethodSpec("leaf2", [Work(14)]),
    })


class TestRegisterCounterJvm:
    @pytest.mark.parametrize("variant", ["no-dup", "full-dup"])
    def test_functional_profile(self, variant):
        compiled = compile_program(program(16), variant=variant,
                                   kind="cbs", interval=4,
                                   counter_in_register=True)
        machine = Machine(compiled.program)
        machine.run(max_steps=1_000_000)
        total = sum(compiled.read_profile(machine).values())
        assert total > 0

    def test_no_counter_memory_traffic(self):
        """The register variant must not emit counter loads/stores —
        visible as identical load/store counts to the baseline (the
        instrumentation payload never runs at interval 1024 here)."""
        base = time_window(
            compile_program(program(40), variant="none").program,
            begin=(1, 1), end=(2, 1))
        reg = time_window(
            compile_program(program(40), variant="full-dup", kind="cbs",
                            interval=1024,
                            counter_in_register=True).program,
            begin=(1, 1), end=(2, 1))
        mem = time_window(
            compile_program(program(40), variant="full-dup", kind="cbs",
                            interval=1024).program,
            begin=(1, 1), end=(2, 1))
        assert reg.stats.loads == base.stats.loads
        assert reg.stats.stores == base.stats.stores
        assert mem.stats.loads > base.stats.loads

    def test_register_variant_cheaper(self):
        base = time_window(
            compile_program(program(60), variant="none").program,
            begin=(1, 1), end=(2, 1))
        results = {}
        for reg in (False, True):
            timed = time_window(
                compile_program(program(60), variant="full-dup",
                                kind="cbs", interval=1024,
                                counter_in_register=reg).program,
                begin=(1, 1), end=(2, 1))
            results[reg] = timed.cycles
        assert results[True] <= results[False]


class TestFullDupResonance:
    """Footnote 7 at the ISA level, discovered by our own test rig: a
    single-callee loop gives Full-Duplication's checks a period-2
    pattern (header, callee-entry), so a power-of-two counter samples
    only the header region and the method payload never runs.  brr's
    pseudo-randomness samples both."""

    def resonant_program(self, outer=64):
        return JvmProgram({
            "main": MethodSpec("main", [
                Marker(1),
                Loop(outer, [Call("leaf")]),
                Marker(2),
            ]),
            "leaf": MethodSpec("leaf", [Work(20)]),
        })

    def test_cbs_resonates(self):
        compiled = compile_program(self.resonant_program(), variant="full-dup",
                                   kind="cbs", interval=4)
        machine = Machine(compiled.program)
        machine.run(max_steps=1_000_000)
        profile = compiled.read_profile(machine)
        # Every sample lands on the loop-header check; the leaf-entry
        # check is never the one that fires.
        assert profile["leaf"] == 0

    def test_brr_does_not_resonate(self):
        from repro.core.brr import BranchOnRandomUnit
        from repro.core.lfsr import Lfsr

        compiled = compile_program(self.resonant_program(256),
                                   variant="full-dup", kind="brr",
                                   interval=4)
        machine = Machine(compiled.program,
                          brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0xABC)))
        machine.run(max_steps=2_000_000)
        profile = compiled.read_profile(machine)
        assert profile["leaf"] > 0
