"""Systematic opcode semantics matrix.

One parametrised case per (opcode, operand set) against hand-computed
results — the exhaustive complement to the scenario tests in
``test_sim_machine.py``.
"""

import pytest

from repro.isa.asm import assemble
from repro.sim.machine import Machine

MASK = 0xFFFFFFFF

ALU_CASES = [
    # (source fragment, reg, expected)
    ("li r1, 7\nli r2, 5\nadd r3, r1, r2", 3, 12),
    ("li r1, 7\nli r2, 5\nsub r3, r1, r2", 3, 2),
    ("li r1, 5\nli r2, 7\nsub r3, r1, r2", 3, (5 - 7) & MASK),
    ("li r1, 12\nli r2, 10\nand r3, r1, r2", 3, 8),
    ("li r1, 12\nli r2, 10\nor r3, r1, r2", 3, 14),
    ("li r1, 12\nli r2, 10\nxor r3, r1, r2", 3, 6),
    ("li r1, 3\nli r2, 4\nshl r3, r1, r2", 3, 48),
    ("li r1, 48\nli r2, 4\nshr r3, r1, r2", 3, 3),
    ("li r1, 7\nli r2, 6\nmul r3, r1, r2", 3, 42),
    ("li r1, -3\nli r2, 2\nslt r3, r1, r2", 3, 1),
    ("li r1, 2\nli r2, -3\nslt r3, r1, r2", 3, 0),
    ("li r1, 3\nli r2, 3\nslt r3, r1, r2", 3, 0),
    # shift amounts use low 5 bits
    ("li r1, 1\nli r2, 33\nshl r3, r1, r2", 3, 2),
    # immediates
    ("li r1, 7\naddi r3, r1, -9", 3, (7 - 9) & MASK),
    ("li r1, 0xF0\nandi r3, r1, 0x3C", 3, 0x30),
    ("li r1, 0xF0\nori r3, r1, 0x0F", 3, 0xFF),
    ("li r1, 0xFF\nxori r3, r1, 0x0F", 3, 0xF0),
    ("li r1, 3\nshli r3, r1, 2", 3, 12),
    ("li r1, 12\nshri r3, r1, 2", 3, 3),
    ("li r1, -5\nslti r3, r1, -4", 3, 1),
    ("li r1, -4\nslti r3, r1, -5", 3, 0),
    ("li r3, -1", 3, MASK),
    ("li r3, 2097151", 3, 2097151),  # max 22-bit positive
]


@pytest.mark.parametrize("source,reg,expected", ALU_CASES,
                         ids=[c[0].splitlines()[-1] for c in ALU_CASES])
def test_alu_semantics(source, reg, expected):
    machine = Machine(assemble(source + "\nhalt"))
    machine.run(max_steps=100)
    assert machine.regs[reg] == expected


BRANCH_CASES = [
    ("beq", 5, 5, True),
    ("beq", 5, 6, False),
    ("bne", 5, 6, True),
    ("bne", 5, 5, False),
    ("blt", -1, 1, True),
    ("blt", 1, -1, False),
    ("blt", 3, 3, False),
    ("bge", 1, -1, True),
    ("bge", 3, 3, True),
    ("bge", -1, 1, False),
]


@pytest.mark.parametrize("op,a,b,taken", BRANCH_CASES,
                         ids=[f"{c[0]}({c[1]},{c[2]})" for c in BRANCH_CASES])
def test_branch_semantics(op, a, b, taken):
    source = f"""
        li r1, {a}
        li r2, {b}
        {op} r1, r2, yes
        li r3, 100
        halt
    yes:
        li r3, 200
        halt
    """
    machine = Machine(assemble(source))
    machine.run(max_steps=100)
    assert machine.regs[3] == (200 if taken else 100)


MEMORY_CASES = [
    # (store op, load op, value, expected loaded)
    ("sw", "lw", 0xDEADBEEF, 0xDEADBEEF),
    ("sb", "lb", 0xDEADBEEF, 0xEF),
    ("sw", "lb", 0x11223344, 0x44),  # little endian low byte
]


@pytest.mark.parametrize("store,load,value,expected", MEMORY_CASES)
def test_memory_semantics(store, load, value, expected):
    source = f"""
        li r1, 0x600
        li r2, {value & 0x3FFFFF}
        shli r2, r2, 10
        ori r2, r2, {value & 0x3FF}
    """
    # Build the exact 32-bit value: (value >> 10) << 10 | low bits.
    source = f"""
        li r1, 0x600
        li r2, {(value >> 16) & 0xFFFF}
        shli r2, r2, 16
        ori r2, r2, {value & 0xFFFF}
        {store} r2, 4(r1)
        {load} r3, 4(r1)
        halt
    """
    machine = Machine(assemble(source))
    machine.run(max_steps=100)
    assert machine.regs[3] == expected


class TestControlTransfers:
    def test_jmp_forward_and_back(self):
        machine = Machine(assemble("""
            jmp fwd
        back:
            li r1, 3
            halt
        fwd:
            li r1, 2
            jmp back
        """))
        machine.run(max_steps=100)
        assert machine.regs[1] == 3

    def test_jal_links_next_pc(self):
        machine = Machine(assemble("""
            jal f
            halt
        f:
            mov r1, lr
            ret
        """))
        machine.run(max_steps=100)
        assert machine.regs[1] == 4  # address after the jal

    def test_nested_calls_with_stack(self):
        machine = Machine(assemble("""
            li sp, 0x1000
            jal outer
            halt
        outer:
            addi sp, sp, -4
            sw lr, 0(sp)
            jal inner
            lw lr, 0(sp)
            addi sp, sp, 4
            addi r1, r1, 10
            ret
        inner:
            addi r1, r1, 1
            ret
        """))
        machine.run(max_steps=100)
        assert machine.regs[1] == 11

    def test_instret_counts_all(self):
        machine = Machine(assemble("nop\nnop\nhalt"))
        machine.run()
        assert machine.instret == 3
