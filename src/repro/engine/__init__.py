"""Shared experiment-execution subsystem (see ``docs/engine.md``).

Every figure reproduction decomposes into independent, deterministic
simulation windows.  This package turns that observation into
infrastructure: declarative :class:`WindowSpec`s, a content-addressed
on-disk :class:`ResultCache`, a process-pool executor with a serial
deterministic fallback, and structured JSONL run artifacts.
"""

from .artifacts import RunRecorder, WindowRecord
from .cache import ResultCache, default_cache_dir
from .core import (
    ExperimentEngine,
    default_jobs,
    get_engine,
    run_windows,
    set_engine,
)
from .spec import SCHEMA_VERSION, WindowSpec

__all__ = [
    "SCHEMA_VERSION",
    "WindowSpec",
    "ResultCache",
    "default_cache_dir",
    "RunRecorder",
    "WindowRecord",
    "ExperimentEngine",
    "default_jobs",
    "get_engine",
    "run_windows",
    "set_engine",
]
