"""The branch-on-random condition unit: frequency encoding and AND tree.

Section 3.2 of the paper encodes the branch frequency in a 4-bit field
``freq``; the taken probability is ``(1/2)**(freq+1)``, spanning 50%
(``freq = 0``) down to ~0.0015% (``freq = 15``).  Section 3.3 realises
each probability by ANDing ``freq + 1`` bits of the LFSR — "the
probability of x bits being all set to 1 is (1/2)^x" — with a 16-input
mux selecting the desired AND-gate output.

Because LFSR bits are not independent, the paper recommends "ANDing
non-contiguous bits with varied spacing (e.g., selecting bits 0, 2, 5,
and 9 to compute a 6.25% probability)".  Both the naive contiguous
selection and the recommended spaced selection are implemented here so
the Section 4.2 sensitivity analysis can compare them.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from .lfsr import Lfsr

#: Width of the instruction's frequency field (Figure 5).
FREQ_FIELD_BITS = 4

#: Number of encodable frequencies.
FREQ_FIELD_VALUES = 1 << FREQ_FIELD_BITS


class EncodingError(ValueError):
    """Raised for out-of-range frequency fields or intervals."""


def check_field(field: int) -> int:
    """Validate a frequency-field value and return it."""
    if not 0 <= field < FREQ_FIELD_VALUES:
        raise EncodingError(
            f"freq field must be in 0..{FREQ_FIELD_VALUES - 1}, got {field}"
        )
    return field


def probability_of_field(field: int) -> float:
    """Taken probability ``(1/2)**(field+1)`` for an encoded field."""
    return 0.5 ** (check_field(field) + 1)


def interval_of_field(field: int) -> int:
    """Expected interval between taken branches, ``2**(field+1)``."""
    return 1 << (check_field(field) + 1)


def field_for_interval(interval: int) -> int:
    """Field whose expected interval is exactly ``interval``.

    ``interval`` must be a power of two between 2 and ``2**16``; this is
    the mapping used throughout the evaluation, where a counter-based
    sampling interval of ``2**k`` corresponds to field ``k - 1``.
    """
    if interval < 2 or interval & (interval - 1):
        raise EncodingError(
            f"interval must be a power of two >= 2, got {interval}"
        )
    field = interval.bit_length() - 2
    return check_field(field)


def nearest_field(probability: float) -> int:
    """Encodable field whose probability is nearest (in log space)."""
    if not 0.0 < probability <= 0.5:
        raise EncodingError(
            f"probability must be in (0, 0.5], got {probability}"
        )
    import math

    field = round(-math.log2(probability) - 1)
    return max(0, min(FREQ_FIELD_VALUES - 1, int(field)))


# ----------------------------------------------------------------------
# Bit-selection policies
# ----------------------------------------------------------------------

BitPolicy = Callable[[int, int], Tuple[int, ...]]


def contiguous_bits(count: int, width: int) -> Tuple[int, ...]:
    """Select the ``count`` right-most (adjacent) LFSR bits.

    This is the selection the paper warns about: adjacent bits make
    consecutive outcomes correlated (a taken 25% branch is followed by
    a taken 25% branch half the time), though it did not measurably
    hurt the profiling application.
    """
    if count > width:
        raise EncodingError(
            f"cannot AND {count} bits of a {width}-bit LFSR"
        )
    return tuple(range(count))


def spaced_bits(count: int, width: int) -> Tuple[int, ...]:
    """Select ``count`` bits with varied spacing (paper Section 3.3).

    Gaps grow 2, 3, 4, ... as in the paper's example (bits 0, 2, 5, 9
    for a 4-input AND), degrading gracefully toward adjacent placement
    when the register is too narrow to keep the full spacing — which is
    why the paper suggests extending the LFSR to 20 bits.
    """
    if count > width:
        raise EncodingError(
            f"cannot AND {count} bits of a {width}-bit LFSR"
        )
    positions = [0]
    gap = 2
    for index in range(1, count):
        remaining_after = count - 1 - index
        max_position = width - 1 - remaining_after
        candidate = min(positions[-1] + gap, max_position)
        candidate = max(candidate, positions[-1] + 1)
        positions.append(candidate)
        gap += 1
    return tuple(positions)


POLICIES = {
    "contiguous": contiguous_bits,
    "spaced": spaced_bits,
}


def resolve_policy(policy) -> BitPolicy:
    """Accept a policy name or a callable and return the callable."""
    if callable(policy):
        return policy
    try:
        return POLICIES[policy]
    except KeyError:
        raise EncodingError(
            f"unknown bit policy {policy!r}; known: {sorted(POLICIES)}"
        ) from None


# ----------------------------------------------------------------------
# Condition unit
# ----------------------------------------------------------------------


class ConditionUnit:
    """Combinational branch-outcome logic fed by an LFSR (Figure 7).

    The hardware computes all 16 AND-gate outputs in parallel and a
    16-input mux driven by the instruction's freq field selects the
    outcome.  :meth:`all_outputs` models the parallel AND outputs;
    :meth:`evaluate` models the mux selection.  Neither advances the
    LFSR — clocking belongs to the decode pipeline
    (:class:`repro.core.brr.BranchOnRandomUnit`).
    """

    def __init__(self, lfsr: Lfsr, policy="spaced") -> None:
        self.lfsr = lfsr
        self.policy = resolve_policy(policy)
        self._selections: List[Tuple[int, ...]] = [
            self.policy(field + 1, lfsr.width)
            for field in range(FREQ_FIELD_VALUES)
            if field + 1 <= lfsr.width
        ]
        if len(self._selections) < FREQ_FIELD_VALUES:
            raise EncodingError(
                f"a {lfsr.width}-bit LFSR cannot produce all "
                f"{FREQ_FIELD_VALUES} frequencies; need width >= "
                f"{FREQ_FIELD_VALUES}"
            )

    def bit_selection(self, field: int) -> Tuple[int, ...]:
        """LFSR bit positions wired to the AND gate for ``field``."""
        return self._selections[check_field(field)]

    def all_outputs(self) -> List[int]:
        """The 16 parallel AND-gate outputs for the current state."""
        state = self.lfsr.state
        outputs = []
        for selection in self._selections:
            value = 1
            for position in selection:
                value &= (state >> position) & 1
                if not value:
                    break
            outputs.append(value)
        return outputs

    def evaluate(self, field: int) -> bool:
        """Mux selection: is the branch taken for this freq field?"""
        state = self.lfsr.state
        for position in self.bit_selection(field):
            if not (state >> position) & 1:
                return False
        return True
