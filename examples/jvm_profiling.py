#!/usr/bin/env python3
"""Profiling a JVM workload with the three sampling frameworks.

The paper's motivating scenario: a virtual machine wants a method
invocation profile of optimized code without paying for full
instrumentation.  This example compiles the ``jython``-style workload
(tight interpreter loops alternating two leaf methods) under the
Arnold-Ryder framework with (a) a software counter, (b) the
deterministic hardware counter and (c) branch-on-random, runs each on
the functional simulator, and compares the sampled profiles against
the full profile with the paper's overlap metric — exposing the
footnote-7 resonance that only branch-on-random avoids.

Run:  python examples/jvm_profiling.py
"""

from repro.core import BranchOnRandomUnit, HardwareCounterUnit
from repro.jvm import build_jython, compile_program
from repro.profiles import Profile, overlap_accuracy
from repro.sim import Machine

INTERVAL = 16  # high rate so the small example collects enough samples


def run_variant(jvm, variant, kind=None, unit=None):
    compiled = compile_program(jvm, variant=variant, kind=kind,
                               interval=INTERVAL)
    machine = Machine(compiled.program, brr_unit=unit)
    machine.run(max_steps=20_000_000)
    return Profile(compiled.read_profile(machine))


def main() -> None:
    jvm = build_jython(2.0)
    print(f"workload: {len(jvm.methods)} methods, "
          f"{sum(jvm.static_invocations().values())} invocations")

    full = run_variant(jvm, "full")
    print("\nfull profile (top 5 methods):")
    for name, fraction in full.top(5):
        print(f"  {name:<16} {100 * fraction:5.1f}%")

    schemes = {
        "software counter": run_variant(jvm, "no-dup", kind="cbs"),
        "hardware counter": run_variant(jvm, "no-dup", kind="brr",
                                        unit=HardwareCounterUnit()),
        "branch-on-random": run_variant(jvm, "no-dup", kind="brr",
                                        unit=BranchOnRandomUnit()),
    }

    print(f"\nsampled at 1/{INTERVAL} (overlap accuracy vs. full profile):")
    for label, profile in schemes.items():
        accuracy = overlap_accuracy(full, profile)
        a = profile.count("jython_opA")
        b = profile.count("jython_opB")
        print(f"  {label:<18} accuracy {accuracy:5.1f}%  "
              f"({profile.total} samples; opA/opB = {a}/{b})")

    print("\nThe counters sample the alternating opA/opB loop at a fixed "
          "parity,\nso one leaf is systematically missed (footnote 7); "
          "branch-on-random\nsamples both.")


if __name__ == "__main__":
    main()
