"""The reproduction scorecard: every headline claim, one verdict each.

Runs a compact version of the whole evaluation and grades the paper's
load-bearing claims PASS/FAIL.  This is the one-command answer to "did
the reproduction work?" — `python -m repro scorecard`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Tuple


@dataclass
class ClaimResult:
    claim: str
    passed: bool
    detail: str
    seconds: float

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def _check_figure6() -> Tuple[bool, str]:
    from ..core.lfsr import Lfsr
    from ..core.taps import FIGURE6_TAPS

    expected = [0b0001, 0b1000, 0b0100, 0b0010, 0b1001, 0b1100, 0b0110,
                0b1011, 0b0101, 0b1010, 0b1101, 0b1110, 0b1111, 0b0111,
                0b0011]
    got = list(Lfsr(4, taps=FIGURE6_TAPS, seed=1).sequence(15))
    return got == expected, "bit-exact Figure 6 sequence"


def _check_frequency_encoding() -> Tuple[bool, str]:
    from ..core.brr import BranchOnRandomUnit, measured_probability
    from ..core.condition import probability_of_field

    field = 3  # 1/16
    measured = measured_probability(BranchOnRandomUnit(), field, 1 << 15)
    expected = probability_of_field(field)
    ok = abs(measured - expected) < 0.2 * expected
    return ok, f"field {field}: measured {measured:.4f} vs {expected:.4f}"


def _check_hardware_cost() -> Tuple[bool, str]:
    from ..core.cost import claims_hold, paper_design_points

    single, wide = paper_design_points()
    return claims_hold(), (
        f"single-issue {single.state_bits}b/{single.gates_macro}g, "
        f"4-wide {wide.state_bits}b/{wide.gates_macro}g"
    )


def _check_accuracy_resonance(scale: float) -> Tuple[bool, str]:
    from ..engine import is_failure, run_windows
    from ..workloads.registry import get_workload
    from .accuracy import SCHEMES, accuracy_window_spec

    spec = accuracy_window_spec(get_workload("jython").spec, 1 << 10, SCHEMES,
                                scale, seed=0)
    payload = run_windows([spec])[0]
    if is_failure(payload):
        return False, f"window skipped after failures: {payload.error}"
    result = payload["schemes"]
    gap = result["random"]["accuracy"] - max(result["sw"]["accuracy"],
                                             result["hw"]["accuracy"])
    return gap > 3.0, (
        f"jython: random {result['random']['accuracy']:.1f}% vs counters "
        f"{result['sw']['accuracy']:.1f}/{result['hw']['accuracy']:.1f}% "
        f"(gap {gap:+.1f}, paper ~+7)"
    )


def _check_trap_equivalence() -> Tuple[bool, str]:
    from ..core.brr import BranchOnRandomUnit
    from ..core.lfsr import Lfsr
    from ..isa.asm import assemble
    from ..sim.machine import Machine
    from ..sim.trap import BrrTrapEmulator

    source = """
        li r1, 512
        li r2, 0
    loop:
        brr 1/4, hit
    back:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    hit:
        addi r2, r2, 1
        jmp back
    """
    native = Machine(assemble(source),
                     brr_unit=BranchOnRandomUnit(Lfsr(20, seed=42)))
    native.run(max_steps=100_000)
    trapped = Machine(assemble(source, brr_mode="trap"))
    BrrTrapEmulator(unit=BranchOnRandomUnit(Lfsr(20, seed=42))).install(trapped)
    trapped.run(max_steps=100_000)
    ok = native.regs[2] == trapped.regs[2]
    return ok, f"native {native.regs[2]} == emulated {trapped.regs[2]} samples"


def _check_per_site_gap(n_chars: int) -> Tuple[bool, str]:
    from .fig13 import microbench_sweep

    sweep = microbench_sweep(n_chars=n_chars, intervals=(1024,),
                             include_payload_variants=False)
    cbs = sweep.series("cbs", "full-dup", False)[0].cycles_per_site
    brr = sweep.series("brr", "full-dup", False)[0].cycles_per_site
    ratio = cbs / max(1e-9, brr)
    ok = ratio >= 8.0 and brr < 0.35
    return ok, (
        f"full-dup @1024: cbs {cbs:.3f} vs brr {brr:.3f} cycles/site "
        f"({ratio:.1f}x; paper: 10-20x, brr ~0.1)"
    )


def _check_jvm_overhead(scale: float) -> Tuple[bool, str]:
    from .fig12 import figure12

    rows = figure12(scale=scale)
    average = rows[-1]
    ok = (2.0 <= average.cbs_overhead <= 12.0
          and average.brr_overhead < average.cbs_overhead / 2)
    return ok, (
        f"JVM avg: cbs {average.cbs_overhead:.2f}% vs brr "
        f"{average.brr_overhead:.2f}% (paper: ~5% vs 0.64%)"
    )


def _check_sampled_estimation(n_chars: int) -> Tuple[bool, str]:
    from ..stats import SamplingPlan
    from .fig13 import microbench_population, microbench_sweep

    intervals = (8, 64, 512)
    exhaustive = microbench_sweep(n_chars=n_chars, intervals=intervals,
                                  include_payload_variants=False)
    plan = SamplingPlan(mode="fraction", fraction=0.5, seed=0)
    sampled = microbench_sweep(n_chars=n_chars, intervals=intervals,
                               include_payload_variants=False, plan=plan)
    population = microbench_population(n_chars=n_chars, intervals=intervals,
                                       include_payload_variants=False)
    if sampled.sampling is None:
        return False, "sampled sweep carried no sampling summary"
    summary = sampled.sampling
    if summary.windows_run >= population.n_windows:
        return False, (f"plan ran all {summary.windows_run} windows; "
                       "nothing was actually sampled")
    exact = {(p.kind, p.duplication, p.with_payload, p.interval): p.overhead
             for p in exhaustive.points}
    for point in sampled.points:
        key = (point.kind, point.duplication, point.with_payload,
               point.interval)
        if point.overhead != exact[key]:
            return False, f"sampled point {key} diverged from exhaustive"
    covered = 0
    for (kind, duplication) in (("cbs", "no-dup"), ("cbs", "full-dup"),
                                ("brr", "no-dup"), ("brr", "full-dup")):
        name = f"{kind}/{duplication}/plain overhead %"
        estimate = summary.estimates.get(name)
        series = exhaustive.series(kind, duplication, False)
        true_mean = sum(p.overhead for p in series) / len(series)
        if estimate is None or not estimate.covers(true_mean):
            return False, f"{name} CI missed exhaustive mean {true_mean:.2f}"
        covered += 1
    return True, (
        f"fraction:0.5 ran {summary.windows_run}/{population.n_windows} "
        f"windows; all sampled points exact, {covered}/4 curve CIs cover "
        "the exhaustive means"
    )


#: A scorecard check: (claim text, callable returning (passed, detail)).
Check = Tuple[str, Callable[[], Tuple[bool, str]]]


def default_checks(quick: bool = True) -> List[Check]:
    """Every headline claim at ``quick`` or full evaluation scale."""
    accuracy_scale = 0.01 if quick else 0.05
    jvm_scale = 2.0 if quick else 3.0
    n_chars = 2500 if quick else 4000
    return [
        ("Figure 6: LFSR walks the published sequence", _check_figure6),
        ("§3.2: brr frequency converges to (1/2)^(f+1)",
         _check_frequency_encoding),
        ("§3.3: 20 bits/<100 gates; <100 bits/<400 gates (4-wide)",
         _check_hardware_cost),
        ("§4.1: SIGILL emulation is exactly equivalent to native brr",
         _check_trap_equivalence),
        ("Figures 9/10: brr avoids the counters' jython resonance",
         lambda: _check_accuracy_resonance(accuracy_scale)),
        ("Figure 14: order-of-magnitude per-site gap, ~0.1 cycle floor",
         lambda: _check_per_site_gap(n_chars)),
        ("Figure 12: brr far below counter-based on the JVM workloads",
         lambda: _check_jvm_overhead(jvm_scale)),
        ("Sampled estimation: planned subsets reproduce exhaustive "
         "figures within their CIs",
         lambda: _check_sampled_estimation(n_chars=1200 if quick else 2500)),
    ]


def run_scorecard(quick: bool = True,
                  checks: "List[Check] | None" = None) -> List[ClaimResult]:
    """Run all claims; ``quick`` trades precision for ~1 minute total.

    ``checks`` substitutes a custom claim list — used by the tests to
    grade deliberately broken configurations.
    """
    if checks is None:
        checks = default_checks(quick)
    results = []
    for claim, check in checks:
        started = time.time()
        try:
            passed, detail = check()
        except Exception as exc:  # a crash is a failed claim
            passed, detail = False, f"crashed: {exc!r}"
        results.append(ClaimResult(claim, passed, detail,
                                   time.time() - started))
    return results


def scorecard_failed(results: List[ClaimResult]) -> bool:
    """True when any headline claim failed — the CLI turns this into a
    non-zero exit code so CI can gate on the scorecard."""
    return any(not result.passed for result in results)


def format_scorecard(results: List[ClaimResult]) -> str:
    lines = ["Branch-on-Random reproduction scorecard",
             "=" * 62]
    for result in results:
        verdict = "PASS" if result.passed else "FAIL"
        lines.append(f"[{verdict}] {result.claim}")
        lines.append(f"       {result.detail}  ({result.seconds:.1f}s)")
    passed = sum(r.passed for r in results)
    lines.append("=" * 62)
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
