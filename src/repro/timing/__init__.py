"""Cycle-level out-of-order timing simulation (Section 5.1 machine)."""

from .caches import Cache, Hierarchy
from .config import NAIVE_BRR_CONFIG, PAPER_CONFIG, TimingConfig
from .cosim import CoSimulator, CosimDivergence, ReplayUnit
from .fastpath import (
    FastPathUnsupported,
    fastpath_enabled,
    fastpath_override,
    run_fastpath,
)
from .pipeline import TimingSimulator, TimingStats
from .report import compare, format_stats
from .predictors import (
    Bimodal,
    Btb,
    Gshare,
    ReturnAddressStack,
    Tournament,
    TwoBitTable,
)
from .runner import (
    WindowResult,
    cycles_per_site,
    overhead_percent,
    record_window,
    replay_window,
    time_program,
    time_window,
)

__all__ = [
    "Cache",
    "Hierarchy",
    "CoSimulator",
    "CosimDivergence",
    "ReplayUnit",
    "FastPathUnsupported",
    "fastpath_enabled",
    "fastpath_override",
    "run_fastpath",
    "compare",
    "format_stats",
    "NAIVE_BRR_CONFIG",
    "PAPER_CONFIG",
    "TimingConfig",
    "TimingSimulator",
    "TimingStats",
    "Bimodal",
    "Btb",
    "Gshare",
    "ReturnAddressStack",
    "Tournament",
    "TwoBitTable",
    "WindowResult",
    "cycles_per_site",
    "overhead_percent",
    "record_window",
    "replay_window",
    "time_program",
    "time_window",
]
