"""The resilience surface of ``repro serve``.

Production-hardening contract (``docs/serve.md``, "Operating the
service"): per-request deadlines abandon the *wait*, never the shared
coalesced computation — the result still lands in the tiered cache;
admission control sheds overload as HTTP 503 with ``Retry-After`` and
per-tenant fairness counters; graceful drain finishes in-flight work,
flushes the stores and refuses new requests; a hung server thread is a
raised :class:`ShutdownLeak`, not a silent leak.
"""

import asyncio
import json
import logging
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import EngineConfig, ExperimentEngine, ResultCache
from repro.serve import (
    DeadlineExceeded,
    RequestError,
    ServerThread,
    Shed,
    ShutdownLeak,
    SimulationService,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCALE = 150  # characters: ~seconds per uncached simulation


def _engine(tmp_path, name="cache"):
    return ExperimentEngine(
        config=EngineConfig(jobs=1),
        cache=ResultCache(tmp_path / name, backend=None))


def _service(tmp_path, **kwargs):
    return SimulationService(engine=_engine(tmp_path), **kwargs)


def _slow(service):
    """Replace the service's simulation with one gated on an event, so
    tests control exactly when the computation finishes."""
    release = threading.Event()
    started = threading.Event()
    real = service._run_sync

    def gated(command, params):
        started.set()
        if not release.wait(timeout=30):
            raise RuntimeError("test never released the simulation")
        return real(command, params)

    service._run_sync = gated
    return started, release


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def _get(server, path, timeout=120):
    return urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}", timeout=timeout)


def _post(server, path, document=None, headers=None, timeout=120):
    body = b"" if document is None else json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", data=body,
        headers=dict({"Content-Type": "application/json"}, **(headers or {})),
        method="POST")
    return urllib.request.urlopen(request, timeout=timeout)


# ----------------------------------------------------------------------
# Deadlines.


class TestDeadlines:
    def test_resolve_timeout_validates_and_caps(self, tmp_path):
        service = _service(tmp_path, default_timeout=5.0, max_timeout=10.0)
        assert service.resolve_timeout(None) == 5.0
        assert service.resolve_timeout("3") == 3.0
        assert service.resolve_timeout(3) == 3.0
        assert service.resolve_timeout(99) == 10.0  # capped
        for bad in ("soon", "", -1, 0, "0"):
            with pytest.raises(RequestError):
                service.resolve_timeout(bad)

    def test_no_default_means_no_deadline(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TIMEOUT", raising=False)
        service = _service(tmp_path)
        assert service.resolve_timeout(None) is None

    def test_timeout_env_sets_the_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT", "2.5")
        assert _service(tmp_path).resolve_timeout(None) == 2.5

    def test_deadline_abandons_wait_not_computation(self, tmp_path):
        """The regression the tentpole names: a timed-out waiter must
        NOT cancel the shared in-flight future, and the result must
        still land in the engine cache."""
        service = _service(tmp_path)
        started, release = _slow(service)

        async def scenario():
            with pytest.raises(DeadlineExceeded):
                await service.submit("figure13", {"scale": SCALE},
                                     timeout=0.1)
            # The computation survived its abandoned waiter.
            assert len(service._inflight) == 1
            shared = next(iter(service._inflight.values()))
            assert not shared.cancelled()
            release.set()
            result = await asyncio.wait_for(asyncio.shield(shared), 180)
            assert result.command == "figure13"

        _run(scenario())
        assert started.is_set()
        assert service.counters.deadline_exceeded == 1
        assert service.counters.simulations == 1
        assert service._inflight == {}
        # ... and its windows landed in the cache: a warm engine over
        # the same root replays the figure without a single miss.
        warm = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "cache", backend=None))
        from repro import api
        api.run_figure13(scale=SCALE, engine=warm)
        assert warm.cache.misses == 0
        assert warm.cache.hits > 0

    def test_deadline_leaves_coalesced_waiters_unharmed(self, tmp_path):
        service = _service(tmp_path)
        _started, release = _slow(service)

        async def scenario():
            patient = asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}))
            await asyncio.sleep(0.05)
            with pytest.raises(DeadlineExceeded):
                await service.submit("figure13", {"scale": SCALE},
                                     timeout=0.1)
            release.set()
            return await asyncio.wait_for(patient, 180)

        result = _run(scenario())
        assert result.data is not None
        assert service.counters.simulations == 1
        assert service.counters.coalesced == 1
        assert service.counters.deadline_exceeded == 1

    def test_http_deadline_is_504(self, tmp_path):
        service = _service(tmp_path)
        _started, release = _slow(service)
        try:
            with ServerThread(service) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(server,
                         f"/v1/figure/figure13?scale={SCALE}&timeout=0.1")
                assert excinfo.value.code == 504
                assert "deadline" in json.loads(excinfo.value.read())["error"]
                release.set()
        finally:
            release.set()

    def test_http_bad_timeout_is_400(self, tmp_path):
        with ServerThread(_service(tmp_path)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, f"/v1/figure/figure13?scale={SCALE}&timeout=nope")
            assert excinfo.value.code == 400
        assert server.service.counters.rejected == 1
        assert server.service.counters.simulations == 0

    def test_timeout_never_reaches_the_coalescing_key(self, tmp_path):
        """``timeout`` is transport-level: two requests differing only
        in deadline must still coalesce (same key, one simulation)."""
        with ServerThread(_service(tmp_path)) as server:
            a = _get(server,
                     f"/v1/figure/figure13?scale={SCALE}&timeout=30").read()
            b = _post(server, "/v1/figure",
                      {"command": "figure13", "params": {"scale": SCALE},
                       "timeout": 60}).read()
        assert a == b
        assert server.service.counters.simulations == 2  # sequential
        for params in (json.loads(a)["params"], json.loads(b)["params"]):
            assert "timeout" not in params


# ----------------------------------------------------------------------
# Coalesced-waiter cancellation (satellite regression test).


class TestWaiterCancellation:
    def test_cancelling_one_of_n_waiters_cancels_nothing_shared(
            self, tmp_path):
        service = _service(tmp_path)
        _started, release = _slow(service)

        async def scenario():
            waiters = [asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}))
                for _ in range(3)]
            await asyncio.sleep(0.05)  # all three attach to one future
            waiters[0].cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiters[0]
            # The shared computation is still in flight, un-cancelled.
            assert len(service._inflight) == 1
            assert not next(iter(service._inflight.values())).cancelled()
            release.set()
            return await asyncio.gather(*waiters[1:])

        survivors = _run(scenario())
        assert len(survivors) == 2
        documents = {json.dumps(r.document(), sort_keys=True)
                     for r in survivors}
        assert len(documents) == 1
        assert service.counters.simulations == 1
        assert service._inflight == {}  # the future did not leak

    def test_every_waiter_abandoning_still_completes_the_simulation(
            self, tmp_path):
        """Even with zero remaining waiters the computation finishes
        and the in-flight slot is reclaimed (no 'exception never
        retrieved' noise, no leak)."""
        service = _service(tmp_path)
        started, release = _slow(service)

        async def scenario():
            with pytest.raises(DeadlineExceeded):
                await service.submit("figure13", {"scale": SCALE},
                                     timeout=0.05)
            release.set()
            deadline = time.monotonic() + 180  # loaded CI boxes are slow
            while service._inflight and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            assert service._inflight == {}

        _run(scenario())
        assert started.is_set()
        assert service.counters.simulations == 1


# ----------------------------------------------------------------------
# Admission control / load shedding.


class TestShedding:
    def test_queue_limit_sheds_the_overflow(self, tmp_path):
        service = _service(tmp_path, queue_limit=2)
        _started, release = _slow(service)

        async def scenario():
            admitted = [asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}))
                for _ in range(2)]
            await asyncio.sleep(0.05)
            with pytest.raises(Shed) as excinfo:
                await service.submit("figure13", {"scale": SCALE})
            assert "queue full" in str(excinfo.value)
            assert excinfo.value.retry_after > 0
            release.set()
            await asyncio.gather(*admitted)

        _run(scenario())
        assert service.counters.shed == 1
        assert service.counters.requests == 2  # shed never counts as served

    def test_tenant_quota_is_per_tenant(self, tmp_path):
        service = _service(tmp_path, queue_limit=16, tenant_quota=1)
        _started, release = _slow(service)

        async def scenario():
            first = asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}, tenant="alice"))
            await asyncio.sleep(0.05)
            with pytest.raises(Shed, match="over quota"):
                await service.submit("figure14", {"scale": SCALE},
                                     tenant="alice")
            # A different tenant is unaffected by alice's quota.
            other = asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}, tenant="bob"))
            await asyncio.sleep(0.05)
            release.set()
            await asyncio.gather(first, other)

        _run(scenario())
        tenants = service.stats()["tenants"]
        assert tenants["alice"] == {"requests": 1, "shed": 1, "active": 0}
        assert tenants["bob"] == {"requests": 1, "shed": 0, "active": 0}

    def test_http_shed_is_503_with_retry_after(self, tmp_path):
        service = _service(tmp_path, queue_limit=0)  # refuse everything
        with ServerThread(service) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, f"/v1/figure/figure13?scale={SCALE}")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert "queue full" in body["error"]
            assert body["retry_after"] == 1.0
            stats = json.loads(_get(server, "/statsz").read())
        assert stats["serve"]["shed"] == 1
        assert stats["tenants"]["anonymous"]["shed"] == 1

    def test_tenant_header_reaches_the_fairness_counters(self, tmp_path):
        with ServerThread(_service(tmp_path)) as server:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}"
                f"/v1/figure/figure13?scale={SCALE}",
                headers={"X-Repro-Tenant": "team-a"})
            urllib.request.urlopen(request, timeout=120).read()
            stats = json.loads(_get(server, "/statsz").read())
        assert stats["tenants"]["team-a"]["requests"] == 1
        assert stats["tenants"]["team-a"]["active"] == 0

    def test_statsz_reports_limits_and_draining_flag(self, tmp_path):
        service = _service(tmp_path, queue_limit=3, tenant_quota=2,
                           default_timeout=7.0, max_timeout=70.0)
        with ServerThread(service) as server:
            stats = json.loads(_get(server, "/statsz").read())
        assert stats["limits"] == {
            "queue": 3, "tenant_quota": 2, "default_timeout": 7.0,
            "max_timeout": 70.0, "drain_timeout": service.drain_timeout}
        assert stats["serve"]["draining"] is False
        assert stats["breaker"] is None  # no breaker-wrapped backend

    def test_statsz_surfaces_breaker_telemetry(self, tmp_path):
        from repro.store import CircuitBreakerBackend, FilesystemBackend

        backend = CircuitBreakerBackend(
            FilesystemBackend(tmp_path / "shared"))
        engine = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "cache", backend=backend))
        with ServerThread(SimulationService(engine=engine)) as server:
            stats = json.loads(_get(server, "/statsz").read())
        assert stats["breaker"]["state"] == "closed"
        assert set(stats["breaker"]) >= {"opens", "closes", "fast_failed",
                                         "timeouts", "transitions"}


# ----------------------------------------------------------------------
# Graceful drain.


class TestDrain:
    def test_drain_finishes_inflight_then_refuses_new_work(self, tmp_path):
        service = _service(tmp_path)
        _started, release = _slow(service)

        async def scenario():
            inflight = asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}))
            await asyncio.sleep(0.05)
            drain = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            assert service.draining
            with pytest.raises(Shed) as excinfo:
                await service.submit("figure14", {"scale": SCALE})
            assert "draining" in str(excinfo.value)
            assert excinfo.value.retry_after == 5.0
            release.set()
            report = await drain
            result = await inflight
            return report, result

        report, result = _run(scenario())
        assert result.data is not None  # in-flight request completed
        assert report["drained"] is True
        assert report["inflight_completed"] == 1
        assert report["inflight_cancelled"] == 0
        assert set(report["flushed"]) == {"results", "traces"}

    def test_drain_is_idempotent(self, tmp_path):
        service = _service(tmp_path)

        async def scenario():
            first = await service.drain()
            second = await service.drain()
            assert second is first

        _run(scenario())

    def test_drain_cancels_stragglers_after_its_timeout(self, tmp_path):
        service = _service(tmp_path, drain_timeout=0.1)
        _started, release = _slow(service)

        async def scenario():
            hung = asyncio.ensure_future(
                service.submit("figure13", {"scale": SCALE}))
            await asyncio.sleep(0.05)
            report = await service.drain()
            release.set()  # free the worker thread
            with pytest.raises(asyncio.CancelledError):
                await hung
            return report

        report = _run(scenario())
        assert report["inflight_completed"] == 0
        assert report["inflight_cancelled"] == 1

    def test_http_drain_route(self, tmp_path):
        with ServerThread(_service(tmp_path)) as server:
            _get(server, f"/v1/figure/figure13?scale={SCALE}").read()
            with _post(server, "/v1/admin/drain") as response:
                assert response.status == 200
                report = json.loads(response.read())
            assert report["drained"] is True
            # Post-drain, requests shed with 503 + Retry-After.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, f"/v1/figure/figure13?scale={SCALE}")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "5"
            stats = json.loads(_get(server, "/statsz").read())
            assert stats["serve"]["draining"] is True

    def test_http_drain_is_get_405(self, tmp_path):
        with ServerThread(_service(tmp_path)) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/v1/admin/drain")
            assert excinfo.value.code == 405

    def test_warm_restart_after_drain_runs_zero_windows(self, tmp_path):
        """Drain flushed everything the first server computed; a
        restarted server over the same cache root answers the same
        request without recomputing a single window."""
        with ServerThread(_service(tmp_path)) as server:
            before = _get(server,
                          f"/v1/figure/figure13?scale={SCALE}").read()
            server.drain()
        warm_engine = _engine(tmp_path)
        with ServerThread(SimulationService(engine=warm_engine)) as server:
            after = _get(server, f"/v1/figure/figure13?scale={SCALE}").read()
        assert after == before
        assert warm_engine.cache.misses == 0
        assert warm_engine.cache.hits > 0


# ----------------------------------------------------------------------
# Shutdown-leak detection (satellite: no more silent returns).


class TestShutdownLeak:
    def test_hung_loop_raises_and_logs(self, tmp_path, caplog):
        server = ServerThread(_service(tmp_path)).start()
        # Wedge the event loop so stop()'s loop.stop callback starves.
        server._loop.call_soon_threadsafe(time.sleep, 1.5)
        time.sleep(0.1)  # let the wedge start running
        thread = server._thread
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            with pytest.raises(ShutdownLeak, match="failed to stop"):
                server.stop(join_timeout=0.2)
        assert "leaked" in caplog.text
        # Once the wedge clears, the queued loop.stop runs and the
        # thread exits — the test must not leak it across the suite.
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_clean_stop_neither_raises_nor_logs(self, tmp_path, caplog):
        server = ServerThread(_service(tmp_path)).start()
        with caplog.at_level(logging.WARNING, logger="repro.serve"):
            server.stop()
        assert caplog.text == ""
        assert server._thread is None


# ----------------------------------------------------------------------
# The CLI: SIGTERM means drain-and-exit-0.


class TestCliSigterm:
    def test_sigterm_drains_cleanly_and_exits_zero(self, tmp_path):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO_ROOT / "src"),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stderr=subprocess.PIPE, stdout=subprocess.DEVNULL,
            env=env, cwd=str(tmp_path), text=True)
        try:
            banner = process.stderr.readline()
            assert "listening on http://" in banner
            process.send_signal(signal.SIGTERM)
            remainder = process.stderr.read()
            code = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert code == 0
        assert "[serve: drained cleanly]" in remainder
