"""Byte-addressed little-endian memory for the functional simulator."""

from __future__ import annotations

from ..isa.instructions import WORD
from ..isa.program import Program


class MemoryError_(Exception):
    """Out-of-range or misaligned memory access."""


class Memory:
    """A flat byte-addressed memory image.

    Words are 32-bit little-endian.  All accesses are bounds checked;
    word accesses must be aligned, matching the hardware the timing
    model assumes.
    """

    def __init__(self, size: int = 1 << 20) -> None:
        if size <= 0 or size % WORD:
            raise ValueError(f"memory size must be a positive multiple of {WORD}")
        self.size = size
        self._bytes = bytearray(size)

    def _check(self, addr: int, width: int) -> None:
        if not 0 <= addr <= self.size - width:
            raise MemoryError_(
                f"access of {width} bytes at {addr:#x} outside memory of "
                f"size {self.size:#x}"
            )

    def load_byte(self, addr: int) -> int:
        self._check(addr, 1)
        return self._bytes[addr]

    def store_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._bytes[addr] = value & 0xFF

    def load_word(self, addr: int) -> int:
        self._check(addr, WORD)
        if addr % WORD:
            raise MemoryError_(f"misaligned word load at {addr:#x}")
        return int.from_bytes(self._bytes[addr:addr + WORD], "little")

    def store_word(self, addr: int, value: int) -> None:
        self._check(addr, WORD)
        if addr % WORD:
            raise MemoryError_(f"misaligned word store at {addr:#x}")
        self._bytes[addr:addr + WORD] = (value & 0xFFFFFFFF).to_bytes(WORD, "little")

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk initialisation (e.g. the microbenchmark's text buffer)."""
        self._check(addr, max(len(data), 1))
        self._bytes[addr:addr + len(data)] = data

    def read_bytes(self, addr: int, length: int) -> bytes:
        self._check(addr, max(length, 1))
        return bytes(self._bytes[addr:addr + length])

    def load_program(self, program: Program) -> None:
        """Copy an assembled image into memory at its base address."""
        end = program.base + program.size_bytes
        if end > self.size:
            raise MemoryError_(
                f"program image ends at {end:#x}, beyond memory size "
                f"{self.size:#x}"
            )
        for index, word in enumerate(program.words):
            self.store_word(program.base + index * WORD, word)
