"""End-to-end integrity layer: checksums, quarantine, validation.

The engine trusts three kinds of on-disk state — recorded BRTR traces,
cached window payloads, and JSONL run ledgers — plus one runtime
shortcut, the batched fast-path timing kernel.  This module owns the
policies and shared machinery that keep all four honest
(``docs/integrity.md``):

* **policies** — every store runs under one of
  :data:`INTEGRITY_POLICIES`: ``verify`` (checksum on read, corrupt
  entries are quarantined and raise :class:`IntegrityError`),
  ``repair`` (the default: checksum on read, corrupt entries are
  quarantined and transparently re-recorded / recomputed), ``trust``
  (skip checksum verification — structural parsing still applies);
* **quarantine** — a corrupt entry is never deleted: it is moved to
  ``<store root>/quarantine/`` next to a machine-readable
  ``<name>.reason.json`` describing what failed, so corruption is
  auditable after the fact (``repro doctor`` scans it);
* **validation watchdog** — ``REPRO_VALIDATE=n`` /
  :attr:`~repro.engine.config.EngineConfig.validate_every` re-times
  every *n*-th fast-path replay with the golden lock-step model and
  compares the :class:`~repro.timing.pipeline.TimingStats` field by
  field; :data:`VALIDATE_POLICIES` decides what a divergence becomes
  (``warn`` — keep the fast stats and log, ``fallback`` — the default,
  return the golden stats, ``raise`` — abort the run).

The store-level primitives — policies, quarantine, payload digests,
per-store counters — moved to :mod:`repro.store.integrity` with the
tiered-store refactor; they are re-exported here unchanged so
engine-level callers and tests keep importing them from
``repro.engine``.  What remains native to this module is the
engine-side machinery: ledger CRCs, the validation watchdog, and
``repro doctor``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..store.integrity import (  # noqa: F401 - re-exported surface
    INTEGRITY_POLICIES,
    QUARANTINE_DIR,
    REASON_SUFFIX,
    IntegrityCounters,
    IntegrityError,
    check_policy,
    integrity_policy_from_env,
    payload_digest,
    purge_quarantine,
    quarantine_entry,
    quarantine_root,
    quarantined_entries,
)

#: What a fast-path validation divergence becomes.
VALIDATE_POLICIES = ("warn", "fallback", "raise")


class ValidationDivergence(IntegrityError):
    """The fast-path kernel diverged from the golden lock-step model
    under validation policy ``raise``."""


# ----------------------------------------------------------------------
# Fast-path validation watchdog.


@dataclass(frozen=True)
class ValidationSettings:
    """Resolved watchdog configuration installed around execution."""

    #: Validate every n-th fast-path replay; ``None``/0 disables.
    every: Optional[int] = None
    #: One of :data:`VALIDATE_POLICIES`.
    policy: str = "fallback"

    @property
    def enabled(self) -> bool:
        return bool(self.every)


def validate_every_from_env() -> Optional[int]:
    raw = os.environ.get("REPRO_VALIDATE")
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def validate_policy_from_env() -> str:
    policy = os.environ.get("REPRO_VALIDATE_POLICY", "fallback")
    return policy if policy in VALIDATE_POLICIES else "fallback"


# The active watchdog travels as module state for the same reason the
# trace store does (repro.engine.tracestore): replay happens deep
# inside window runners, possibly in a pool worker, and threading a
# parameter through every signature would couple the whole timing
# layer to the engine.  The counter is per-process: with REPRO_VALIDATE=n
# each worker independently validates its own every n-th fast replay.
_settings = ValidationSettings(every=None)
_replay_counter = 0


def get_validation_settings() -> ValidationSettings:
    return _settings


def set_validation_settings(
        settings: Optional[ValidationSettings]) -> ValidationSettings:
    """Install watchdog settings; returns the previous ones.  ``None``
    re-resolves from the environment (the library default)."""
    global _settings, _replay_counter
    previous = _settings
    if settings is None:
        settings = ValidationSettings(every=validate_every_from_env(),
                                      policy=validate_policy_from_env())
    if settings.policy not in VALIDATE_POLICIES:
        raise ValueError(
            f"validate policy must be one of {VALIDATE_POLICIES}, "
            f"got {settings.policy!r}")
    _settings = settings
    _replay_counter = 0
    return previous


@contextlib.contextmanager
def validation_override(
        settings: Optional[ValidationSettings]) -> Iterator[None]:
    previous = set_validation_settings(settings)
    try:
        yield
    finally:
        set_validation_settings(previous)


def take_validation_ticket() -> bool:
    """True when the current fast-path replay should be cross-checked
    against the golden model (every n-th one, counted per process)."""
    global _replay_counter
    if not _settings.enabled:
        return False
    _replay_counter += 1
    return _replay_counter % _settings.every == 0  # type: ignore[operator]


def compare_stats(fast: Any, golden: Any) -> List[Dict[str, Any]]:
    """Field-by-field comparison of two ``TimingStats``; returns one
    ``{"field", "fast", "golden"}`` entry per diverging counter."""
    from ..timing.pipeline import _STATS_FIELD_NAMES

    return [
        {"field": name, "fast": getattr(fast, name),
         "golden": getattr(golden, name)}
        for name in _STATS_FIELD_NAMES
        if getattr(fast, name) != getattr(golden, name)
    ]


# ----------------------------------------------------------------------
# Ledger (JSONL) line checksums.


def ledger_line_crc(payload: Dict[str, Any]) -> int:
    """CRC32 of a ledger record's canonical serialisation (the value
    of the line's ``crc`` field; computed with ``crc`` absent)."""
    import zlib

    blob = json.dumps({k: v for k, v in payload.items() if k != "crc"},
                      sort_keys=True)
    return zlib.crc32(blob.encode("utf-8"))


def check_ledger_line(obj: Dict[str, Any]) -> str:
    """Classify one parsed ledger record: ``ok`` (crc matches),
    ``legacy`` (no crc field — pre-integrity ledgers stay readable),
    or ``corrupt`` (crc mismatch: the line was bit-rotted in place)."""
    if "crc" not in obj:
        return "legacy"
    return "ok" if obj["crc"] == ledger_line_crc(obj) else "corrupt"


@dataclass
class LedgerReport:
    """What reading a JSONL ledger back found, line by line."""

    path: str
    lines: int = 0
    ok: int = 0
    legacy: int = 0
    #: Unparseable lines — a torn tail from a killed run, usually.
    torn: int = 0
    #: Parseable lines whose crc no longer matches (bit rot).
    corrupt: int = 0

    @property
    def bad(self) -> int:
        return self.torn + self.corrupt

    def as_dict(self) -> Dict[str, Any]:
        return dict(dataclasses.asdict(self), bad=self.bad)


# ----------------------------------------------------------------------
# `repro doctor`: scan everything, report, optionally repair.


def scan_ledger(path, repair: bool = False) -> LedgerReport:
    """Verify a JSONL run ledger line by line.

    With ``repair``, the file is atomically rewritten with only the
    intact lines (dropping the torn tail and any bit-rotted line), so
    a later ``repro resume`` never has to re-tolerate them.
    """
    path = pathlib.Path(path)
    report = LedgerReport(path=str(path))
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return report
    kept: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        report.lines += 1
        try:
            obj = json.loads(stripped)
        except ValueError:
            report.torn += 1
            continue
        if not isinstance(obj, dict):
            report.torn += 1
            continue
        status = check_ledger_line(obj)
        if status == "corrupt":
            report.corrupt += 1
            continue
        report.ok += int(status == "ok")
        report.legacy += int(status == "legacy")
        kept.append(stripped)
    if repair and report.bad:
        import tempfile

        handle = tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", dir=str(path.parent),
            prefix=".tmp-", suffix=".jsonl", delete=False)
        try:
            with handle:
                handle.write("\n".join(kept) + ("\n" if kept else ""))
            os.replace(handle.name, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
    return report


def run_doctor(cache, trace_store, ledgers: Tuple[str, ...] = (),
               repair: bool = False) -> Dict[str, Any]:
    """Scan both stores and any ledgers; returns the doctor report.

    ``repair`` quarantines corrupt store entries (they re-record /
    recompute on next use) and rewrites damaged ledgers in place.
    ``report["corrupt"]`` counts everything found; ``report["clean"]``
    is True when nothing was wrong to begin with.
    """
    results = cache.scan(repair=repair)
    traces = trace_store.scan(repair=repair)
    ledger_reports = [scan_ledger(path, repair=repair) for path in ledgers]
    corrupt = (results["corrupt"] + traces["corrupt"]
               + sum(r.bad for r in ledger_reports))
    return {
        "results": results,
        "traces": traces,
        "ledgers": [r.as_dict() for r in ledger_reports],
        "corrupt": corrupt,
        "repaired": repair,
        "clean": corrupt == 0,
    }


def format_doctor(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`run_doctor` report."""
    lines = []
    for title, scan in (("result cache", report["results"]),
                        ("trace store", report["traces"])):
        lines.append(
            f"{title:<12} {scan['scanned']:>6} scanned  "
            f"{scan['ok']:>6} ok  {scan['corrupt']:>4} corrupt  "
            f"{scan['quarantined']:>4} quarantined  [{scan['root']}]")
    for ledger in report["ledgers"]:
        lines.append(
            f"ledger       {ledger['lines']:>6} lines    "
            f"{ledger['ok'] + ledger['legacy']:>6} ok  "
            f"{ledger['bad']:>4} corrupt  [{ledger['path']}]")
    verdict = "clean" if report["clean"] else (
        "repaired" if report["repaired"] else "CORRUPT")
    lines.append(f"doctor: {report['corrupt']} problem(s) found — {verdict}")
    return "\n".join(lines)
