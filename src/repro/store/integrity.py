"""Store-level integrity primitives: policies, digests, quarantine.

These used to live in :mod:`repro.engine.integrity`, duplicated in
spirit between the result cache and the trace store; the tiered store
layer (:mod:`repro.store`) now owns them.  :mod:`repro.engine.integrity`
re-exports every name, so engine-level callers and tests are
unaffected.

* **policies** — every store runs under one of
  :data:`INTEGRITY_POLICIES`: ``verify`` (checksum on read, corrupt
  entries are quarantined and raise :class:`IntegrityError`),
  ``repair`` (the default: checksum on read, corrupt entries are
  quarantined and transparently re-recorded / recomputed), ``trust``
  (skip checksum verification — structural parsing still applies);
* **quarantine** — a corrupt entry is never deleted: it is moved to
  ``<store root>/quarantine/`` next to a machine-readable
  ``<name>.reason.json`` describing what failed, so corruption is
  auditable after the fact (``repro doctor`` scans it).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Store-level integrity policies (see module docstring).
INTEGRITY_POLICIES = ("verify", "repair", "trust")

#: Subdirectory of a store root that corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Suffix of the machine-readable reason file written per quarantined
#: entry.
REASON_SUFFIX = ".reason.json"


class IntegrityError(RuntimeError):
    """Corrupt on-disk state detected under the ``verify`` policy."""


def integrity_policy_from_env() -> str:
    """``REPRO_INTEGRITY`` (default ``repair``: self-healing stores)."""
    policy = os.environ.get("REPRO_INTEGRITY", "repair")
    return policy if policy in INTEGRITY_POLICIES else "repair"


def check_policy(policy: str) -> str:
    if policy not in INTEGRITY_POLICIES:
        raise ValueError(
            f"integrity policy must be one of {INTEGRITY_POLICIES}, "
            f"got {policy!r}")
    return policy


# ----------------------------------------------------------------------
# Payload digests (result-cache entries).


def payload_digest(payload: Any) -> str:
    """Canonical sha256 of a JSON-able payload — the digest embedded
    in every result-cache entry and recomputed on read."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Per-store integrity counters (telemetry).


@dataclass
class IntegrityCounters:
    """What a store's integrity layer did this process."""

    #: Entries that passed checksum verification on read.
    verified: int = 0
    #: Quarantined entries that were transparently re-recorded or
    #: recomputed (the self-heal completing).
    repaired: int = 0
    #: Corrupt entries moved to the quarantine directory.
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# Quarantine: corrupt entries are moved aside, never deleted.


def quarantine_root(store_root: pathlib.Path) -> pathlib.Path:
    return pathlib.Path(store_root) / QUARANTINE_DIR


def quarantine_entry(path: pathlib.Path, store_root: pathlib.Path,
                     reason: str, key: Optional[str] = None,
                     store: str = "unknown") -> Optional[pathlib.Path]:
    """Move a corrupt entry into ``<store_root>/quarantine/`` with a
    machine-readable reason file; returns the quarantined path (or
    ``None`` if the entry vanished underneath us — another process may
    have quarantined it first)."""
    path = pathlib.Path(path)
    qdir = quarantine_root(store_root)
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        os.replace(path, target)
    except OSError:
        return None
    reason_doc = {
        "entry": path.name,
        "original_path": str(path),
        "store": store,
        "key": key,
        "reason": reason,
        "detected_ts": time.time(),
    }
    with contextlib.suppress(OSError):
        (qdir / (path.name + REASON_SUFFIX)).write_text(
            json.dumps(reason_doc, sort_keys=True, indent=2) + "\n",
            encoding="utf-8")
    return target


def quarantined_entries(store_root: pathlib.Path) -> List[pathlib.Path]:
    """Quarantined entry files (reason files excluded) under a store."""
    qdir = quarantine_root(store_root)
    if not qdir.is_dir():
        return []
    return sorted(p for p in qdir.iterdir()
                  if p.is_file() and not p.name.endswith(REASON_SUFFIX))


def purge_quarantine(store_root: pathlib.Path) -> int:
    """Delete every quarantined entry and reason file; returns the
    number of entry files removed (``repro cache prune`` calls this —
    quarantine is an audit trail, not an archive)."""
    qdir = quarantine_root(store_root)
    if not qdir.is_dir():
        return 0
    removed = 0
    for path in list(qdir.iterdir()):
        is_entry = path.is_file() and not path.name.endswith(REASON_SUFFIX)
        with contextlib.suppress(OSError):
            path.unlink()
            removed += int(is_entry)
    with contextlib.suppress(OSError):
        qdir.rmdir()
    return removed
