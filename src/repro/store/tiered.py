"""The three-tier store: memory LRU → local disk → shared backend.

One :class:`TieredStore` carries everything the result cache and the
trace store used to implement twice: the read path with per-tier
hit/miss accounting, verified decoding with the
``verify``/``repair``/``trust`` policy semantics, quarantine +
repair-pending bookkeeping, atomic writes with backend publication,
and the stats/scan/prune/clear maintenance surface.  The typed views
(:class:`~repro.engine.cache.ResultCache`,
:class:`~repro.engine.tracestore.TraceStore`) map their domain keys
and value types onto it via a small :class:`Codec`.

Read path (``get``):

1. **memory** — decoded values, no verification (they were verified on
   the way in);
2. **disk** — decode + checksum per the policy; success promotes into
   memory.  A corrupt entry is quarantined (``verify`` additionally
   raises :class:`IntegrityError`); under ``repair`` a quarantined key
   then falls through to the backend — the shared corpus can heal a
   replica's local bit rot without re-simulating;
3. **backend** — fetch into the local disk path (atomic), then decode
   exactly like a disk read.  A fetched-but-corrupt entry is
   quarantined locally and reads as a miss.

Write path (``put``): atomic durable local write, memory admission per
the store's promotion policy, then a best-effort backend push —
replicas publish what they compute, so N replicas sharing a backend
converge on one content-addressed corpus.

The backend tier is treated as hostile (``docs/serve.md``): a fetch or
push that raises is contained here (counted as a miss / failed push),
never propagated into the request that happened to touch the store,
and keys whose publish failed are remembered so :meth:`TieredStore.flush`
(run by graceful drain, see ``repro serve``) can retry them once the
backend — typically behind a
:class:`~repro.store.backend.CircuitBreakerBackend` — recovers.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Any, Callable, Dict, Optional, Set, Tuple

from .backend import Backend
from .disk import DiskTier
from .integrity import (
    IntegrityCounters,
    IntegrityError,
    check_policy,
    quarantine_entry,
    quarantined_entries,
)
from .memory import MemoryTier

#: Exception classes a codec's :meth:`Codec.load` may raise to signal
#: a structurally or cryptographically corrupt entry.
DECODE_ERRORS = (OSError, ValueError, KeyError, TypeError)


class Codec:
    """How one store's values cross tier boundaries."""

    #: Human prefix of integrity messages ("result cache", "trace store").
    store_title = "store"
    #: Namespace under a shared backend root ("results", "traces").
    namespace = "store"

    def load(self, path: pathlib.Path, verify: bool) -> Tuple[Any, int]:
        """Decode (and, when ``verify``, checksum) the entry file;
        returns ``(value, nbytes)``.  Raises one of
        :data:`DECODE_ERRORS` (or a subclass) on corruption."""
        raise NotImplementedError

    def to_memory(self, value: Any, nbytes: int) -> Tuple[Any, int]:
        """What the memory tier holds for ``value`` (and its size).
        Defaults to the value itself."""
        return value, nbytes

    def from_memory(self, stored: Any) -> Any:
        """Rehydrate a memory-tier entry back into a value."""
        return stored


class TieredStore:
    """Memory → disk → backend composition with one policy."""

    def __init__(self, disk: DiskTier, codec: Codec,
                 memory: Optional[MemoryTier] = None,
                 backend: Optional[Backend] = None,
                 policy: str = "repair",
                 promote_on_put: bool = False,
                 durable: bool = True) -> None:
        self.disk = disk
        self.codec = codec
        self.memory = memory if memory is not None else MemoryTier(0, 0)
        self.backend = backend
        self.policy = check_policy(policy)
        #: Fill the memory tier on writes (trace store) or only on
        #: verified disk reads (result cache — a just-written entry is
        #: re-verified from disk on its first read, so corruption
        #: introduced between put and get is still caught).
        self.promote_on_put = promote_on_put
        #: fsync before rename on byte writes (the resume invariant).
        self.durable = durable
        self.integrity = IntegrityCounters()
        #: Keys whose entry was quarantined and awaits recomputation —
        #: the next successful ``put`` counts as a repair.
        self._repair_pending: Set[str] = set()
        #: Keys written locally whose backend publish failed (flaky
        #: backend, open breaker); :meth:`flush` retries them.
        self._push_pending: Set[str] = set()

    # -- read path ------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Any, str]]:
        """``(value, tier)`` for ``key``, or ``None`` on a miss.

        ``tier`` names where the value was found: ``"memory"``,
        ``"disk"`` or ``"backend"``.  Corruption follows the policy:
        quarantine + raise under ``verify``, quarantine + miss (with a
        backend-heal attempt) under ``repair``, unlink + miss under
        ``trust`` (structural breakage only — checksums are skipped).
        """
        stored = self.memory.get(key)
        if stored is not None:
            return self.codec.from_memory(stored), "memory"
        value = self._read_disk(key, tier="disk")
        if value is not None:
            return value, "disk"
        if self.backend is None:
            return None
        if not self._fetch(key):
            return None
        value = self._read_disk(key, tier="backend")
        if value is not None:
            return value, "backend"
        return None

    def _fetch(self, key: str) -> bool:
        """One contained backend fetch: an exception is a miss, never
        the caller's problem."""
        assert self.backend is not None
        try:
            return bool(self.backend.fetch(self.disk.relative_name(key),
                                           self.disk.path(key)))
        except Exception:
            self.backend.counters.misses += 1
            return False

    def _read_disk(self, key: str, tier: str) -> Optional[Any]:
        """One verified decode of the local entry file; counts against
        ``tier`` and promotes into memory on success."""
        counters = (self.disk.counters if tier == "disk"
                    else self.backend.counters)  # type: ignore[union-attr]
        path = self.disk.path(key)
        verify = self.policy != "trust"
        try:
            value, nbytes = self.codec.load(path, verify=verify)
        except FileNotFoundError:
            if tier == "disk":
                counters.misses += 1
            return None
        except DECODE_ERRORS as exc:
            counters.misses += 1
            if not verify:
                # Legacy behaviour: drop it and recompute.
                with contextlib.suppress(OSError):
                    path.unlink()
                return None
            self.quarantine(path, repr(exc), key=key)
            if self.policy == "verify":
                raise IntegrityError(
                    f"{self.codec.store_title} entry {key[:12]} is corrupt "
                    f"(quarantined): {exc}") from exc
            if tier == "disk" and self.backend is not None \
                    and self._fetch(key):
                # The shared corpus can heal local bit rot in place.
                healed = self._read_disk(key, tier="backend")
                if healed is not None:
                    self._note_repaired(key)
                    return healed
            return None
        if verify:
            self.integrity.verified += 1
        if tier == "disk":
            # Backend fetches already counted their hit and bytes.
            counters.hits += 1
            counters.bytes_read += nbytes
        self._promote(key, value, nbytes)
        return value

    def _promote(self, key: str, value: Any, nbytes: int) -> None:
        stored, stored_nbytes = self.codec.to_memory(value, nbytes)
        self.memory.put(key, stored, stored_nbytes)

    # -- write path -----------------------------------------------------

    def put_bytes(self, key: str, data: bytes,
                  value: Optional[Any] = None) -> bool:
        """Atomically store the encoded entry; True when it landed."""
        if not self.disk.write_bytes(key, data, fsync=self.durable):
            return False
        self._note_repaired(key)
        if self.promote_on_put and value is not None:
            self._promote(key, value, len(data))
        self._push(key)
        return True

    def put_with(self, key: str, writer: Callable[[str], Any],
                 nbytes_of: Callable[[Any], int]) -> Any:
        """Atomic recorder-callback write (trace-store discipline);
        returns the writer's result."""
        value = self.disk.write_with(key, writer)
        nbytes = nbytes_of(value)
        self.disk.counters.bytes_written += nbytes
        self._note_repaired(key)
        if self.promote_on_put:
            self._promote(key, value, nbytes)
        self._push(key)
        return value

    def _push(self, key: str) -> None:
        if self.backend is None:
            return
        try:
            landed = self.backend.push(self.disk.relative_name(key),
                                       self.disk.path(key))
        except Exception:
            landed = False
        if landed:
            self._push_pending.discard(key)
        else:
            self._push_pending.add(key)

    def flush(self) -> Dict[str, int]:
        """Retry every backend publish that previously failed.

        Run by graceful drain: with the backend healthy again (breaker
        closed), the replica's locally-computed entries still reach the
        shared corpus before the process exits.  Returns how many were
        pending and how many landed.
        """
        pending = sorted(self._push_pending)
        published = 0
        for key in pending:
            if self.backend is None:
                break
            if not self.disk.path(key).exists():
                self._push_pending.discard(key)
                continue
            self._push(key)
            if key not in self._push_pending:
                published += 1
        return {"pending": len(pending), "published": published}

    def _note_repaired(self, key: str) -> None:
        if key in self._repair_pending:
            self._repair_pending.discard(key)
            self.integrity.repaired += 1

    # -- quarantine -----------------------------------------------------

    def quarantine(self, path: pathlib.Path, reason: str,
                   key: Optional[str] = None) -> None:
        """Move a corrupt entry aside (never delete) and drop any
        memory-tier residue so the stale value cannot be served."""
        if key is not None:
            self.memory.invalidate(key)
            self._repair_pending.add(key)
        if quarantine_entry(path, self.disk.root, reason, key=key,
                            store=self.codec.namespace) is not None:
            self.integrity.quarantined += 1

    def invalidate(self, key: str) -> None:
        self.memory.invalidate(key)

    # -- maintenance ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The view-facing stats document: the pre-refactor keys plus
        a ``tiers`` block with per-tier counters."""
        entries, nbytes = self.disk.stats()
        tiers: Dict[str, Any] = {
            "memory": self.memory.stats(),
            "disk": self.disk.counters.as_dict(),
            "backend": (self.backend.stats()
                        if self.backend is not None else None),
        }
        return {
            "root": str(self.disk.root),
            "version": self.disk.version,
            "entries": entries,
            "bytes": nbytes,
            "policy": self.policy,
            "quarantined": len(quarantined_entries(self.disk.root)),
            "integrity": self.integrity.as_dict(),
            "push_pending": len(self._push_pending),
            "tiers": tiers,
        }

    def tier_counters(self) -> Dict[str, Any]:
        """Counters only — cheap enough for per-run JSONL summaries."""
        return {
            "memory": self.memory.stats(),
            "disk": self.disk.counters.as_dict(),
            "backend": (self.backend.stats()
                        if self.backend is not None else None),
            "integrity": self.integrity.as_dict(),
            "push_pending": len(self._push_pending),
        }

    def scan(self, repair: bool = False) -> Dict[str, Any]:
        """Verify every current-version entry (the ``repro doctor``
        pass).  With ``repair``, corrupt entries are quarantined so
        their next use recomputes them; without it they are only
        reported."""
        scanned = ok = corrupt = 0
        for path in sorted(self.disk.entries()):
            scanned += 1
            try:
                self.codec.load(path, verify=True)
            except DECODE_ERRORS as exc:
                corrupt += 1
                if repair:
                    self.quarantine(path, repr(exc), key=path.stem)
            else:
                ok += 1
        return {"root": str(self.disk.root), "scanned": scanned, "ok": ok,
                "corrupt": corrupt,
                "quarantined": len(quarantined_entries(self.disk.root))}

    def prune(self, deep_strays: bool = False) -> int:
        self.memory.clear()
        return self.disk.prune(deep_strays=deep_strays)

    def clear(self) -> int:
        self.memory.clear()
        return self.disk.clear()
