"""Convergent profiling against a *running program* (Section 7).

:class:`~repro.sampling.convergent.ConvergentProfiler` models the
adaptation policy at event level; this module closes the loop at the
ISA level: "because each branch-on-random instruction encodes its own
frequency", a runtime can re-encode a site's rate by patching the
4-bit freq field of its ``brr`` instruction in place
(:meth:`repro.sim.machine.Machine.patch_brr_frequency`).

:class:`ConvergentController` owns a set of *site bindings* — the
memory address of each site's ``brr`` instruction and of its profile
counter — and polls the counters as the program runs.  Each site's
profile share is estimated rate-correctedly (a sample at interval
``2^(f+1)`` represents that many encounters), so sites sampled at
different rates remain comparable.  When a site's share stabilises,
its interval is doubled; when fresh samples disagree with the
converged share, the site is re-characterised at the initial rate —
the exact escalate/back-off loop the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..core.condition import check_field, interval_of_field
from ..sim.machine import Machine


@dataclass
class SiteBinding:
    """Where one instrumentation site lives in the running program."""

    brr_addr: int
    counter_addr: int


@dataclass
class SiteControl:
    """Controller state for one site."""

    binding: SiteBinding
    field: int
    last_count: int = 0
    weighted_total: float = 0.0
    share: Optional[float] = None
    stable_polls: int = 0
    converged: bool = False
    converged_share: float = 0.0
    recharacterizations: int = 0
    rate_changes: List[int] = field(default_factory=list)


class ConvergentController:
    """Adaptive per-site rate control by brr freq-field patching."""

    def __init__(
        self,
        machine: Machine,
        bindings: Dict[Hashable, SiteBinding],
        initial_field: int = 2,
        max_field: int = 9,
        stable_polls_to_backoff: int = 3,
        share_tolerance: float = 0.02,
        drift_tolerance: float = 0.08,
    ) -> None:
        if not bindings:
            raise ValueError("need at least one site binding")
        check_field(initial_field)
        check_field(max_field)
        if max_field < initial_field:
            raise ValueError("max field below initial field")
        self.machine = machine
        self.initial_field = initial_field
        self.max_field = max_field
        self.stable_polls_to_backoff = stable_polls_to_backoff
        self.share_tolerance = share_tolerance
        self.drift_tolerance = drift_tolerance
        self.sites: Dict[Hashable, SiteControl] = {}
        for key, binding in bindings.items():
            self.sites[key] = SiteControl(binding=binding,
                                          field=initial_field)
            machine.patch_brr_frequency(binding.brr_addr, initial_field)
        self.polls = 0

    # ------------------------------------------------------------------

    def current_interval(self, key: Hashable) -> int:
        return interval_of_field(self.sites[key].field)

    def _set_field(self, key: Hashable, new_field: int) -> None:
        control = self.sites[key]
        if new_field == control.field:
            return
        control.field = new_field
        control.rate_changes.append(new_field)
        self.machine.patch_brr_frequency(control.binding.brr_addr, new_field)

    def _read_new_weight(self, control: SiteControl) -> float:
        """Rate-corrected weight of the samples since the last poll."""
        count = self.machine.memory.load_word(control.binding.counter_addr)
        new = count - control.last_count
        control.last_count = count
        return new * interval_of_field(control.field)

    def poll(self) -> None:
        """Inspect the counters and adapt every site's rate."""
        self.polls += 1
        controls = self.sites.values()
        for control in controls:
            control.weighted_total += self._read_new_weight(control)
        total = sum(c.weighted_total for c in controls)
        if total <= 0:
            return
        for key, control in self.sites.items():
            share = control.weighted_total / total
            previous = control.share
            control.share = share
            if previous is None:
                continue
            delta = abs(share - previous)
            if control.converged:
                if abs(share - control.converged_share) > self.drift_tolerance:
                    # Out of line with the characterisation.
                    control.converged = False
                    control.stable_polls = 0
                    control.recharacterizations += 1
                    self._set_field(key, self.initial_field)
                continue
            if delta <= self.share_tolerance:
                control.stable_polls += 1
                if control.stable_polls >= self.stable_polls_to_backoff:
                    control.stable_polls = 0
                    if control.field < self.max_field:
                        self._set_field(key, control.field + 1)
                    else:
                        control.converged = True
                        control.converged_share = share
            else:
                control.stable_polls = 0

    # ------------------------------------------------------------------

    def run(self, steps_per_poll: int, polls: int,
            max_steps_total: int = 50_000_000) -> int:
        """Interleave execution and polling; returns steps executed."""
        executed = 0
        for __ in range(polls):
            for __ in range(steps_per_poll):
                if self.machine.halted or executed >= max_steps_total:
                    self.poll()
                    return executed
                self.machine.step()
                executed += 1
            self.poll()
        return executed

    def summary(self) -> Dict[Hashable, Dict[str, float]]:
        return {
            key: {
                "interval": interval_of_field(control.field),
                "share": control.share if control.share is not None else 0.0,
                "samples": control.last_count,
                "converged": control.converged,
                "recharacterizations": control.recharacterizations,
            }
            for key, control in self.sites.items()
        }
