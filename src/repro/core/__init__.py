"""The paper's primary contribution: the branch-on-random instruction.

This package models the hardware of Section 3 — the LFSR randomness
source (:mod:`repro.core.lfsr`), the frequency encoding and AND-tree
condition unit (:mod:`repro.core.condition`), the per-decoder
branch-on-random unit with superscalar and deterministic variants
(:mod:`repro.core.brr`), and the gate/state cost model
(:mod:`repro.core.cost`).
"""

from .brr import (
    BranchOnRandomUnit,
    DecoderBank,
    HardwareCounterUnit,
    RandomSource,
    measured_probability,
)
from .condition import (
    FREQ_FIELD_BITS,
    FREQ_FIELD_VALUES,
    ConditionUnit,
    EncodingError,
    contiguous_bits,
    field_for_interval,
    interval_of_field,
    nearest_field,
    probability_of_field,
    spaced_bits,
)
from .cost import CostEstimate, claims_hold, estimate_cost, paper_design_points
from .lfsr import Lfsr, LfsrError
from .taps import (
    FIGURE6_TAPS,
    MAXIMAL_TAPS,
    MINIMUM_WIDTH,
    PAPER_SENSITIVITY_TAPS_32,
    RECOMMENDED_WIDTH,
    default_taps,
    taps_are_maximal,
    taps_to_polynomial,
)

__all__ = [
    "BranchOnRandomUnit",
    "DecoderBank",
    "HardwareCounterUnit",
    "RandomSource",
    "measured_probability",
    "FREQ_FIELD_BITS",
    "FREQ_FIELD_VALUES",
    "ConditionUnit",
    "EncodingError",
    "contiguous_bits",
    "spaced_bits",
    "field_for_interval",
    "interval_of_field",
    "nearest_field",
    "probability_of_field",
    "CostEstimate",
    "claims_hold",
    "estimate_cost",
    "paper_design_points",
    "Lfsr",
    "LfsrError",
    "FIGURE6_TAPS",
    "MAXIMAL_TAPS",
    "MINIMUM_WIDTH",
    "PAPER_SENSITIVITY_TAPS_32",
    "RECOMMENDED_WIDTH",
    "default_taps",
    "taps_are_maximal",
    "taps_to_polynomial",
]
