"""Edge-case tests for the pipeline model's resource knobs."""

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.isa.asm import assemble
from repro.timing.config import TimingConfig
from repro.timing.pipeline import TimingSimulator
from repro.timing.runner import time_program
from repro.sim.machine import Machine


def timed(source, **kwargs):
    return time_program(assemble(source), **kwargs)


def wide_loop(n=300, body=12):
    lines = "\n".join(f"li r{1 + (i % 7)}, {i}" for i in range(body))
    return f"""
        li r9, {n}
    loop:
        {lines}
        addi r9, r9, -1
        bne r9, r0, loop
        halt
    """


class TestDecodeWidth:
    def test_narrow_decode_binds(self):
        config = TimingConfig().with_overrides(fetch_width=6, decode_width=2)
        narrow = timed(wide_loop(), config=config)
        wide = timed(wide_loop(),
                     config=TimingConfig().with_overrides(fetch_width=6))
        assert narrow.cycles > wide.cycles * 1.4
        # IPC cannot exceed the decode width.
        assert narrow.stats.ipc <= 2.02


class TestPhysRegs:
    def test_tiny_preg_pool_serialises_behind_miss(self):
        """With few rename registers, a long-latency load blocks all
        later dest-writing instructions from dispatching."""
        source = """
            li r1, 0x80000
            li r4, 0x90000
            li r9, 4
        loop:
            lw r2, 0(r1)
        """ + "\n".join(["addi r3, r3, 1"] * 30) + """
            lw r5, 0(r4)
        """ + "\n".join(["addi r6, r6, 1"] * 30) + """
            addi r1, r1, 64
            addi r4, r4, 64
            addi r9, r9, -1
            bne r9, r0, loop
            halt
        """
        base = timed(source)
        tight = timed(source,
                      config=TimingConfig().with_overrides(phys_regs=24))
        assert tight.cycles > base.cycles

    def test_preg_budget_floor(self):
        sim = TimingSimulator(TimingConfig().with_overrides(phys_regs=4))
        assert sim._preg_budget == 1  # never zero or negative


class TestFrontendDepth:
    def test_deeper_frontend_raises_brr_taken_cost(self):
        """The taken-brr penalty scales with where decode sits in the
        pipeline — the paper's 'short misprediction penalty' argument
        in reverse."""
        source = """
            li r9, 400
        loop:
            brr 0, hit
        hit:
            addi r9, r9, -1
            bne r9, r0, loop
            halt
        """
        shallow = timed(source, brr_unit=HardwareCounterUnit())
        deep = timed(source, brr_unit=HardwareCounterUnit(),
                     config=TimingConfig().with_overrides(frontend_depth=10))
        assert deep.cycles > shallow.cycles + 200  # ~6 extra per taken

    def test_backend_penalty_knob(self):
        source = """
            li r1, 0x1234
            li r9, 300
        loop:
            shli r2, r1, 3
            xor  r1, r1, r2
            shri r2, r1, 5
            xor  r1, r1, r2
            andi r3, r1, 1
            beq  r3, r0, skip
            addi r4, r4, 1
        skip:
            addi r9, r9, -1
            bne r9, r0, loop
            halt
        """
        cheap = timed(source,
                      config=TimingConfig().with_overrides(backend_penalty=5))
        costly = timed(source,
                       config=TimingConfig().with_overrides(backend_penalty=25))
        assert costly.cycles > cheap.cycles
        assert costly.stats.cond_mispredicts == cheap.stats.cond_mispredicts


class TestSnapshotDelta:
    def test_snapshot_isolation(self):
        source = wide_loop(n=50)
        machine = Machine(assemble(source))
        sim = TimingSimulator()
        for __ in range(100):
            sim.step(machine.step())
        snap = sim.snapshot()
        while not machine.halted:
            sim.step(machine.step())
        delta = sim.stats - snap
        assert delta.instructions == sim.stats.instructions - 100
        assert delta.cycles > 0
        # The snapshot itself is unaffected by later stepping.
        assert snap.instructions == 100


class TestMarkersAndNops:
    def test_markers_flow_through_pipeline(self):
        result = timed("""
            marker 1
            nop
            marker 2
            halt
        """)
        assert result.instructions == 4

    def test_halt_commits(self):
        result = timed("halt")
        assert result.instructions == 1
        assert result.cycles >= 1
