"""The simulation service: validation, coalescing, and the work queue.

This module is the protocol-independent half of ``repro serve`` — it
knows nothing about HTTP.  :class:`SimulationService` maps validated
``(command, params)`` requests onto the :mod:`repro.api` façade:

* **whitelist** — :data:`COMMANDS` enumerates exactly the façade
  functions the service exposes and, per command, the parameters a
  tenant may set with their coercers.  Anything else is a
  :class:`RequestError`, never an arbitrary call;
* **canonical keys** — :func:`request_key` folds the command and the
  *resolved* parameters (defaults applied, values coerced) into one
  canonical JSON string, so ``{"scale": 2}`` and ``{"scale": 2.0}``
  coalesce and differently-ordered dicts hash the same;
* **coalescing** — concurrent identical requests share one in-flight
  computation: the first takes the slot, the rest await the same
  future and count as ``coalesced``.  Results are *not* cached here —
  the engine's tiered result store already memoises at window
  granularity, which is the durable, integrity-checked place for it;
* **the queue** — an ``asyncio`` semaphore bounds how many distinct
  computations run at once (``workers``); each runs in a thread so the
  event loop stays responsive while the engine fans windows out to its
  own process pool (per-request :class:`~repro.engine.spec.WindowSpec`
  sharding happens inside the experiments, exactly as it does for the
  CLI);
* **resilience** (``docs/serve.md``, "Operating the service") —
  per-request deadlines (:class:`DeadlineExceeded` → HTTP 504; a timed
  out waiter abandons only its *own* wait: the shared computation runs
  to completion and its windows still land in the result cache),
  admission control (a bounded concurrent-waiter queue and per-tenant
  quotas; overload is :class:`Shed` → HTTP 503 with ``Retry-After``),
  and graceful drain (:meth:`SimulationService.drain` stops admission,
  waits for in-flight work, then flushes the store tiers).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..engine import ExperimentEngine

#: Default per-request deadline in seconds (``None`` = no deadline).
TIMEOUT_ENV = "REPRO_SERVE_TIMEOUT"
#: Hard cap a tenant's ``?timeout=`` cannot exceed.
MAX_TIMEOUT_ENV = "REPRO_SERVE_MAX_TIMEOUT"
#: Bound on concurrently-admitted requests (waiters, not computations).
QUEUE_ENV = "REPRO_SERVE_QUEUE"
#: Bound on one tenant's concurrently-admitted requests.
TENANT_QUOTA_ENV = "REPRO_SERVE_TENANT_QUOTA"
#: How long :meth:`SimulationService.drain` waits for in-flight work.
DRAIN_TIMEOUT_ENV = "REPRO_SERVE_DRAIN_TIMEOUT"

DEFAULT_MAX_TIMEOUT = 600.0
DEFAULT_QUEUE_LIMIT = 16
DEFAULT_TENANT_QUOTA = 8
DEFAULT_DRAIN_TIMEOUT = 30.0
#: Requests that name no tenant are accounted under this bucket.
DEFAULT_TENANT = "anonymous"


def _env_positive_float(name: str,
                        default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else None


def _env_positive_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


class RequestError(ValueError):
    """A request the service refuses: unknown command, unknown or
    uncoercible parameter.  Maps to HTTP 400."""


class DeadlineExceeded(TimeoutError):
    """This waiter's deadline fired before the computation finished.
    Maps to HTTP 504.  Only the wait is abandoned: the shared in-flight
    computation keeps running, its result lands in the tiered result
    cache, and every other coalesced waiter is unaffected."""


class Shed(RuntimeError):
    """Admission control refused the request (draining, queue full, or
    the tenant is over quota).  Maps to HTTP 503 with ``Retry-After``.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds the client should wait before retrying (the
        #: ``Retry-After`` header value, rounded up on the wire).
        self.retry_after = retry_after


def _as_float(value: Any) -> float:
    return float(value)


def _as_int(value: Any) -> int:
    # Reject silent truncation ("4000.5" is a typo, not an int).
    number = float(value)
    if number != int(number):
        raise ValueError(f"not an integer: {value!r}")
    return int(number)


def _as_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


def _as_seed_list(value: Any) -> Tuple[int, ...]:
    """Seeds arrive as a JSON list or a comma-separated query string."""
    if isinstance(value, str):
        parts = [part for part in value.split(",") if part.strip()]
        return tuple(_as_int(part) for part in parts)
    if isinstance(value, (list, tuple)):
        return tuple(_as_int(item) for item in value)
    return (_as_int(value),)


def _as_choice(*options: str) -> Callable[[Any], str]:
    def coerce(value: Any) -> str:
        text = str(value).strip().lower()
        if text not in options:
            raise ValueError(f"must be one of {options}, got {value!r}")
        return text
    return coerce


def _as_plan(value: Any) -> str:
    """Sampling plans canonicalise before coalescing, so
    ``fraction:0.25`` and ``fraction:0.250`` share one computation."""
    from ..stats import SamplingPlan

    return SamplingPlan.parse(str(value)).canonical()


#: command -> {param -> coercer}.  The façade functions themselves
#: supply the defaults; the service only validates and coerces what a
#: tenant explicitly sets.
COMMANDS: Dict[str, Dict[str, Callable[[Any], Any]]] = {
    "figure9": {"scale": _as_float, "seeds": _as_seed_list,
                "sample": _as_plan, "seed": _as_int},
    "figure10": {"scale": _as_float, "seeds": _as_seed_list,
                 "sample": _as_plan, "seed": _as_int},
    "figure12": {"scale": _as_float, "interval": _as_int,
                 "sample": _as_plan, "seed": _as_int},
    "figure13": {"scale": _as_int, "sample": _as_plan, "seed": _as_int},
    "figure14": {"scale": _as_int, "sample": _as_plan, "seed": _as_int},
    "figure2": {"scale": _as_int, "seed": _as_int},
    "sensitivity": {"scale": _as_float, "chars": _as_int},
    "cost": {},
    "scorecard": {"quick": _as_bool},
    # Every knob that changes the generated programs must be listed
    # here: request_key() folds only whitelisted (coerced) parameters
    # into the coalescing key, so an omitted knob would let two
    # different computations coalesce onto one result.
    "fuzz": {"windows": _as_int, "seed": _as_int,
             "scheme": _as_choice("cbs", "brr", "mixed"),
             "blocks": _as_int, "shrink": _as_bool,
             "serve_diff": _as_bool},
    "entropy": {"scale": _as_int, "stride": _as_int,
                "sample": _as_plan, "seed": _as_int},
}


def validate_request(command: str,
                     params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The resolved, coerced parameter dict for ``command``; raises
    :class:`RequestError` on anything outside the whitelist."""
    allowed = COMMANDS.get(command)
    if allowed is None:
        raise RequestError(
            f"unknown command {command!r}; known: {sorted(COMMANDS)}")
    resolved: Dict[str, Any] = {}
    for name, value in (params or {}).items():
        coerce = allowed.get(name)
        if coerce is None:
            raise RequestError(
                f"unknown parameter {name!r} for {command!r}; "
                f"allowed: {sorted(allowed)}")
        try:
            resolved[name] = coerce(value)
        except (TypeError, ValueError) as exc:
            raise RequestError(
                f"bad value for {command}.{name}: {exc}") from exc
    return resolved


def request_key(command: str, params: Dict[str, Any]) -> str:
    """Canonical identity of a request — the coalescing key."""
    def _plain(value: Any) -> Any:
        if isinstance(value, tuple):
            return list(value)
        return value

    return json.dumps(
        {"command": command,
         "params": {name: _plain(value)
                    for name, value in sorted(params.items())}},
        sort_keys=True, separators=(",", ":"))


@dataclass
class ServeCounters:
    """Service-level telemetry, surfaced at ``/statsz`` and in the
    server's JSONL ledger."""

    #: Requests accepted (validation passed).
    requests: int = 0
    #: Requests that attached to an already-in-flight computation.
    coalesced: int = 0
    #: Distinct computations actually executed.
    simulations: int = 0
    #: Computations that raised (the error is shared by every waiter).
    errors: int = 0
    #: Requests rejected at validation (HTTP 400s).
    rejected: int = 0
    #: Requests refused by admission control (HTTP 503s): queue full,
    #: tenant over quota, or the service is draining.
    shed: int = 0
    #: Waiters whose deadline fired before their computation finished
    #: (HTTP 504s).  The shared computation itself keeps running.
    deadline_exceeded: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class TenantCounters:
    """Per-tenant fairness telemetry (the ``/statsz`` ``tenants`` map)."""

    #: Requests this tenant had admitted.
    requests: int = 0
    #: Requests refused because this tenant was over quota.
    shed: int = 0
    #: Currently-admitted requests (decrements when the waiter returns).
    active: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class ServeResult:
    """What one request answers with: the façade result plus whether
    this waiter's computation was shared."""

    command: str
    params: Dict[str, Any]
    data: Any
    text: str
    coalesced: bool = False

    def document(self) -> Dict[str, Any]:
        """The deterministic response body.  ``coalesced`` is
        deliberately excluded: concurrent identical requests must
        receive byte-identical responses."""
        params = {name: (list(value) if isinstance(value, tuple) else value)
                  for name, value in self.params.items()}
        return {"command": self.command, "params": params,
                "data": self.data, "text": self.text}


class SimulationService:
    """Validated, coalesced request execution over one shared engine."""

    def __init__(self, engine: Optional[ExperimentEngine] = None,
                 workers: int = 1,
                 queue_limit: Optional[int] = None,
                 tenant_quota: Optional[int] = None,
                 default_timeout: Optional[float] = None,
                 max_timeout: Optional[float] = None,
                 drain_timeout: Optional[float] = None) -> None:
        if engine is None:
            engine = ExperimentEngine()
        self.engine = engine
        self.counters = ServeCounters()
        self._workers = max(1, workers)
        self._slots: Optional[asyncio.Semaphore] = None
        #: request key -> the future every coalesced waiter shares.
        self._inflight: Dict[str, "asyncio.Future[ServeResult]"] = {}
        #: Serialises engine access across worker threads: the façade
        #: installs the engine as the process default around each call,
        #: and the engine's recorder/counters are not thread-safe.
        self._engine_lock = threading.Lock()
        # -- resilience knobs (constructor wins, else REPRO_SERVE_*) --
        self.queue_limit = (queue_limit if queue_limit is not None
                            else _env_positive_int(QUEUE_ENV,
                                                   DEFAULT_QUEUE_LIMIT))
        self.tenant_quota = (tenant_quota if tenant_quota is not None
                             else _env_positive_int(TENANT_QUOTA_ENV,
                                                    DEFAULT_TENANT_QUOTA))
        self.default_timeout = (default_timeout if default_timeout is not None
                                else _env_positive_float(TIMEOUT_ENV, None))
        self.max_timeout = (max_timeout if max_timeout is not None
                            else _env_positive_float(MAX_TIMEOUT_ENV,
                                                     DEFAULT_MAX_TIMEOUT))
        self.drain_timeout = (drain_timeout if drain_timeout is not None
                              else _env_positive_float(
                                  DRAIN_TIMEOUT_ENV, DEFAULT_DRAIN_TIMEOUT))
        #: Currently-admitted requests (every waiter, coalesced or not).
        self._active = 0
        self._tenants: Dict[str, TenantCounters] = {}
        self._draining = False
        self._drain_report: Optional[Dict[str, Any]] = None

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has started: no new admissions."""
        return self._draining

    def _slot(self) -> asyncio.Semaphore:
        # Created lazily so the service binds to the serving loop, not
        # to whichever loop happened to be current at construction.
        if self._slots is None:
            self._slots = asyncio.Semaphore(self._workers)
        return self._slots

    # -- execution ------------------------------------------------------

    def _run_sync(self, command: str, params: Dict[str, Any]) -> ServeResult:
        """One actual simulation (worker thread; counted)."""
        from .. import api

        runner = getattr(api, f"run_{command}")
        with self._engine_lock:
            self.counters.simulations += 1
            result = runner(engine=self.engine, **params)
        return ServeResult(command=command, params=dict(params),
                           data=result.data, text=result.text)

    async def _execute(self, key: str, command: str,
                       params: Dict[str, Any]) -> ServeResult:
        loop = asyncio.get_event_loop()
        try:
            async with _acquire(self._slot()):
                return await loop.run_in_executor(
                    None, self._run_sync, command, params)
        except Exception:
            self.counters.errors += 1
            raise
        finally:
            self._inflight.pop(key, None)

    # -- admission control ----------------------------------------------

    def resolve_timeout(self, timeout: Any = None) -> Optional[float]:
        """The effective deadline for one request: the tenant's
        ``timeout`` (or the service default), capped at
        :attr:`max_timeout`.  ``None`` means no deadline.  Raises
        :class:`RequestError` on an unparseable or non-positive value.
        """
        if timeout is None:
            effective = self.default_timeout
        else:
            try:
                effective = float(timeout)
            except (TypeError, ValueError) as exc:
                raise RequestError(
                    f"bad timeout {timeout!r}: {exc}") from exc
            if effective <= 0:
                raise RequestError(
                    f"timeout must be positive, got {timeout!r}")
        if effective is None:
            return None
        if self.max_timeout is not None:
            effective = min(effective, self.max_timeout)
        return effective

    def _tenant(self, tenant: Optional[str]) -> TenantCounters:
        name = (tenant or DEFAULT_TENANT).strip() or DEFAULT_TENANT
        counters = self._tenants.get(name)
        if counters is None:
            counters = self._tenants[name] = TenantCounters()
        return counters

    def _admit(self, tenant: Optional[str]) -> TenantCounters:
        """One admission-control decision; raises :class:`Shed` when
        the request must not enter the queue."""
        bucket = self._tenant(tenant)
        if self._draining:
            self.counters.shed += 1
            bucket.shed += 1
            raise Shed("service is draining", retry_after=5.0)
        if self._active >= self.queue_limit:
            self.counters.shed += 1
            bucket.shed += 1
            raise Shed(
                f"request queue full ({self._active}/{self.queue_limit})",
                retry_after=1.0)
        if bucket.active >= self.tenant_quota:
            self.counters.shed += 1
            bucket.shed += 1
            raise Shed(
                f"tenant over quota ({bucket.active}/{self.tenant_quota})",
                retry_after=1.0)
        bucket.requests += 1
        bucket.active += 1
        self._active += 1
        return bucket

    async def submit(self, command: str,
                     params: Optional[Dict[str, Any]] = None,
                     timeout: Any = None,
                     tenant: Optional[str] = None) -> ServeResult:
        """Validate, admit, coalesce and execute one request.

        Raises :class:`RequestError` on validation failure,
        :class:`Shed` when admission control refuses the request,
        :class:`DeadlineExceeded` when the per-request deadline fires
        first; any other exception is whatever the underlying
        computation raised (every coalesced waiter observes the same
        one).
        """
        try:
            resolved = validate_request(command, params)
            deadline = self.resolve_timeout(timeout)
        except RequestError:
            self.counters.rejected += 1
            raise
        bucket = self._admit(tenant)
        self.counters.requests += 1
        try:
            key = request_key(command, resolved)
            future = self._inflight.get(key)
            if future is not None:
                self.counters.coalesced += 1
                coalesced = True
            else:
                future = asyncio.ensure_future(
                    self._execute(key, command, resolved))
                # A waiter abandoning its deadline-exceeded wait must
                # leave the computation running with nobody awaiting
                # it; retrieve the outcome so asyncio never logs
                # "exception was never retrieved".
                future.add_done_callback(
                    lambda task: task.cancelled() or task.exception())
                self._inflight[key] = future
                coalesced = False
            # shield: neither a cancelled waiter nor a fired deadline
            # may cancel the computation the other waiters share.
            wait: "asyncio.Future[ServeResult]" = asyncio.shield(future)
            try:
                if deadline is not None:
                    result = await asyncio.wait_for(wait, deadline)
                else:
                    result = await wait
            except asyncio.TimeoutError:
                self.counters.deadline_exceeded += 1
                raise DeadlineExceeded(
                    f"deadline of {deadline}s exceeded; the computation "
                    f"continues and will be served from cache") from None
            return (dataclasses.replace(result, coalesced=True)
                    if coalesced else result)
        finally:
            bucket.active -= 1
            self._active -= 1

    # -- graceful drain ---------------------------------------------------

    async def drain(self) -> Dict[str, Any]:
        """Stop admissions, settle in-flight work, flush the stores.

        New requests shed with HTTP 503 the moment this starts.
        In-flight computations get :attr:`drain_timeout` seconds to
        finish; stragglers are cancelled.  Failed backend publishes are
        then retried (:meth:`~repro.engine.core.ExperimentEngine.flush_stores`)
        so this replica's computed windows reach the shared corpus
        before the process exits.  Idempotent — repeat calls return the
        first report.
        """
        if self._drain_report is not None:
            return self._drain_report
        self._draining = True
        pending = [future for future in self._inflight.values()
                   if not future.done()]
        completed = cancelled = 0
        if pending:
            done, not_done = await asyncio.wait(
                pending, timeout=self.drain_timeout)
            completed = len(done)
            cancelled = len(not_done)
            for future in not_done:
                future.cancel()
            with contextlib.suppress(Exception):
                await asyncio.gather(*not_done, return_exceptions=True)
        loop = asyncio.get_event_loop()
        flushed = await loop.run_in_executor(None, self._flush_sync)
        self._drain_report = {
            "drained": True,
            "inflight_completed": completed,
            "inflight_cancelled": cancelled,
            "flushed": flushed,
        }
        return self._drain_report

    def _flush_sync(self) -> Dict[str, Dict[str, int]]:
        with self._engine_lock:
            return self.engine.flush_stores()

    # -- telemetry ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The ``/statsz`` document: serve counters, admission-control
        state, per-tenant fairness counters, breaker telemetry,
        per-tier store telemetry, and the engine's run summary."""
        from ..store import CircuitBreakerBackend

        breaker = None
        backend = self.engine.cache.backend
        if isinstance(backend, CircuitBreakerBackend):
            breaker = backend.breaker_stats()
        return {
            "serve": dict(self.counters.as_dict(),
                          inflight=len(self._inflight),
                          active=self._active,
                          draining=self._draining,
                          workers=self._workers),
            "limits": {
                "queue": self.queue_limit,
                "tenant_quota": self.tenant_quota,
                "default_timeout": self.default_timeout,
                "max_timeout": self.max_timeout,
                "drain_timeout": self.drain_timeout,
            },
            "tenants": {name: counters.as_dict()
                        for name, counters in sorted(self._tenants.items())},
            "breaker": breaker,
            "stores": {
                "results": self.engine.cache.tier_counters(),
                "traces": self.engine.trace_store.tier_counters(),
            },
            "engine": self.engine.summary(),
        }


class _acquire:
    """``async with`` adapter for a semaphore (3.9-compatible)."""

    def __init__(self, semaphore: asyncio.Semaphore) -> None:
        self._semaphore = semaphore

    async def __aenter__(self) -> None:
        await self._semaphore.acquire()

    async def __aexit__(self, *exc_info: Any) -> None:
        self._semaphore.release()
