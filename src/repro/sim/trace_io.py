"""Compact binary encoding of :class:`TraceRecord` streams.

The record-once / replay-many workflow (``docs/trace_format.md``)
serialises one functional execution so the timing model can be run
over it arbitrarily many times without re-stepping the functional
simulator.  The format is built for that consumer:

* **delta/flag compression** — straight-line code costs two bytes per
  record (flags + word-dictionary index): the PC is implied by the
  previous record's ``next_pc``, sequential ``next_pc`` is implied by
  ``pc + 4``, and each distinct instruction word is encoded once, then
  referenced by its first-appearance index (programs re-execute the
  same few hundred words, so indices stay one or two bytes);
* **versioned header** — decoding refuses traces written by an
  incompatible encoder, so a stale on-disk trace store entry can never
  silently corrupt a replay;
* **marker index footer** — every ``marker`` firing is indexed by
  ``(marker id, cumulative count) -> step``, so fast-forward, window
  begin and window end points resolve without touching a single record;
* **per-section CRC32s** — the footer carries one checksum per
  section (header, record payload, marker index), verified on read,
  so a flipped byte anywhere in a stored trace is *detected* instead
  of silently poisoning every replay of it (``docs/integrity.md``).
  Pass ``verify=False`` to skip the check (the store's ``trust``
  policy); structural validation always runs.

Streams are written through :class:`TraceWriter` (incremental, so the
recording machine never materialises the trace in memory) and read
back through :class:`RecordedTrace`, whose :meth:`~RecordedTrace.records`
iterator decodes lazily.
"""

from __future__ import annotations

import io
import json
import pathlib
import struct
import zlib
from array import array
from typing import BinaryIO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..isa.instructions import Instruction, Op, decode, encode
from .trace import TraceRecord

#: File magic, also used as the footer terminator.
TRACE_MAGIC = b"BRTR"

#: Bump whenever the record encoding or index layout changes; readers
#: reject any other version.  v2 added the per-section CRC32s to the
#: footer.
TRACE_VERSION = 2

#: Header: magic + u8 version + 3 reserved bytes.
_HEADER = struct.Struct("<4sB3x")

#: Footer: CRC32 of the header, record payload and marker index, then
#: the u64 little-endian index offset and the magic terminator.
_FOOTER = struct.Struct("<IIIQ4s")

# Per-record flag bits.
_F_TAKEN = 1 << 0       # control transfer happened
_F_MEM = 1 << 1         # mem_addr follows
_F_SEQ_PC = 1 << 2      # pc == previous record's next_pc (elided)
_F_SEQ_NEXT = 1 << 3    # next_pc == pc + 4 (elided)
_F_INSTR = 1 << 4       # encoded instruction word follows (0 = trapped)


class TraceFormatError(ValueError):
    """Raised for malformed, truncated or wrong-version trace data."""


def _write_uvarint(out: BinaryIO, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise TraceFormatError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one LEB128 varint from ``data`` at ``pos``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceFormatError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _append_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint, appended to a record buffer."""
    if value < 0:
        raise TraceFormatError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class TraceWriter:
    """Incrementally encode records to a binary stream.

    ``append`` each retired instruction in program order, then call
    :meth:`finish` exactly once to emit the marker index and footer.
    The writer tracks marker firings itself, so the caller needs no
    side channel to build the index.
    """

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        self._prev_next_pc: Optional[int] = None
        #: instruction word -> dictionary index, in first-appearance
        #: order.  A word's first record carries the full word; every
        #: later one carries only the (small) index.
        self._word_ids: Dict[int, int] = {}
        self.n_records = 0
        #: marker id -> list of step indices; entry ``k-1`` is the step
        #: at which the marker's cumulative count reached ``k``.
        self.markers: Dict[int, List[int]] = {}
        self._finished = False
        header = _HEADER.pack(TRACE_MAGIC, TRACE_VERSION)
        self._crc_header = zlib.crc32(header)
        self._crc_body = 0
        self._body_bytes = _HEADER.size
        stream.write(header)

    def append(self, record: TraceRecord) -> None:
        if self._finished:
            raise TraceFormatError("writer already finished")
        out = bytearray()
        flags = 0
        if record.taken:
            flags |= _F_TAKEN
        if record.mem_addr is not None:
            flags |= _F_MEM
        if record.pc == self._prev_next_pc:
            flags |= _F_SEQ_PC
        if record.next_pc == record.pc + 4:
            flags |= _F_SEQ_NEXT
        instr = record.instr
        if instr is not None:
            flags |= _F_INSTR
        out.append(flags)
        if not flags & _F_SEQ_PC:
            _append_uvarint(out, record.pc)
        if instr is not None:
            word = encode(instr)
            word_id = self._word_ids.get(word)
            if word_id is None:
                word_id = len(self._word_ids)
                self._word_ids[word] = word_id
                _append_uvarint(out, word_id)
                _append_uvarint(out, word)
            else:
                _append_uvarint(out, word_id)
        if not flags & _F_SEQ_NEXT:
            _append_uvarint(out, record.next_pc)
        if record.mem_addr is not None:
            _append_uvarint(out, record.mem_addr)
        self._crc_body = zlib.crc32(out, self._crc_body)
        self._body_bytes += len(out)
        self._stream.write(out)
        if instr is not None and instr.op is Op.MARKER:
            self.markers.setdefault(instr.imm, []).append(self.n_records)
        self._prev_next_pc = record.next_pc
        self.n_records += 1

    def finish(self) -> None:
        """Write the marker-index footer; the stream stays open."""
        if self._finished:
            return
        self._finished = True
        out = self._stream
        index_offset = self._body_bytes
        index = {
            "n_records": self.n_records,
            "markers": {str(mid): steps for mid, steps in self.markers.items()},
        }
        index_blob = json.dumps(index, sort_keys=True,
                                separators=(",", ":")).encode("utf-8")
        out.write(index_blob)
        out.write(_FOOTER.pack(self._crc_header, self._crc_body,
                               zlib.crc32(index_blob), index_offset,
                               TRACE_MAGIC))


def write_trace(path: Union[str, pathlib.Path],
                records: Iterable[TraceRecord]) -> int:
    """Encode ``records`` into the file at ``path``; returns the count."""
    with open(path, "wb") as stream:
        writer = TraceWriter(stream)
        for record in records:
            writer.append(record)
        writer.finish()
    return writer.n_records


class TraceColumns:
    """Struct-of-arrays view of a decoded trace.

    The per-record object stream of :meth:`RecordedTrace.records` is
    the right shape for the lock-step golden path, but the batched
    fast-path timing kernel (:mod:`repro.timing.fastpath`) wants flat,
    index-addressable columns it can walk with plain integer loads.
    One :class:`TraceColumns` holds the whole trace decoded once:

    ``pc`` / ``next_pc``
        preallocated ``array('q')`` byte addresses;
    ``word_id``
        index into :attr:`instrs` (the word dictionary, one decoded
        :class:`~repro.isa.instructions.Instruction` per distinct
        word), or ``-1`` for a trap-emulated record;
    ``taken``
        ``bytearray`` of 0/1 transfer outcomes;
    ``mem_addr``
        ``array('q')`` effective addresses, ``-1`` where the record
        carries none.
    """

    __slots__ = ("n_records", "pc", "word_id", "next_pc", "taken",
                 "mem_addr", "instrs", "has_trapped", "vec_cache")

    def __init__(self, n_records: int) -> None:
        self.n_records = n_records
        zeros = bytes(8 * n_records)
        self.pc = array("q", zeros)
        self.word_id = array("q", zeros)
        self.next_pc = array("q", zeros)
        self.taken = bytearray(n_records)
        self.mem_addr = array("q", zeros)
        self.instrs: List[Instruction] = []
        self.has_trapped = False
        #: Scratch dict used by the vectorized replay kernel
        #: (:mod:`repro.timing.fastpath_vec`) to memoise per-trace
        #: precomputations (word tables, event passes) across the many
        #: replays that share this decode.  ``None`` until first use.
        self.vec_cache = None

    def __len__(self) -> int:
        return self.n_records


class RecordedTrace:
    """A decoded handle on one serialised execution trace.

    Holds the raw encoded bytes plus the parsed marker index; records
    themselves are decoded lazily by :meth:`records`, so replaying a
    multi-million-instruction trace never materialises it as objects.
    """

    def __init__(self, data: bytes,
                 source: Optional[pathlib.Path] = None,
                 verify: bool = True) -> None:
        if len(data) < _HEADER.size + _FOOTER.size:
            raise TraceFormatError("trace too short for header and footer")
        magic, version = _HEADER.unpack_from(data, 0)
        if magic != TRACE_MAGIC:
            raise TraceFormatError(f"bad trace magic {magic!r}")
        if version != TRACE_VERSION:
            raise TraceFormatError(
                f"trace version {version} unsupported "
                f"(encoder is v{TRACE_VERSION})"
            )
        (crc_header, crc_body, crc_index, index_offset,
         end_magic) = _FOOTER.unpack_from(data, len(data) - _FOOTER.size)
        if end_magic != TRACE_MAGIC:
            raise TraceFormatError("bad trace footer magic")
        if not _HEADER.size <= index_offset <= len(data) - _FOOTER.size:
            raise TraceFormatError("index offset out of range")
        if verify:
            index_end = len(data) - _FOOTER.size
            for section, blob, expected in (
                ("header", data[:_HEADER.size], crc_header),
                ("payload", data[_HEADER.size:index_offset], crc_body),
                ("marker index", data[index_offset:index_end], crc_index),
            ):
                actual = zlib.crc32(blob)
                if actual != expected:
                    raise TraceFormatError(
                        f"{section} checksum mismatch: stored "
                        f"{expected:#010x}, computed {actual:#010x}"
                    )
        try:
            index = json.loads(
                data[index_offset:len(data) - _FOOTER.size].decode("utf-8"))
            self.n_records = int(index["n_records"])
            self.markers: Dict[int, List[int]] = {
                int(mid): [int(s) for s in steps]
                for mid, steps in index["markers"].items()
            }
        except (ValueError, KeyError, TypeError) as exc:
            raise TraceFormatError(f"corrupt marker index: {exc}") from None
        self._data = data
        self._body_end = index_offset
        self.source = source
        self._columns: Optional[TraceColumns] = None

    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, pathlib.Path],
             verify: bool = True) -> "RecordedTrace":
        path = pathlib.Path(path)
        return cls(path.read_bytes(), source=path, verify=verify)

    @property
    def nbytes(self) -> int:
        """Encoded size, including header, index and footer."""
        return len(self._data)

    def __len__(self) -> int:
        return self.n_records

    def marker_step(self, marker_id: int, count: int) -> int:
        """Step index at which ``marker_id`` fired for the ``count``-th
        time — the record at that index *is* the marker instruction."""
        steps = self.markers.get(marker_id, [])
        if count < 1 or count > len(steps):
            raise TraceFormatError(
                f"marker {marker_id} fired {len(steps)} time(s) in the "
                f"trace; firing {count} was requested"
            )
        return steps[count - 1]

    def records(self) -> Iterator[TraceRecord]:
        """Decode the stream front to back (a fresh pass every call)."""
        data = self._data
        end = self._body_end
        pos = _HEADER.size
        prev_next_pc: Optional[int] = None
        # Mirror of the writer's word dictionary: entry i is the i-th
        # distinct word's decoded instruction, so each distinct word is
        # decoded exactly once.
        instrs: List[Instruction] = []
        emitted = 0
        while emitted < self.n_records:
            if pos >= end:
                raise TraceFormatError(
                    f"trace body ends after {emitted} of "
                    f"{self.n_records} records"
                )
            flags = data[pos]
            pos += 1
            if flags & _F_SEQ_PC:
                if prev_next_pc is None:
                    raise TraceFormatError(
                        "first record cannot have an elided pc")
                pc = prev_next_pc
            else:
                pc, pos = _read_uvarint(data, pos)
            instr: Optional[Instruction] = None
            if flags & _F_INSTR:
                word_id, pos = _read_uvarint(data, pos)
                if word_id == len(instrs):
                    # First appearance: the full word follows.
                    word, pos = _read_uvarint(data, pos)
                    instrs.append(decode(word, pc=pc))
                elif word_id > len(instrs):
                    raise TraceFormatError(
                        f"word id {word_id} out of range at record "
                        f"{emitted} (dictionary holds {len(instrs)})"
                    )
                instr = instrs[word_id]
            if flags & _F_SEQ_NEXT:
                next_pc = pc + 4
            else:
                next_pc, pos = _read_uvarint(data, pos)
            mem_addr: Optional[int] = None
            if flags & _F_MEM:
                mem_addr, pos = _read_uvarint(data, pos)
            prev_next_pc = next_pc
            emitted += 1
            yield TraceRecord(pc, instr, next_pc,
                              taken=bool(flags & _F_TAKEN),
                              mem_addr=mem_addr)
        if pos != end:
            raise TraceFormatError(
                f"{end - pos} trailing byte(s) after the last record")

    def columns(self, chunk_records: int = 1 << 15) -> TraceColumns:
        """Decode the whole stream into struct-of-arrays columns.

        One pass over the encoded body fills the preallocated buffers
        of a :class:`TraceColumns` without ever materialising a
        :class:`~repro.sim.trace.TraceRecord`; the result is memoised
        on the handle, so replaying one trace under many timing
        configurations decodes it exactly once.  ``chunk_records``
        bounds how many records are decoded between loop-invariant
        rebinds (the inner loop is restarted per chunk so a replay of
        a multi-million-record trace keeps its working set hot).

        Chunk boundaries are *group-aligned*: a record whose PC is
        delta-linked to its predecessor (``_F_SEQ_PC``) is decoded in
        the same chunk as that predecessor, so a chunk restart never
        lands inside a straight-line record group.  Downstream span
        segmentation (:mod:`repro.timing.fastpath_vec`) relies on this:
        the columns produced are byte-identical for *any* positive
        ``chunk_records`` (pinned by ``tests/test_trace_io.py``).
        """
        if self._columns is not None:
            return self._columns
        if chunk_records < 1:
            raise ValueError("chunk_records must be positive")
        n_records = self.n_records
        cols = TraceColumns(n_records)
        pcs, word_ids = cols.pc, cols.word_id
        next_pcs, takens, mem_addrs = cols.next_pc, cols.taken, cols.mem_addr
        instrs = cols.instrs
        data = self._data
        end = self._body_end
        pos = _HEADER.size
        prev_next_pc = -1
        n_words = 0
        emitted = 0
        try:
            while emitted < n_records:
                stop = min(emitted + chunk_records, n_records)
                while emitted < stop or (
                    # Group alignment: keep decoding past the nominal
                    # stop while the next record elides its PC — it
                    # belongs to the current straight-line group.
                    emitted < n_records and pos < end
                    and data[pos] & _F_SEQ_PC
                ):
                    if pos >= end:
                        raise TraceFormatError(
                            f"trace body ends after {emitted} of "
                            f"{n_records} records"
                        )
                    flags = data[pos]
                    pos += 1
                    if flags & _F_SEQ_PC:
                        if prev_next_pc < 0:
                            raise TraceFormatError(
                                "first record cannot have an elided pc")
                        pc = prev_next_pc
                    else:
                        byte = data[pos]
                        pos += 1
                        if byte < 0x80:
                            pc = byte
                        else:
                            pc = byte & 0x7F
                            shift = 7
                            while True:
                                byte = data[pos]
                                pos += 1
                                pc |= (byte & 0x7F) << shift
                                if byte < 0x80:
                                    break
                                shift += 7
                    if flags & _F_INSTR:
                        byte = data[pos]
                        pos += 1
                        if byte < 0x80:
                            word_id = byte
                        else:
                            word_id = byte & 0x7F
                            shift = 7
                            while True:
                                byte = data[pos]
                                pos += 1
                                word_id |= (byte & 0x7F) << shift
                                if byte < 0x80:
                                    break
                                shift += 7
                        if word_id == n_words:
                            word, pos = _read_uvarint(data, pos)
                            instrs.append(decode(word, pc=pc))
                            n_words += 1
                        elif word_id > n_words:
                            raise TraceFormatError(
                                f"word id {word_id} out of range at record "
                                f"{emitted} (dictionary holds {n_words})"
                            )
                        word_ids[emitted] = word_id
                    else:
                        word_ids[emitted] = -1
                        cols.has_trapped = True
                    if flags & _F_SEQ_NEXT:
                        next_pc = pc + 4
                    else:
                        byte = data[pos]
                        pos += 1
                        if byte < 0x80:
                            next_pc = byte
                        else:
                            next_pc = byte & 0x7F
                            shift = 7
                            while True:
                                byte = data[pos]
                                pos += 1
                                next_pc |= (byte & 0x7F) << shift
                                if byte < 0x80:
                                    break
                                shift += 7
                    if flags & _F_MEM:
                        mem, pos = _read_uvarint(data, pos)
                        mem_addrs[emitted] = mem
                    else:
                        mem_addrs[emitted] = -1
                    pcs[emitted] = pc
                    next_pcs[emitted] = next_pc
                    takens[emitted] = flags & _F_TAKEN
                    prev_next_pc = next_pc
                    emitted += 1
        except IndexError:
            raise TraceFormatError("truncated varint") from None
        if pos != end:
            raise TraceFormatError(
                f"{end - pos} trailing byte(s) after the last record")
        self._columns = cols
        return cols


def read_trace(path: Union[str, pathlib.Path],
               verify: bool = True) -> RecordedTrace:
    """Open and validate a trace file written by :class:`TraceWriter`."""
    return RecordedTrace.open(path, verify=verify)


def trace_from_records(records: Iterable[TraceRecord]) -> RecordedTrace:
    """Encode an in-memory record stream and hand back a trace handle —
    the no-filesystem path used when no trace store is configured."""
    buffer = io.BytesIO()
    writer = TraceWriter(buffer)
    for record in records:
        writer.append(record)
    writer.finish()
    return RecordedTrace(buffer.getvalue())
