#!/usr/bin/env python3
"""Two deeper mechanisms end to end: verified timing simulation and
ISA-level convergent profiling.

Part 1 runs the Section 5.1 *timing-first* methodology: the timing
simulator leads, a golden functional model re-executes and verifies
every retired instruction, and branch-on-random outcomes are forwarded
leader→golden so both take identical branches.

Part 2 closes the Section 7 convergent-profiling loop on a running
program: a controller watches the microbenchmark's edge counters and
re-encodes each site's sampling rate by patching the 4-bit freq field
of its ``brr`` instruction in simulated memory.

Run:  python examples/adaptive_and_verified.py
"""

from repro.core import BranchOnRandomUnit, Lfsr
from repro.sampling import ConvergentController
from repro.timing import CoSimulator
from repro.workloads import build_microbench
from repro.workloads.text import class_counts


def demo_cosim() -> None:
    bench = build_microbench(1500, variant="no-dup", kind="brr",
                             interval=16, seed=2)
    cosim = CoSimulator(bench.program,
                        brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0xFACE)))
    cosim.setup(bench.load_text)
    stats = cosim.run()
    checksum, __ = bench.read_results(cosim.golden)
    print("1. timing-first co-simulation:")
    print(f"   {cosim.verified} instructions verified against the golden "
          f"model; {stats.brr_resolved} brr outcomes forwarded")
    print(f"   golden checksum {checksum:#010x} == expected "
          f"{bench.expected_checksum:#010x}: "
          f"{checksum == bench.expected_checksum}")
    print(f"   window: {stats.cycles} cycles, IPC {stats.ipc:.2f}")


def demo_convergent() -> None:
    bench = build_microbench(24_000, variant="no-dup", kind="brr",
                             interval=1024, seed=4)
    machine = bench.make_machine(
        brr_unit=BranchOnRandomUnit(Lfsr(20, seed=0x2468)))
    controller = ConvergentController(
        machine, bench.brr_site_bindings(),
        initial_field=1,      # start fast: 1/4
        max_field=7,          # back off to 1/256
        stable_polls_to_backoff=2,
        share_tolerance=0.04,
    )
    controller.run(steps_per_poll=10_000, polls=60)

    lower, upper, other = class_counts(bench.text)
    total = lower + 2 * (upper + other)
    true_shares = {0: (upper + other) / total, 1: lower / total,
                   2: upper / total, 3: other / total}
    print("\n2. convergent profiling by brr freq-field patching:")
    print(f"   {'site':<6} {'final rate':>11} {'est. share':>11} "
          f"{'true share':>11} {'samples':>8}")
    for site, info in sorted(controller.summary().items()):
        print(f"   {site:<6} {'1/' + str(int(info['interval'])):>11} "
              f"{info['share']:>11.3f} {true_shares[site]:>11.3f} "
              f"{int(info['samples']):>8}")
    print("   every site converged from 1/4 toward 1/256 as its share "
          "stabilised,\n   spending samples only while information was "
          "still being learned.")


if __name__ == "__main__":
    demo_cosim()
    demo_convergent()
