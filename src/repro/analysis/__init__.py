"""Statistics helpers and the Figure 2 overhead decomposition."""

from .overhead import (
    Decomposition,
    DecompositionRow,
    decompose,
    format_decomposition,
)
from .randomness import (
    autocorrelation,
    conditional_taken_probability,
    gap_cv,
    gap_distribution,
    geometric_gap_test,
    parity_balance,
    placement_report,
)
from .stats import (
    fit_through_origin,
    geometric_mean,
    matched_pair_interval,
    mean,
    sample_std,
    stderr,
    t_critical,
    t_interval,
    welch_t,
)

__all__ = [
    "autocorrelation",
    "conditional_taken_probability",
    "gap_cv",
    "gap_distribution",
    "geometric_gap_test",
    "parity_balance",
    "placement_report",
    "Decomposition",
    "DecompositionRow",
    "decompose",
    "format_decomposition",
    "fit_through_origin",
    "geometric_mean",
    "matched_pair_interval",
    "mean",
    "sample_std",
    "stderr",
    "t_critical",
    "t_interval",
    "welch_t",
]
