"""Section 4.2 sensitivity: LFSR tap selection.

Paper result: comparing four 32-bit tap configurations — (32,31,30,10),
(32,19,18,13), (32,31,30,29,28,22), (32,22,16,15,12,11) — the variation
in profile quality is "below the level of significance" relative to
the distribution achieved from different LFSR initial values.
"""


from _shared import run_once, report

from repro.experiments import (
    format_sensitivity_result,
    seed_noise_baseline,
    taps_sensitivity,
)


def test_taps_sensitivity(benchmark):
    result = run_once(
        benchmark,
        lambda: taps_sensitivity(benchmark="bloat", seeds=(0, 1, 2, 3),
                                 scale=0.02),
    )
    report(format_sensitivity_result(result))

    assert len(result.groups) == 4
    assert not result.significant  # matches the paper
    means = list(result.group_means().values())
    assert max(means) - min(means) < 3.0


def test_seed_noise_baseline(benchmark):
    noise = run_once(
        benchmark,
        lambda: seed_noise_baseline(benchmark="bloat",
                                    seeds=tuple(range(6)), scale=0.02),
    )
    report(f"\nseed-variation baseline: mean={noise['mean']:.2f}% "
          f"std={noise['std']:.3f}% range=[{noise['min']:.2f}, "
          f"{noise['max']:.2f}]")
    assert noise["std"] < 3.0
