"""The Section 3.3 hardware-cost summary as a reproducible table."""

from __future__ import annotations

from typing import List

from ..core.cost import CostEstimate, claims_hold, estimate_cost


def cost_rows() -> List[CostEstimate]:
    """Design points: single-issue, 2/4-wide replicated, 4-wide shared."""
    return [
        estimate_cost(lfsr_width=20, decode_width=1),
        estimate_cost(lfsr_width=20, decode_width=2, replicated=True),
        estimate_cost(lfsr_width=20, decode_width=4, replicated=True),
        estimate_cost(lfsr_width=20, decode_width=4, replicated=False),
        estimate_cost(lfsr_width=16, decode_width=1),
        estimate_cost(lfsr_width=32, decode_width=1),
    ]


def format_cost_table() -> str:
    lines = [
        "Section 3.3: branch-on-random hardware budget",
        f"{'LFSR':>5} {'decode':>7} {'LFSRs':>6} {'state bits':>11} "
        f"{'gates (macro)':>14} {'gates (2-input)':>16}",
    ]
    for est in cost_rows():
        sharing = "x" if est.replicated else "shared"
        lines.append(
            f"{est.lfsr_width:>5} {est.decode_width:>7} "
            f"{est.lfsr_count:>4}{sharing:<2} {est.state_bits:>11} "
            f"{est.gates_macro:>14} {est.gates_two_input:>16}"
        )
    lines.append(
        "paper claims (20 bits/<100 gates single-issue; "
        f"<100 bits/<400 gates 4-wide): {'HOLD' if claims_hold() else 'FAIL'}"
    )
    return "\n".join(lines)
