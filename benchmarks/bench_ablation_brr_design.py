"""Ablation: how much does each Section 3.3 design rule buy?

The paper's brr microarchitecture has three load-bearing rules:
resolve at decode (front-end flush only), always-predict-not-taken
without touching the predictors, and commit not-taken brr at decode
(no ROB entry).  This bench re-times the microbenchmark with the rules
disabled, turning brr back into an ordinary conditional branch, and
shows the overhead climbing toward counter-based territory.
"""


from _shared import MICRO_CHARS, run_once, report

from repro.core.brr import BranchOnRandomUnit
from repro.timing.config import PAPER_CONFIG
from repro.timing.runner import overhead_percent, time_window
from repro.workloads.microbench import END_MARKER, WARM_MARKER, build_microbench

ABLATIONS = (
    ("paper design", {}),
    ("resolve in back end", {"brr_resolve_at_decode": False}),
    ("occupies ROB", {"brr_commits_at_decode": False}),
    ("pollutes predictors", {"brr_uses_predictor": True}),
    ("all three (ordinary branch)", {
        "brr_resolve_at_decode": False,
        "brr_commits_at_decode": False,
        "brr_uses_predictor": True,
    }),
)


def run_ablation(interval):
    n_chars = min(MICRO_CHARS, 4000)
    base_bench = build_microbench(n_chars, variant="none", seed=1)
    base = time_window(base_bench.program, begin=(WARM_MARKER, 1),
                       end=(END_MARKER, 1), setup=base_bench.load_text)
    rows = []
    for label, overrides in ABLATIONS:
        bench = build_microbench(n_chars, variant="no-dup", kind="brr",
                                 interval=interval, include_payload=False,
                                 seed=1)
        result = time_window(
            bench.program, begin=(WARM_MARKER, 1), end=(END_MARKER, 1),
            setup=bench.load_text, brr_unit=BranchOnRandomUnit(),
            config=PAPER_CONFIG.with_overrides(**overrides),
        )
        rows.append((label, overhead_percent(base.cycles, result.cycles)))
    return rows


def test_brr_design_rules(benchmark):
    results = run_once(
        benchmark, lambda: {iv: run_ablation(iv) for iv in (8, 256)})

    for interval, rows in results.items():
        report(f"\nAblation of the Section 3.3 brr design rules "
              f"(no-dup, interval {interval}):")
        for label, overhead in rows:
            report(f"  {label:<30} {overhead:6.2f}% overhead")

    high_rate = dict(results[8])
    low_rate = dict(results[256])
    # Back-end resolution is the most expensive regression at a high
    # sampling rate (a full pipeline squash per taken brr).
    assert high_rate["resolve in back end"] > high_rate["paper design"] + 5
    # In brr's target regime (low rates) the paper design is at worst
    # within noise of every ablation and strictly beats back-end
    # resolution.  (At high rates, letting the 100%-taken brra into the
    # BTB can win — footnote 4 reserves brra for *infrequent* jumps,
    # and interval 8 makes it frequent; the ablation exposes that.)
    assert low_rate["paper design"] <= min(
        v for k, v in low_rate.items() if k != "paper design") + 1.0
    assert low_rate["resolve in back end"] >= low_rate["paper design"]
