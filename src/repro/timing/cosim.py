"""Timing-first co-simulation (Section 5.1 methodology).

"This simulator uses the timing-first approach, where the timing
simulator runs ahead and uses a 'golden' functional model (Simics) to
verify the results produced by instructions as they commit. ... In
timing simulation mode, the timing simulator (as the leading
simulator) is responsible for functionally simulating the
branch-on-random and communicating its computed outcome to Simics so
that both simulators compute the same outcome."

:class:`CoSimulator` reproduces that arrangement with two functional
machines: the *leading* machine drives the timing model and owns the
branch-on-random unit; the *golden* machine re-executes every retired
instruction and is checked against the leader's architectural state.
Branch-on-random outcomes are forwarded from the leader through a
replay queue (:class:`ReplayUnit`) so the golden model takes exactly
the same branches without owning an LFSR — precisely the
communication channel the paper describes.

A divergence raises :class:`CosimDivergence`, which is how a
not-quite-correct timing simulator is caught without having to be
"100% functionally-correct" itself.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..core.brr import RandomSource
from ..isa.program import Program
from ..sim.machine import Machine
from .config import TimingConfig
from .pipeline import TimingSimulator, TimingStats


class CosimDivergence(Exception):
    """Leading and golden simulators disagree."""

    def __init__(self, pc: int, field: str, leading, golden) -> None:
        self.pc = pc
        self.field = field
        self.leading = leading
        self.golden = golden
        super().__init__(
            f"divergence at pc={pc:#x}: {field} leading={leading!r} "
            f"golden={golden!r}"
        )


class ReplayUnit(RandomSource):
    """The leader→golden outcome channel for branch-on-random.

    The leading simulator pushes each resolved outcome; the golden
    machine pops them in program order.  Architecturally legitimate
    because brr promises no particular sequence — only that both
    simulators agree, which is exactly what the channel enforces.
    """

    def __init__(self) -> None:
        self._outcomes: Deque[bool] = deque()

    def push(self, outcome: bool) -> None:
        self._outcomes.append(outcome)

    def resolve(self, field: int) -> bool:
        if not self._outcomes:
            raise CosimDivergence(0, "brr outcome queue", "empty", "pop")
        return self._outcomes.popleft()

    def __len__(self) -> int:
        return len(self._outcomes)


class _RecordingUnit(RandomSource):
    """Wraps the leader's real unit, copying outcomes to the replay
    channel."""

    def __init__(self, inner: RandomSource, channel: ReplayUnit) -> None:
        self.inner = inner
        self.channel = channel

    def resolve(self, field: int) -> bool:
        outcome = self.inner.resolve(field)
        self.channel.push(outcome)
        return outcome


class CoSimulator:
    """Run the timing model with per-instruction golden verification."""

    def __init__(
        self,
        program: Program,
        brr_unit: Optional[RandomSource] = None,
        config: Optional[TimingConfig] = None,
        memory_size: int = 1 << 20,
        check_registers: bool = True,
    ) -> None:
        self.channel = ReplayUnit()
        leading_unit = (_RecordingUnit(brr_unit, self.channel)
                        if brr_unit is not None else None)
        self.leading = Machine(program, memory_size=memory_size,
                               brr_unit=leading_unit)
        self.golden = Machine(program, memory_size=memory_size,
                              brr_unit=self.channel)
        self.timing = TimingSimulator(config)
        self.check_registers = check_registers
        #: Instructions verified so far.
        self.verified = 0

    def setup(self, initialise) -> None:
        """Apply identical memory setup to both machines."""
        initialise(self.leading)
        initialise(self.golden)

    def step(self) -> None:
        """Advance one instruction through timing + verification."""
        record = self.leading.step()
        self.timing.step(record)
        golden_record = self.golden.step()
        # Verify the retired instruction: control flow first (where a
        # broken timing/functional model diverges soonest), then the
        # architectural register file.
        if golden_record.pc != record.pc:
            raise CosimDivergence(record.pc, "pc", record.pc,
                                  golden_record.pc)
        if golden_record.next_pc != record.next_pc:
            raise CosimDivergence(record.pc, "next_pc", record.next_pc,
                                  golden_record.next_pc)
        if self.check_registers and self.leading.regs != self.golden.regs:
            for index, (lead, gold) in enumerate(
                    zip(self.leading.regs, self.golden.regs)):
                if lead != gold:
                    raise CosimDivergence(record.pc, f"r{index}", lead, gold)
        self.verified += 1

    def run(self, max_steps: int = 20_000_000) -> TimingStats:
        """Co-simulate to halt; returns the timing statistics."""
        steps = 0
        while not self.leading.halted and steps < max_steps:
            self.step()
            steps += 1
        if not self.leading.halted:
            raise RuntimeError(f"did not halt within {max_steps} steps")
        if self.golden.halted != self.leading.halted:
            raise CosimDivergence(self.leading.pc, "halted",
                                  self.leading.halted, self.golden.halted)
        return self.timing.stats
