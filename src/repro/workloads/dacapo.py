"""Synthetic DaCapo-like method-invocation workloads (Section 4).

The paper measures sampling accuracy on eight DaCapo benchmarks run on
Jikes, ordered by total method invocations at size "default": fop (7M),
antlr (17M), bloat (93M), lusearch (108M), xalan (109M), jython (170M),
pmd (195M), luindex (212M).  What the accuracy experiments actually
consume is the *sequence of instrumentation-site events* — the stream
of method identifiers in invocation order — so each benchmark is
modelled as such a stream with the two properties that drive the
paper's results:

1. a Zipf-like skew in method frequency (profiles are dominated by a
   hot subset of methods, which is what makes sampling viable);
2. for ``jython`` and (milder) ``pmd``, long *resonant* loop regions:
   footnote 7's pathology, where "a loop body containing calls to two
   leaf methods will result in only one of the two methods getting
   sampled for a counter-based sampling interval that is a multiple of
   two".  Those regions emit a fixed repeating pattern of leaf-method
   calls whose period divides the power-of-two sampling intervals.

Streams are produced as int32 numpy chunks so the full-scale runs
(tens of millions of events) stay fast and memory bounded.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class DacapoSpec:
    """Shape parameters of one synthetic benchmark."""

    name: str
    invocations_millions: float
    methods: int = 400
    zipf_s: float = 1.1
    #: Fraction of all events inside resonant patterned loop regions.
    pattern_fraction: float = 0.0
    #: The repeating call pattern's period in events.  A fixed-interval
    #: counter whose interval is a multiple of the period systematically
    #: samples a single residue of the pattern (footnote 7).
    pattern_period: int = 2
    #: Number of distinct leaf methods in the pattern; the period is
    #: split into this many equal runs (``pattern_runs == period`` gives
    #: strict alternation, the paper's two-leaf loop body).
    pattern_runs: int = 2
    #: Length of one patterned region in events (a multiple of a large
    #: power of two so region starts stay phase-aligned with the
    #: counters — long-running inner loops, as in jython).
    pattern_block: int = 1 << 14
    seed: int = 0

    @property
    def invocations(self) -> int:
        return int(self.invocations_millions * 1_000_000)


#: The eight benchmarks in the paper's invocation-count order.
DACAPO_BENCHMARKS: Tuple[DacapoSpec, ...] = (
    DacapoSpec("fop", 7, methods=250, seed=101),
    DacapoSpec("antlr", 17, methods=300, seed=102),
    DacapoSpec("bloat", 93, methods=450, seed=103),
    DacapoSpec("lusearch", 108, methods=350, seed=104),
    DacapoSpec("xalan", 109, methods=400, seed=105),
    # jython: a loop body alternating two leaf methods (period 2) —
    # resonates with every power-of-two interval (Figures 9 and 10).
    DacapoSpec(
        "jython", 170, methods=450, seed=106,
        pattern_fraction=0.16, pattern_period=2, pattern_runs=2,
    ),
    # pmd: a longer nested-call chain (period 2048 as two 1024-call
    # runs) — an interval of 2^13 samples one run only, while 2^10
    # still covers both (the pathology "easier to see" in Figure 10).
    DacapoSpec(
        "pmd", 195, methods=500, seed=107,
        pattern_fraction=0.14, pattern_period=2048, pattern_runs=2,
    ),
    DacapoSpec("luindex", 212, methods=300, seed=108),
)


def _spec_by_name(name: str) -> DacapoSpec:
    for spec in DACAPO_BENCHMARKS:
        if spec.name == name:
            return spec
    raise KeyError(f"no such benchmark: {name!r}")


def spec_by_name(name: str) -> DacapoSpec:
    """Deprecated shim over the workload registry; see
    :func:`repro.workloads.registry.get_workload`."""
    warnings.warn(
        "spec_by_name() is deprecated; use get_workload(name).spec instead",
        DeprecationWarning, stacklevel=2)
    return _spec_by_name(name)


def method_weights(spec: DacapoSpec) -> np.ndarray:
    """Zipf-like method-frequency distribution, seeded per benchmark.

    Method ids are assigned hot-first: id 0 is the hottest.  The
    pattern's leaf methods are ids ``0..period-1``, so the resonant
    regions involve methods that dominate the profile (as the paper's
    jython loop bodies do)."""
    ranks = np.arange(1, spec.methods + 1, dtype=np.float64)
    weights = 1.0 / ranks ** spec.zipf_s
    rng = np.random.default_rng(spec.seed)
    weights *= rng.uniform(0.7, 1.3, size=spec.methods)  # benchmark texture
    weights[::-1].sort()
    return weights / weights.sum()


def event_chunks(
    spec: DacapoSpec,
    scale: float = 0.1,
    seed: int = 0,
    chunk_size: int = 1 << 20,
) -> Iterator[np.ndarray]:
    """Yield the benchmark's method-invocation stream in int32 chunks.

    ``scale`` shrinks the paper's invocation count (pure-Python budget;
    see EXPERIMENTS.md).  ``seed`` perturbs the stream, for error-bar
    runs, without changing the benchmark's shape parameters.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    total = max(1, int(spec.invocations * scale))
    weights = method_weights(spec)
    rng = np.random.default_rng((spec.seed << 16) ^ seed)

    run_length = max(1, spec.pattern_period // spec.pattern_runs)
    pattern = np.repeat(
        np.arange(spec.pattern_runs, dtype=np.int32), run_length
    )
    pattern_block = np.tile(
        pattern, max(1, spec.pattern_block // pattern.size)
    )
    # Alternate random segments with patterned regions so that the
    # requested fraction of events is patterned.  Segment lengths are
    # multiples of a large power of two, keeping region starts
    # phase-aligned with power-of-two counters (resonance).
    if spec.pattern_fraction > 0:
        random_block = int(
            len(pattern_block) * (1 - spec.pattern_fraction)
            / spec.pattern_fraction
        )
        random_block = max(1 << 14, (random_block >> 14) << 14)
    else:
        random_block = total

    produced = 0
    buffer: List[np.ndarray] = []
    buffered = 0

    def flush_ready() -> Iterator[np.ndarray]:
        nonlocal buffer, buffered
        while buffered >= chunk_size:
            merged = np.concatenate(buffer)
            yield merged[:chunk_size]
            rest = merged[chunk_size:]
            buffer = [rest] if rest.size else []
            buffered = rest.size

    emitting_pattern = False
    while produced < total:
        if emitting_pattern and spec.pattern_fraction > 0:
            segment = pattern_block
        else:
            segment = rng.choice(
                spec.methods, size=random_block, p=weights
            ).astype(np.int32)
        emitting_pattern = not emitting_pattern
        remaining = total - produced
        if segment.size > remaining:
            segment = segment[:remaining]
        produced += segment.size
        buffer.append(segment)
        buffered += segment.size
        yield from flush_ready()
    if buffered:
        yield np.concatenate(buffer)


def generate_events(spec: DacapoSpec, scale: float = 0.1,
                    seed: int = 0) -> np.ndarray:
    """Deprecated shim over the workload registry; see
    :func:`repro.workloads.registry.get_workload` (``.events()``)."""
    warnings.warn(
        "generate_events() is deprecated; use "
        "get_workload(name, scale=..., seed=...).events() instead",
        DeprecationWarning, stacklevel=2)
    return np.concatenate(list(event_chunks(spec, scale=scale, seed=seed)))
