"""Human-readable summaries of timing results.

The paper characterises its microbenchmark baseline with a handful of
pipeline statistics (branch accuracy, cache hit rates, how often fetch
runs at full speed); :func:`format_stats` prints the same kind of
summary for any simulated window, and :func:`compare` prints the
framework-vs-baseline view the evaluation sections are built from.
"""

from __future__ import annotations

from typing import List, Optional

from .pipeline import TimingStats


def format_stats(stats: TimingStats, title: str = "timing summary") -> str:
    """A fixed-width block summarising one simulated window."""
    lines = [
        title,
        f"  instructions        {stats.instructions:>12}",
        f"  cycles              {stats.cycles:>12}",
        f"  IPC                 {stats.ipc:>12.3f}",
        f"  cond branches       {stats.cond_branches:>12}"
        f"   (accuracy {100 * stats.branch_accuracy:.2f}%)",
        f"  redirects           {stats.frontend_redirects:>12}"
        f" front-end / {stats.backend_redirects} back-end",
        f"  fetch breaks        {stats.fetch_breaks:>12}",
        f"  loads / stores      {stats.loads:>12} / {stats.stores}",
        f"  cache misses        {stats.icache_misses:>12} I"
        f" / {stats.dcache_misses} D / {stats.l2_misses} L2",
    ]
    if stats.brr_resolved:
        lines.append(
            f"  branch-on-random    {stats.brr_resolved:>12}"
            f"   ({stats.brr_taken} taken"
            + (f", {stats.brr_packet_splits} packet splits"
               if stats.brr_packet_splits else "")
            + ")"
        )
    if stats.rob_stall_cycles:
        lines.append(f"  ROB stall cycles    {stats.rob_stall_cycles:>12}")
    return "\n".join(lines)


def compare(base: TimingStats, variants: List[tuple],
            title: Optional[str] = None) -> str:
    """Overhead table: ``variants`` is a list of (label, stats) pairs,
    each compared against ``base``."""
    if base.cycles <= 0:
        raise ValueError("baseline has no cycles")
    lines = [title or "overhead vs. baseline",
             f"  {'variant':<28} {'cycles':>10} {'overhead':>9} "
             f"{'added instrs':>13}"]
    lines.append(f"  {'baseline':<28} {base.cycles:>10} {'—':>9} {'—':>13}")
    for label, stats in variants:
        overhead = 100.0 * (stats.cycles - base.cycles) / base.cycles
        added = stats.instructions - base.instructions
        lines.append(
            f"  {label:<28} {stats.cycles:>10} {overhead:>8.2f}% "
            f"{added:>13}"
        )
    return "\n".join(lines)
