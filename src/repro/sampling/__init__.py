"""Sampling frameworks: counter-based, hardware-counter, branch-on-
random, convergent profiling and online auditing."""

from .auditing import VersionAuditor, VersionStats
from .convergent import ConvergentProfiler, SiteState
from .convergent_isa import ConvergentController, SiteBinding, SiteControl
from .positions import (
    brr_decision_array,
    brr_positions,
    overlap_from_counts,
    periodic_positions,
    profile_counts,
)
from .samplers import (
    BrrSampler,
    FullSampler,
    HardwareCounterSampler,
    Sampler,
    SoftwareCounterSampler,
    collect_profile,
)

__all__ = [
    "VersionAuditor",
    "VersionStats",
    "ConvergentProfiler",
    "SiteState",
    "ConvergentController",
    "SiteBinding",
    "SiteControl",
    "brr_decision_array",
    "brr_positions",
    "overlap_from_counts",
    "periodic_positions",
    "profile_counts",
    "BrrSampler",
    "FullSampler",
    "HardwareCounterSampler",
    "Sampler",
    "SoftwareCounterSampler",
    "collect_profile",
]
