"""Section 4.2 sensitivity analyses.

Two LFSR design choices are varied and compared against the noise
baseline of seed variation:

1. **Tap selection** — four 32-bit configurations, two with four taps
   at (32, 31, 30, 10) and (32, 19, 18, 13) and two with six taps at
   (32, 31, 30, 29, 28, 22) and (32, 22, 16, 15, 12, 11).  The paper
   "found variation in the profile quality below the level of
   significance".
2. **AND-input selection** — contiguous vs. varied-spacing bit
   selection for the probability AND tree.

Significance is assessed exactly as the paper describes: the variation
across configurations is compared with the distribution of results
achieved from initialising the LFSR with different values (seeds),
using a one-way ANOVA across configuration groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy import stats as scipy_stats

from ..core.taps import PAPER_SENSITIVITY_TAPS_32
from ..workloads.dacapo import spec_by_name
from .accuracy import run_accuracy


@dataclass
class SensitivityResult:
    """Accuracy samples per configuration plus the significance test."""

    label: str
    groups: Dict[str, List[float]]
    f_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Variation beyond the seed-noise level at alpha = 0.05."""
        return self.p_value < 0.05

    def group_means(self) -> Dict[str, float]:
        return {name: sum(vals) / len(vals)
                for name, vals in self.groups.items()}


def _anova(groups: Dict[str, List[float]]) -> Tuple[float, float]:
    samples = [vals for vals in groups.values() if len(vals) > 1]
    if len(samples) < 2:
        raise ValueError("need at least two groups of two samples")
    f_stat, p_value = scipy_stats.f_oneway(*samples)
    return float(f_stat), float(p_value)


def taps_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    taps_sets: Sequence[Tuple[int, ...]] = PAPER_SENSITIVITY_TAPS_32,
) -> SensitivityResult:
    """Profile accuracy across the four 32-bit tap configurations."""
    spec = spec_by_name(benchmark)
    groups: Dict[str, List[float]] = {}
    for taps in taps_sets:
        label = ",".join(str(t) for t in taps)
        groups[label] = [
            run_accuracy(spec, interval, schemes=("random",), scale=scale,
                         seed=seed, lfsr_width=32, taps=taps)["random"].accuracy
            for seed in seeds
        ]
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"taps sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def bit_policy_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    lfsr_width: int = 20,
) -> SensitivityResult:
    """Contiguous vs. spaced AND-input selection."""
    spec = spec_by_name(benchmark)
    groups = {
        policy: [
            run_accuracy(spec, interval, schemes=("random",), scale=scale,
                         seed=seed, lfsr_width=lfsr_width,
                         policy=policy)["random"].accuracy
            for seed in seeds
        ]
        for policy in ("contiguous", "spaced")
    }
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"AND-input sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def width_sensitivity(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = (0, 1, 2, 3),
    scale: float = 0.02,
    widths: Sequence[int] = (16, 20, 24, 32),
) -> SensitivityResult:
    """Profile accuracy across LFSR register widths.

    The paper fixes 16 bits as the minimum and recommends 20; this
    companion analysis confirms the choice is free: width (beyond the
    16-bit minimum) does not measurably change profile quality, so it
    can be selected purely for AND-input spacing and hardware budget.
    """
    spec = spec_by_name(benchmark)
    groups = {
        f"{width}-bit": [
            run_accuracy(spec, interval, schemes=("random",), scale=scale,
                         seed=seed, lfsr_width=width)["random"].accuracy
            for seed in seeds
        ]
        for width in widths
    }
    f_stat, p_value = _anova(groups)
    return SensitivityResult(
        label=f"LFSR-width sensitivity ({benchmark}, 1/{interval})",
        groups=groups, f_statistic=f_stat, p_value=p_value,
    )


def seed_noise_baseline(
    benchmark: str = "bloat",
    interval: int = 1 << 10,
    seeds: Sequence[int] = tuple(range(8)),
    scale: float = 0.02,
) -> Dict[str, float]:
    """The seed-variation distribution everything is compared against."""
    spec = spec_by_name(benchmark)
    accuracies = [
        run_accuracy(spec, interval, schemes=("random",), scale=scale,
                     seed=seed)["random"].accuracy
        for seed in seeds
    ]
    mean = sum(accuracies) / len(accuracies)
    variance = sum((a - mean) ** 2 for a in accuracies) / (len(accuracies) - 1)
    return {
        "mean": mean,
        "std": variance ** 0.5,
        "min": min(accuracies),
        "max": max(accuracies),
    }


def format_result(result: SensitivityResult) -> str:
    lines = [result.label]
    for name, mean in result.group_means().items():
        lines.append(f"  {name:<24} mean accuracy {mean:6.2f}%")
    verdict = ("SIGNIFICANT (unexpected!)" if result.significant
               else "not significant (matches the paper)")
    lines.append(
        f"  ANOVA F={result.f_statistic:.3f} p={result.p_value:.3f} "
        f"-> {verdict}"
    )
    return "\n".join(lines)
