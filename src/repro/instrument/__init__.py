"""CFG IR and the Arnold-Ryder sampling transformations."""

from .arnold_ryder import (
    DEFAULT_COUNTER_ADDR,
    VARIANTS,
    SamplingSpec,
    apply_framework,
    full_duplication,
    full_instrumentation,
    no_duplication,
    strip_instrumentation,
)
from .cfg import Block, Cfg, CfgError, Terminator

__all__ = [
    "DEFAULT_COUNTER_ADDR",
    "VARIANTS",
    "SamplingSpec",
    "apply_framework",
    "full_duplication",
    "full_instrumentation",
    "no_duplication",
    "strip_instrumentation",
    "Block",
    "Cfg",
    "CfgError",
    "Terminator",
]
