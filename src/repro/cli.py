"""Command-line interface: regenerate any of the paper's figures.

Usage::

    python -m repro figure9 [--scale 0.05] [--sample fraction:0.25] [--seed N]
    python -m repro figure10 [--scale 0.05] [--sample fraction:0.25] [--seed N]
    python -m repro figure12 [--scale 3] [--sample budget:3] [--seed N]
    python -m repro figure13 [--scale 4000] [--sample fraction:0.25] [--seed N]
    python -m repro figure14 [--scale 4000] [--sample adaptive:12] [--seed N]
    python -m repro figure2  [--scale 4000] [--seed N]
    python -m repro sensitivity [--scale 0.02]
    python -m repro cost
    python -m repro scorecard  # PASS/FAIL every headline claim (~1 min)
    python -m repro fuzz [--scale 25] [--seed N]  # cross-path differential fuzz
    python -m repro entropy [--scale 64] [--sample budget:12] [--seed N]
    python -m repro all      # everything (several minutes)
    python -m repro cache [stats|prune|clear] [--store results|traces|all]
    python -m repro bench    # fastpath-vs-golden replay benchmark
    python -m repro resume RUN.jsonl   # finish an interrupted run
    python -m repro doctor [RUN.jsonl] [--repair]  # integrity audit
    python -m repro serve [--host H] [--port P]  # HTTP simulation service
    python -m repro chaos-serve [--rate 0.2] [--requests 6]  # chaos harness

``--scale`` is the one scaling knob and is interpreted per command:
fraction of the paper's invocation counts for the accuracy figures
(default 0.05), outer-loop multiplier for figure12 (default 3),
microbenchmark characters for figures 13/14/2 (default 4000),
generated windows for `fuzz` (default 25), and measured-loop
iterations for `entropy` (default 64).  The old
``--jvm-scale`` and ``--chars`` flags still work as hidden deprecated
aliases that warn on stderr.

Every command handler routes through :mod:`repro.api`, so ``python -m
repro X`` and ``repro.api.run_X()`` are the same code path.
Execution goes through the shared :mod:`repro.engine` (see
``docs/engine.md``): ``--jobs N`` / ``REPRO_JOBS`` fans simulation
windows out across worker processes with per-window ``--timeout``,
bounded ``--retries`` and a ``--failure-policy`` (``raise`` | ``retry``
| ``skip``); results are memoised under ``REPRO_CACHE_DIR`` (default
``~/.cache/repro``), and completed windows are durably cached the
moment they finish, so ``repro resume <run.jsonl>`` replays an
interrupted invocation and executes only the missing windows.  Timed
windows record/replay functional traces through the store described in
``docs/trace_format.md`` (``REPRO_TRACE=0`` disables), ``--sample``
runs a figure's window population under a sampling plan
(``exhaustive`` | ``fraction:F`` | ``budget:N`` | ``adaptive:N`` —
see ``docs/sampling.md``) and reports estimates with confidence
intervals instead of the exhaustive table, ``--seed`` pins the uniform
experiment seed (workloads and plan selection; also ``REPRO_SEED``),
``--json``
switches stdout to a machine-readable document per command, and
``--out DIR`` additionally writes ``<command>.txt`` (plus
``BENCH_<command>.json`` and the per-window ``BENCH_windows.jsonl``
trajectory in ``--json`` mode).  ``scorecard`` exits non-zero when any
headline claim fails, ``fuzz`` exits non-zero on any cross-path
divergence (and writes ``FUZZ_divergences.jsonl`` under ``--out``);
``cache`` inspects or maintains both on-disk stores.

Both stores are checksummed end to end (``docs/integrity.md``):
``--integrity`` (or ``REPRO_INTEGRITY``) picks what a corrupt entry
becomes — ``repair`` (the default: quarantine and transparently
re-execute), ``verify`` (quarantine and fail) or ``trust`` — and
``repro doctor [RUN.jsonl]`` audits every store entry plus an optional
run ledger, exiting non-zero on unrepaired corruption (``--repair``
quarantines/rewrites in place).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import pathlib
import sys
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

from .engine import (
    INTEGRITY_POLICIES,
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    RunRecorder,
    format_doctor,
    read_run_log,
    read_run_log_checked,
    run_doctor,
    set_engine,
)

#: (data, text) produced by one command.
CommandResult = Tuple[Any, str]

#: Per-command defaults of the unified ``--scale`` flag.
ACCURACY_SCALE_DEFAULT = 0.05
JVM_SCALE_DEFAULT = 3.0
MICRO_CHARS_DEFAULT = 4000


def _warn_deprecated(old: str, new: str) -> None:
    message = f"{old} is deprecated; use {new}"
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    print(f"warning: {message}", file=sys.stderr)


def _accuracy_scale(args) -> float:
    return ACCURACY_SCALE_DEFAULT if args.scale is None else args.scale


def _jvm_scale(args) -> float:
    """Figure 12's ``--scale`` (outer-loop multiplier), honouring the
    deprecated ``--jvm-scale`` alias."""
    if args.jvm_scale is not None:
        _warn_deprecated("--jvm-scale", "--scale")
        if args.scale is None:
            return args.jvm_scale
    return JVM_SCALE_DEFAULT if args.scale is None else args.scale


def _micro_chars(args) -> int:
    """Figures 13/14/2's ``--scale`` (microbenchmark characters),
    honouring the deprecated ``--chars`` alias."""
    if args.chars is not None:
        _warn_deprecated("--chars", "--scale")
        if args.scale is None:
            return args.chars
    return MICRO_CHARS_DEFAULT if args.scale is None else int(args.scale)


def _figure9(args) -> CommandResult:
    from . import api

    result = api.run_figure9(scale=_accuracy_scale(args),
                             sample=args.sample, seed=args.seed)
    return result.data, result.text


def _figure10(args) -> CommandResult:
    from . import api

    result = api.run_figure10(scale=_accuracy_scale(args),
                              sample=args.sample, seed=args.seed)
    return result.data, result.text


def _figure12(args) -> CommandResult:
    from . import api

    result = api.run_figure12(scale=_jvm_scale(args),
                              sample=args.sample, seed=args.seed)
    return result.data, result.text


def _figure13(args) -> CommandResult:
    from . import api

    result = api.run_figure13(scale=_micro_chars(args),
                              sample=args.sample, seed=args.seed)
    return result.data, result.text


def _figure14(args) -> CommandResult:
    from . import api

    result = api.run_figure14(scale=_micro_chars(args),
                              sample=args.sample, seed=args.seed)
    return result.data, result.text


def _figure2(args) -> CommandResult:
    from . import api

    result = api.run_figure2(scale=_micro_chars(args), seed=args.seed)
    return result.data, result.text


def _sensitivity(args) -> CommandResult:
    from . import api

    result = api.run_sensitivity(scale=_accuracy_scale(args),
                                 chars=_micro_chars(args))
    return result.data, result.text


def _cost(args) -> CommandResult:
    from . import api

    result = api.run_cost()
    return result.data, result.text


def _scorecard(args) -> CommandResult:
    from . import api

    result = api.run_scorecard(quick=_accuracy_scale(args) <= 0.02)
    return result.data, result.text


def _fuzz(args) -> CommandResult:
    from . import api

    windows = 25 if args.scale is None else int(args.scale)
    result = api.run_fuzz(windows=windows, seed=args.seed,
                          serve_diff=args.serve_diff)
    return result.data, result.text


def _entropy(args) -> CommandResult:
    from . import api

    iterations = 64 if args.scale is None else int(args.scale)
    result = api.run_entropy(scale=iterations, sample=args.sample,
                             seed=args.seed)
    return result.data, result.text


COMMANDS = {
    "figure9": _figure9,
    "figure10": _figure10,
    "figure12": _figure12,
    "figure13": _figure13,
    "figure14": _figure14,
    "figure2": _figure2,
    "sensitivity": _sensitivity,
    "cost": _cost,
    "scorecard": _scorecard,
    "fuzz": _fuzz,
    "entropy": _entropy,
}

#: Commands whose window population honours ``--sample``.
SAMPLED_COMMANDS = ("figure9", "figure10", "figure12", "figure13",
                    "figure14", "entropy")

#: Commands whose workload/plan seeding honours ``--seed``.
SEEDED_COMMANDS = SAMPLED_COMMANDS + ("figure2", "fuzz", "chaos-serve")

#: ``repro cache`` actions; the command lives outside COMMANDS so that
#: ``repro all`` regenerates figures without touching the stores.
CACHE_ACTIONS = ("stats", "prune", "clear")


def _bench_command(args, out_dir: Optional[pathlib.Path]) -> Tuple[Any, str, int]:
    """``repro bench``: fastpath-vs-golden replay benchmark.

    Runs the 19 scorecard windows through both replay implementations
    (cold: record in memory, bypass both stores), asserts the stats
    are byte-identical, and emits the machine-readable perf trajectory
    as ``BENCH_timing.json`` when ``--out`` is given.  Exits non-zero
    on any divergence — this is the CI perf-smoke gate.
    """
    from .experiments import bench_timing, format_bench

    data = bench_timing()
    if out_dir is not None:
        (out_dir / "BENCH_timing.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data, format_bench(data), 0 if data["aggregate"]["identical"] else 1


def _cache_command(args, engine: ExperimentEngine) -> CommandResult:
    """Inspect or maintain the result cache and/or the trace store.

    ``--store`` narrows the action to one store; the default acts on
    both, which is what the pre-selector command always did.
    """
    action = args.action or "stats"
    selector = args.store or "all"
    stores = []
    if selector in ("results", "all"):
        stores.append(("results", "result cache", engine.cache))
    if selector in ("traces", "all"):
        stores.append(("traces", "trace store", engine.trace_store))
    data: Dict[str, Any] = {"action": action, "store": selector}
    if action in ("prune", "clear"):
        data["removed"] = {name: getattr(store, action)()
                           for name, _, store in stores}
    for name, _, store in stores:
        data[name] = store.stats()
    lines = []
    if "removed" in data:
        removed = ", ".join(f"{count} {name} entries" for name, count
                            in sorted(data["removed"].items()))
        lines.append(f"{action}: removed {removed}")
    for name, title, _ in stores:
        stats = data[name]
        health = stats["integrity"]
        lines.append(
            f"{title:<12} {stats['entries']:>6} entries  "
            f"{stats['bytes']:>12} bytes  v{stats['version']}  "
            f"[{stats['root']}]")
        lines.append(
            f"{'':<12} policy={stats['policy']}  "
            f"quarantined={stats['quarantined']}  "
            f"verified={health['verified']}  "
            f"repaired={health['repaired']}")
    return data, "\n".join(lines)


def _doctor_command(args, engine: ExperimentEngine) -> Tuple[Any, str, int]:
    """``repro doctor [RUN.jsonl]``: audit both stores and, optionally,
    a run ledger; non-zero exit on unrepaired corruption."""
    ledgers: List[str] = []
    if args.action:
        ledgers.append(args.action)
    elif args.log_jsonl:
        ledgers.append(args.log_jsonl)
    report = run_doctor(engine.cache, engine.trace_store,
                        ledgers=tuple(ledgers), repair=args.repair)
    code = 0 if (report["clean"] or args.repair) else 1
    return report, format_doctor(report), code


def _serve_command(args, engine: ExperimentEngine) -> int:
    """``repro serve``: the multi-tenant HTTP simulation service.

    Blocks until interrupted or drained.  SIGTERM (and
    ``POST /v1/admin/drain``) triggers a graceful drain — stop
    admitting, finish or deadline-cancel in-flight requests, flush the
    store tiers — then exits 0.  The engine (and therefore the tiered
    stores and any ``--log-jsonl`` ledger) is shared by every request;
    see ``docs/serve.md`` for the wire protocol.
    """
    import asyncio
    import signal

    from .serve import ReproServer, SimulationService

    service = SimulationService(engine=engine, workers=max(1, args.workers))
    server = ReproServer(service=service, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError,
                                     ValueError):
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(server.drain()))
        print(f"repro serve listening on http://{server.host}:{server.port} "
              f"(workers={max(1, args.workers)})", file=sys.stderr, flush=True)
        await server.serve_forever()
        await server.stop()
        if service.draining:
            print("[serve: drained cleanly]", file=sys.stderr, flush=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("[serve: interrupted]", file=sys.stderr)
    return 0


def _chaos_serve_command(args, out_dir: Optional[pathlib.Path]
                         ) -> Tuple[Any, str, int]:
    """``repro chaos-serve``: the deterministic chaos harness.

    Serves ``--chaos-command`` twice — clean and under a fault-injected
    backend — byte-compares every response, and exercises deadlines,
    breaker recovery, drain and the warm-restart path.  Exits non-zero
    on any failed check; ``--out`` writes ``CHAOS_report.json``.
    """
    from .serve import FAULT_MODES, format_chaos, run_chaos_serve

    modes = (tuple(part.strip() for part in args.modes.split(",")
                   if part.strip())
             if args.modes else FAULT_MODES)
    params: Dict[str, Any] = {}
    if args.scale is not None:
        params["scale"] = int(args.scale)
    report = run_chaos_serve(
        command=args.chaos_command,
        params=params,
        requests=max(1, args.requests),
        seed=args.seed if args.seed is not None else 0,
        rate=args.rate,
        modes=modes,
    )
    data = report.to_dict()
    if out_dir is not None:
        (out_dir / "CHAOS_report.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data, format_chaos(report), 1 if report.failed else 0


def _resume_command(args, parser: argparse.ArgumentParser) -> int:
    """``repro resume RUN.jsonl``: finish an interrupted run.

    The run log's ``run_meta`` line carries the original argv; the
    command is replayed against the same durable result cache, so
    completed windows are served as hits and only the missing ones
    execute.  The replay appends to the same JSONL, which is how the
    resumed hit/miss counts stay auditable in one artifact.
    """
    if not args.action:
        parser.error("resume requires the run's JSONL log path")
    log_path = pathlib.Path(args.action)
    meta, before, report = read_run_log_checked(log_path)
    if report.bad:
        print(f"warning: ignored {report.torn} torn and {report.corrupt} "
              f"corrupt line(s) in {log_path}; their windows will "
              f"re-execute (run `repro doctor {log_path} --repair` to "
              f"rewrite the ledger)", file=sys.stderr)
    if meta is None:
        print(f"error: {log_path} has no run_meta record "
              f"(not a resumable run log)", file=sys.stderr)
        return 2
    argv = list(meta["argv"])
    # Append (flags win last) so the replay logs into the same ledger
    # and counts the prior run's windows as resumable.
    argv += ["--log-jsonl", str(log_path), "--resume-from", str(log_path)]
    code = main(argv)
    _, after = read_run_log(log_path)
    appended = after[len(before):]
    hits = sum(1 for r in appended if r.get("cache") == "hit")
    executed = sum(1 for r in appended if r.get("cache") == "miss")
    print(f"[resume: {hits} windows already cached, {executed} executed, "
          f"command `{meta['command']}` exit {code}]", file=sys.stderr)
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Branch-on-Random (CGO 2008) evaluation.",
    )
    parser.add_argument("command",
                        choices=list(COMMANDS) + ["all", "cache", "bench",
                                                  "resume", "doctor",
                                                  "serve", "chaos-serve"],
                        help="which figure/table to regenerate, `cache` to "
                             "inspect/maintain the on-disk stores, `bench` "
                             "to run the fastpath-vs-golden timing "
                             "benchmark (writes BENCH_timing.json under "
                             "--out), `resume` to finish an interrupted "
                             "run from its JSONL log, `doctor` to audit "
                             "store/ledger integrity, `serve` to run "
                             "the HTTP simulation service (docs/serve.md), "
                             "or `chaos-serve` to prove the service "
                             "absorbs a fault-injected backend")
    parser.add_argument("action", nargs="?", default=None,
                        help="for `cache`: stats (default), prune stale "
                             "versions, or clear everything; for `resume`: "
                             "the interrupted run's JSONL log path; for "
                             "`doctor`: an optional run ledger to audit "
                             "alongside the stores")
    parser.add_argument("--scale", type=float, default=None,
                        help="per-command scale: fraction of the paper's "
                             "invocation counts for accuracy figures "
                             f"(default {ACCURACY_SCALE_DEFAULT}), outer-"
                             "loop multiplier for figure12 (default "
                             f"{JVM_SCALE_DEFAULT:g}), microbenchmark "
                             "characters for figures 13/14/2 (default "
                             f"{MICRO_CHARS_DEFAULT}), generated windows "
                             "for fuzz (default 25), measured-loop "
                             "iterations for entropy (default 64)")
    # Hidden deprecated aliases of --scale (warn on stderr).
    parser.add_argument("--jvm-scale", type=float, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--chars", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--sample", type=str, default=None,
                        help="sampling plan for the figure's window "
                             "population: exhaustive, fraction:F, "
                             "budget:N, or adaptive:N (figures "
                             "9/10/12/13/14; estimates gain confidence "
                             "intervals — see docs/sampling.md)")
    parser.add_argument("--seed", type=int, default=None,
                        help="uniform experiment seed: workload seed and "
                             "sampling-plan selection seed (default: "
                             "REPRO_SEED, else each figure's historical "
                             "default)")
    parser.add_argument("--out", type=str, default=None,
                        help="directory to also write each figure's table "
                             "into (<out>/<command>.txt)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="simulation-window worker processes "
                             "(default: REPRO_JOBS, else all cores)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-window timeout in seconds for pool "
                             "execution (default: REPRO_TIMEOUT, else none)")
    parser.add_argument("--retries", type=int, default=None,
                        help="transient-failure retry budget per window "
                             "(default: REPRO_RETRIES, else 3)")
    parser.add_argument("--failure-policy", choices=("raise", "retry",
                                                     "skip"), default=None,
                        help="what to do when a window keeps failing "
                             "(default: REPRO_FAILURE_POLICY, else retry)")
    parser.add_argument("--resume-from", type=str, default=None,
                        help="prior run JSONL whose completed windows are "
                             "expected to be served from the cache "
                             "(`repro resume` sets this automatically)")
    parser.add_argument("--integrity", choices=INTEGRITY_POLICIES,
                        default=None,
                        help="what a corrupt store entry becomes: verify "
                             "(quarantine + fail), repair (quarantine + "
                             "re-execute transparently), trust (skip "
                             "checksums; default: REPRO_INTEGRITY, else "
                             "repair)")
    parser.add_argument("--store", choices=("results", "traces", "all"),
                        default=None,
                        help="for `cache`: which store the action applies "
                             "to (default: all)")
    parser.add_argument("--host", type=str, default="127.0.0.1",
                        help="for `serve`: interface to bind "
                             "(default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8787,
                        help="for `serve`: TCP port; 0 picks a free one "
                             "(default: 8787)")
    parser.add_argument("--workers", type=int, default=1,
                        help="for `serve`: concurrent distinct "
                             "computations (identical concurrent requests "
                             "always coalesce onto one; default: 1)")
    parser.add_argument("--serve-diff", action="store_true",
                        help="for `fuzz`: additionally byte-compare each "
                             "window served by an ephemeral repro serve "
                             "instance against the local façade")
    parser.add_argument("--rate", type=float, default=0.2,
                        help="for `chaos-serve`: deterministic fault-"
                             "injection probability per backend call "
                             "(default: 0.2)")
    parser.add_argument("--requests", type=int, default=6,
                        help="for `chaos-serve`: size of the request sweep "
                             "(default: 6)")
    parser.add_argument("--chaos-command", type=str, default="figure13",
                        help="for `chaos-serve`: the figure command to "
                             "serve under chaos (default: figure13)")
    parser.add_argument("--modes", type=str, default=None,
                        help="for `chaos-serve`: comma-separated fault "
                             "modes (slow,error,hang,torn; default: all)")
    parser.add_argument("--repair", action="store_true",
                        help="for `doctor`: quarantine corrupt store "
                             "entries and rewrite damaged ledgers instead "
                             "of only reporting them")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON document per "
                             "command instead of the text tables")
    parser.add_argument("--log-jsonl", type=str, default=None,
                        help="append one JSONL record per simulation "
                             "window to this file")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="window-result cache directory "
                             "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the window-result cache")
    return parser


def _build_engine(args, out_dir: Optional[pathlib.Path]) -> ExperimentEngine:
    """Configure the process-wide engine from flags and environment.

    Environment resolution lives in :meth:`EngineConfig.from_env`;
    flags override it.  The CLI (unlike the library) defaults to all
    cores, because regenerating figures is embarrassingly parallel.
    """
    overrides: Dict[str, Any] = {}
    if args.jobs is not None:
        overrides["jobs"] = max(1, args.jobs)
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    if args.retries is not None:
        overrides["retries"] = max(0, args.retries)
    if args.failure_policy is not None:
        overrides["failure_policy"] = args.failure_policy
    if args.resume_from is not None:
        overrides["resume_from"] = args.resume_from
    if args.integrity is not None:
        overrides["integrity"] = args.integrity
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = EngineConfig.from_env(**overrides)
    if config.jobs is None:
        config = config.with_overrides(jobs=os.cpu_count() or 1)
    log_path: Optional[pathlib.Path] = None
    if args.log_jsonl:
        log_path = pathlib.Path(args.log_jsonl)
    elif args.json and out_dir is not None:
        log_path = out_dir / "BENCH_windows.jsonl"
    cache = ResultCache(
        root=pathlib.Path(args.cache_dir) if args.cache_dir else None,
        enabled=not args.no_cache
        and os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no"),
        policy=config.integrity,
    )
    engine = ExperimentEngine(config=config, cache=cache,
                              recorder=RunRecorder(log_path))
    set_engine(engine)
    return engine


def main(argv: Optional[List[str]] = None) -> int:
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    parser = build_parser()
    args = parser.parse_args(raw_argv)
    if args.command == "resume":
        return _resume_command(args, parser)
    if args.action is not None and args.command not in ("cache", "doctor"):
        parser.error(f"'{args.action}' is only valid after the "
                     f"`cache`, `doctor` or `resume` commands")
    if args.command == "cache" and args.action is not None \
            and args.action not in CACHE_ACTIONS:
        parser.error(f"cache action must be one of {CACHE_ACTIONS}, "
                     f"got '{args.action}'")
    if args.command == "all" and args.scale is not None:
        parser.error("--scale is ambiguous for `all` (its unit differs "
                     "per command); run commands individually")
    if args.sample is not None:
        if args.command not in SAMPLED_COMMANDS:
            parser.error(f"--sample is only supported by "
                         f"{'/'.join(SAMPLED_COMMANDS)}")
        from .stats import SamplingPlan

        try:  # fail fast, before any engine/window work
            SamplingPlan.parse(args.sample)
        except ValueError as exc:
            parser.error(f"invalid --sample plan: {exc}")
    if args.seed is not None and args.command not in SEEDED_COMMANDS:
        parser.error(f"--seed is only supported by "
                     f"{'/'.join(SEEDED_COMMANDS)}")
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    engine = _build_engine(args, out_dir)

    if args.command == "serve":
        return _serve_command(args, engine)

    if args.command == "chaos-serve":
        data, text, code = _chaos_serve_command(args, out_dir)
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(text)
        return code

    if args.command == "cache":
        data, text = _cache_command(args, engine)
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(text)
        return 0

    if args.command == "doctor":
        data, text, code = _doctor_command(args, engine)
        if args.json:
            rendered = json.dumps(data, indent=2, sort_keys=True)
            print(rendered)
            if out_dir is not None:
                (out_dir / "BENCH_doctor.json").write_text(rendered + "\n")
        else:
            print(text)
            if out_dir is not None:
                (out_dir / "doctor.txt").write_text(text + "\n")
        return code

    if args.command == "bench":
        started = time.time()
        data, text, code = _bench_command(args, out_dir)
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        else:
            print(text)
        print(f"[bench finished in {time.time() - started:.1f}s]\n",
              file=sys.stderr)
        return code

    # The resume ledger: one run_meta line per invocation, so `repro
    # resume <log>` can replay the exact command later.
    if engine.recorder.log_path is not None:
        engine.recorder.write_meta({
            "command": args.command,
            "argv": [a for a in raw_argv
                     if a not in ("--resume-from", args.resume_from,
                                  "--log-jsonl", args.log_jsonl)],
            "log_jsonl": str(engine.recorder.log_path),
            "engine_config": engine.config.to_dict(),
            "ts": time.time(),
        })

    commands = list(COMMANDS) if args.command == "all" else [args.command]

    exit_code = 0
    for name in commands:
        started = time.time()
        windows_before = len(engine.recorder.records)
        data, text = COMMANDS[name](args)
        elapsed = time.time() - started

        if name in ("scorecard", "fuzz") and isinstance(data, dict) \
                and data["failed"]:
            exit_code = 1
        if name == "fuzz" and out_dir is not None:
            # One JSONL record per divergence — the CI artifact.
            (out_dir / "FUZZ_divergences.jsonl").write_text(
                "".join(json.dumps(d, sort_keys=True) + "\n"
                        for d in data["divergences"]))

        if args.json:
            document: Dict[str, Any] = {
                "command": name,
                "elapsed_s": round(elapsed, 3),
                "data": data,
                "engine": dict(
                    engine.summary(),
                    command_windows=(
                        len(engine.recorder.records) - windows_before),
                    jobs=engine.jobs,
                ),
            }
            rendered = json.dumps(document, indent=2, sort_keys=True)
            print(rendered)
            if out_dir is not None:
                (out_dir / f"BENCH_{name}.json").write_text(rendered + "\n")
        else:
            print(text)
            if out_dir is not None:
                (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"[{name} finished in {elapsed:.1f}s]\n", file=sys.stderr)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module smoke-tested via main()
    raise SystemExit(main())
