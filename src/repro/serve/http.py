"""The wire half of ``repro serve``: a stdlib asyncio HTTP/1.1 server.

Deliberately minimal — one short-lived connection per request
(``Connection: close``), no TLS, no chunked encoding — because the
protocol surface is five routes:

==========================  ===========================================
``GET /healthz``            liveness: ``{"status": "ok"}``
``GET /statsz``             serve counters + per-tier store telemetry
``GET /v1/figure/<cmd>``    run a figure; params in the query string
``POST /v1/figure``         run a figure; ``{"command", "params"}`` body
``POST /v1/admin/drain``    graceful drain; returns the drain report
==========================  ===========================================

Every response body is ``json.dumps(document, sort_keys=True)`` — a
pure function of the document — so concurrent identical requests
(which coalesce onto one computation, see
:class:`~repro.serve.service.SimulationService`) receive byte-identical
bytes, and a served figure diffs clean against a local ``repro.api``
run of the same command.  Validation failures are HTTP 400 with a
machine-readable ``{"error": ...}``; computation failures are 500.

The resilience surface (``docs/serve.md``): ``?timeout=`` (or a
``timeout`` body field) sets a per-request deadline — exceeding it is
HTTP 504, while the shared computation finishes and lands in the
cache; admission-control refusals (queue full, tenant over quota,
draining) are HTTP 503 with a ``Retry-After`` header; the optional
``X-Repro-Tenant`` header attributes the request to a tenant for the
fairness counters in ``/statsz``.

:class:`ServerThread` runs the whole loop on a daemon thread for tests
and embedders; the CLI runs :func:`ReproServer.serve_forever` on the
main thread.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import math
import threading
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from .service import DeadlineExceeded, RequestError, Shed, SimulationService

logger = logging.getLogger("repro.serve")

#: Header naming the tenant a request is accounted to (fairness
#: counters in ``/statsz``); absent means the anonymous bucket.
TENANT_HEADER = "x-repro-tenant"

#: Refuse request bodies beyond this (the whole API fits in a line).
MAX_BODY_BYTES = 1 << 20
#: Cap on the request line + headers block.
MAX_HEADER_BYTES = 64 << 10


def _encode_body(document: Any) -> bytes:
    """The deterministic wire encoding of a response document."""
    return json.dumps(document, sort_keys=True).encode("utf-8")


def _response(status: int, body: bytes,
              content_type: str = "application/json",
              extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 500: "Internal Server Error",
               413: "Payload Too Large", 503: "Service Unavailable",
               504: "Gateway Timeout"}
    head = (f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n")
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("ascii") + body


class ReproServer:
    """One service, one listening socket, five routes."""

    def __init__(self, service: Optional[SimulationService] = None,
                 host: str = "127.0.0.1", port: int = 8787) -> None:
        self.service = service if service is not None else SimulationService()
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._drained: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; with ``port=0`` the kernel picks a
        free port, published back via :attr:`port`."""
        self._drained = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self) -> Dict[str, Any]:
        """Graceful shutdown: drain the service (stop admissions,
        settle in-flight work, flush stores), then release
        :meth:`serve_forever`.  The release is deferred one beat so the
        connection that requested the drain gets its response bytes
        before the accept loop unwinds."""
        report = await self.service.drain()
        if self._drained is not None and not self._drained.is_set():
            loop = asyncio.get_event_loop()
            loop.call_later(0.1, self._drained.set)
        return report

    async def serve_forever(self) -> None:
        """Accept until cancelled or drained (then return cleanly)."""
        if self._server is None:
            await self.start()
        assert self._server is not None and self._drained is not None
        serving = asyncio.ensure_future(self._server.serve_forever())
        drained = asyncio.ensure_future(self._drained.wait())
        try:
            await asyncio.wait({serving, drained},
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            pass
        finally:
            for task in (serving, drained):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task

    # -- request handling ----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = await self._respond(reader)
        except Exception as exc:  # the handler must never kill the loop
            payload = _response(500, _encode_body(
                {"error": f"internal error: {exc!r}"}))
        try:
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            raise RequestError("header block too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise RequestError(f"malformed request line: {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _TooLarge()
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target, headers, body

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        try:
            method, target, headers, body = await self._read_request(reader)
        except _TooLarge:
            return _response(413, _encode_body({"error": "body too large"}))
        except (RequestError, ValueError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            return _response(400, _encode_body(
                {"error": f"malformed request: {exc}"}))

        parsed = urllib.parse.urlsplit(target)
        path = parsed.path

        if path == "/healthz":
            if method != "GET":
                return _response(405, _encode_body({"error": "GET only"}))
            return _response(200, _encode_body({"status": "ok"}))

        if path == "/statsz":
            if method != "GET":
                return _response(405, _encode_body({"error": "GET only"}))
            return _response(200, _encode_body(self.service.stats()))

        if path == "/v1/admin/drain":
            if method != "POST":
                return _response(405, _encode_body({"error": "POST only"}))
            report = await self.drain()
            return _response(200, _encode_body(report))

        if path.startswith("/v1/figure"):
            return await self._figure(method, path, parsed.query,
                                      headers, body)

        return _response(404, _encode_body({"error": f"no route {path!r}"}))

    async def _figure(self, method: str, path: str, query: str,
                      headers: Dict[str, str], body: bytes) -> bytes:
        timeout: Any = None
        if method == "GET":
            command = path[len("/v1/figure"):].lstrip("/")
            if not command:
                return _response(400, _encode_body(
                    {"error": "GET needs /v1/figure/<command>"}))
            # Single-valued query params; seeds accept "0,1,2".
            params: Dict[str, Any] = {
                name: values[-1]
                for name, values in urllib.parse.parse_qs(query).items()}
            # ``timeout`` is transport-level (the request deadline),
            # never a figure parameter: it must not reach validation
            # or the coalescing key.
            timeout = params.pop("timeout", None)
        elif method == "POST":
            try:
                doc = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(doc, dict):
                    raise ValueError("body must be a JSON object")
                command = doc.get("command", "")
                params = doc.get("params") or {}
                if not isinstance(params, dict):
                    raise ValueError('"params" must be a JSON object')
                timeout = doc.get("timeout")
                params.pop("timeout", None)
            except (ValueError, UnicodeDecodeError) as exc:
                return _response(400, _encode_body(
                    {"error": f"bad request body: {exc}"}))
        else:
            return _response(405, _encode_body({"error": "GET or POST"}))

        tenant = headers.get(TENANT_HEADER)
        try:
            result = await self.service.submit(command, params,
                                               timeout=timeout,
                                               tenant=tenant)
        except RequestError as exc:
            return _response(400, _encode_body({"error": str(exc)}))
        except Shed as exc:
            return _response(
                503, _encode_body({"error": str(exc),
                                   "retry_after": exc.retry_after}),
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))})
        except DeadlineExceeded as exc:
            return _response(504, _encode_body({"error": str(exc)}))
        except Exception as exc:
            return _response(500, _encode_body(
                {"error": f"computation failed: {exc!r}"}))
        return _response(200, _encode_body(result.document()))


class _TooLarge(Exception):
    """Request body exceeded :data:`MAX_BODY_BYTES`."""


class ShutdownLeak(RuntimeError):
    """The server thread failed to stop within its join timeout.

    Historically :meth:`ServerThread.stop` joined with a timeout and
    silently returned, leaking the thread (and its event loop) with no
    trace; now the leak is logged and raised so tests and embedders
    see it."""


class ServerThread:
    """A running server on a daemon thread (tests, embedders).

    ``with ServerThread(service) as server:`` yields a bound server
    whose :attr:`port` is live; requests can be made with plain
    ``urllib`` from the calling thread.
    """

    def __init__(self, service: Optional[SimulationService] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = ReproServer(service=service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def service(self) -> SimulationService:
        return self.server.service

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
            self._started.set()
            loop.run_forever()
        finally:
            self._started.set()  # unblock a waiter even on bind failure
            with contextlib.suppress(Exception):
                loop.run_until_complete(self.server.stop())
            loop.close()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._main,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._loop is None or not self._thread.is_alive():
            raise RuntimeError("server failed to start")
        return self

    def drain(self, timeout: float = 60.0) -> Dict[str, Any]:
        """Run a graceful drain on the server's loop from the calling
        thread; returns the drain report."""
        if self._loop is None:
            raise RuntimeError("server is not running")
        future = asyncio.run_coroutine_threadsafe(
            self.server.service.drain(), self._loop)
        return future.result(timeout)

    def stop(self, join_timeout: float = 10.0) -> None:
        """Stop the loop and join the thread.

        Raises :class:`ShutdownLeak` (after logging a warning) when the
        thread survives ``join_timeout`` — a hung handler or executor
        call is a bug worth surfacing, not silently leaking.
        """
        if self._loop is None or self._thread is None:
            return
        thread = self._thread
        self._loop.call_soon_threadsafe(self._loop.stop)
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            logger.warning(
                "repro-serve thread leaked: still alive %.0fs after stop()",
                join_timeout)
            raise ShutdownLeak(
                f"server thread failed to stop within {join_timeout}s; "
                f"the thread and its event loop have leaked")
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
