"""Dynamic-instruction trace records consumed by the timing model."""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Instruction


class TraceRecord:
    """One retired instruction.

    Attributes
    ----------
    pc:
        Byte address of the instruction.
    instr:
        The decoded instruction (classification and register fields),
        or ``None`` for a trap-emulated instruction (the functional
        simulator retired it through a software handler, so there is
        no architected decoding to carry).
    next_pc:
        Byte address of the *architecturally* next instruction — the
        branch target for taken control flow.
    taken:
        For control-flow instructions, whether the transfer happened.
    mem_addr:
        Effective address for loads/stores, else ``None``.
    """

    __slots__ = ("pc", "instr", "next_pc", "taken", "mem_addr")

    def __init__(self, pc: int, instr: Optional[Instruction], next_pc: int,
                 taken: bool = False, mem_addr: Optional[int] = None) -> None:
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr

    def as_tuple(self) -> tuple:
        """Stable, hashable value form of the record.

        ``Instruction`` is flattened to its field tuple so two records
        decoded independently (e.g. one straight from the simulator and
        one round-tripped through the binary trace encoding) compare
        equal field by field.
        """
        instr = self.instr
        instr_key = None if instr is None else (
            int(instr.op), instr.rd, instr.ra, instr.rb, instr.imm,
            instr.freq,
        )
        return (self.pc, instr_key, self.next_pc, self.taken, self.mem_addr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.instr is None:
            return f"<TraceRecord pc={self.pc:#x} trapped>"
        extra = ""
        if self.instr.is_branch:
            extra = f" taken={self.taken}"
        if self.mem_addr is not None:
            extra += f" mem={self.mem_addr:#x}"
        return f"<TraceRecord pc={self.pc:#x} {self.instr.op.name}{extra}>"
