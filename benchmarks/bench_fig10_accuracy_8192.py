"""Figure 10: sampling accuracy at interval 2^13.

Paper result: same trends as Figure 9 "except that everything is
lower" (8x fewer samples); jython again suffers with the counters, and
pmd's pathological pattern also becomes visible.
"""


from _shared import ACCURACY_SCALE, accuracy_rows, run_once, report

from repro.experiments import format_accuracy_rows


def test_figure10(benchmark):
    rows = run_once(benchmark, lambda: accuracy_rows(1 << 13))

    report(format_accuracy_rows(
        rows, f"Figure 10: accuracy at 2^13 (scale {ACCURACY_SCALE})"))

    by_name = {row["benchmark"]: row for row in rows}
    # jython still resonates with the counters.
    assert by_name["jython"]["random"] > by_name["jython"]["sw"] + 2
    # pmd's longer pattern resonates at 2^13 (its period-2048 chain).
    assert by_name["pmd"]["random"] > by_name["pmd"]["sw"] + 2


def test_figure10_lower_than_figure9(benchmark):
    """Cross-figure claim: decreasing the number of samples by 8x
    lowers accuracy across the board."""

    def both():
        return accuracy_rows(1 << 10), accuracy_rows(1 << 13)

    rows9, rows10 = run_once(benchmark, both)
    avg9 = rows9[-1]
    avg10 = rows10[-1]
    for scheme in ("sw", "hw", "random"):
        assert avg10[scheme] < avg9[scheme]
